"""Extensions tour: query-log weighting and the small-pattern tray.

Run:  python examples/personalized_maintenance.py

Two extensions the paper sketches but defers:

* **query-log-aware swapping** (Section 3.5): patterns users actually
  drag are protected from being swapped out, and candidates that match
  logged queries are boosted;
* **the η ≤ 2 tray** (Section 3.1 remark): the most frequent single
  edges and 2-paths, maintained from exact counters.

The script logs a user who works heavily with nitrogen chemistry, then
shows that log-weighted maintenance keeps the N-flavoured patterns on
the panel where plain MIDAS might trade them away.
"""

from repro import Midas, MidasConfig, PatternBudget
from repro.datasets import aids_like, family_injection
from repro.midas import LogWeightedSwapper, QueryLog
from repro.midas.pruning import PruningContext
from repro.catapult import CandidateGenerator
from repro.workload import generate_queries


def main() -> None:
    config = MidasConfig(
        budget=PatternBudget(3, 7, 10),
        sup_min=0.5,
        num_clusters=4,
        sample_cap=100,
        seed=17,
        epsilon=0.002,
        tray_edges=4,
        tray_paths=3,
    )
    database = aids_like(100, seed=17)
    midas = Midas.bootstrap(database, config)

    print("== the small-pattern tray (η ≤ 2) ==")
    assert midas.small_tray is not None
    for pattern in midas.small_tray.refresh():
        print(f"  {pattern.name}")

    print("\n== a nitrogen-heavy user works for a while ==")
    log = QueryLog(capacity=100)
    nitrogen_sources = {
        gid: g
        for gid, g in database.items()
        if list(g.labels().values()).count("N") >= 2
    }
    if nitrogen_sources:
        log.record_many(
            generate_queries(nitrogen_sources, 30, size_range=(4, 10), seed=18)
        )
    print(f"  logged {len(log)} queries")

    print("\n== a major batch arrives; compare swap strategies ==")
    update = family_injection(35, seed=19)
    report = midas.apply_update(update)
    print(
        f"  classified {'MAJOR' if report.is_major else 'MINOR'}, "
        f"{report.candidates_promising} promising candidates"
    )

    # Regenerate the same promising candidates and replay both swappers
    # on copies of the maintained panel.
    pruning = PruningContext(
        midas.oracle,
        midas.pattern_graphs(),
        config.kappa,
        index_pair=midas.index_pair,
    )
    generator = CandidateGenerator(
        dict(midas.database.items()), config.budget, seed=config.seed
    )
    raw = generator.generate(
        midas.csgs.summaries(),
        edge_gate=pruning.edge_gate,
        edge_priority=pruning.edge_priority,
    )
    promising = [
        c.graph
        for c in raw
        if pruning.is_promising(c.graph)
        and not midas.patterns.has_isomorphic(c.graph)
    ]
    plain_panel = midas.patterns.copy()
    logged_panel = midas.patterns.copy()

    from repro.midas import MultiScanSwapper

    plain = MultiScanSwapper(
        midas.oracle, kappa=config.kappa, lambda_=config.lambda_
    )
    weighted = LogWeightedSwapper(
        midas.oracle, log, kappa=config.kappa, lambda_=config.lambda_
    )
    plain_outcome = plain.run(plain_panel, list(promising))
    weighted_outcome = weighted.run(logged_panel, list(promising))

    def nitrogen_patterns(panel) -> int:
        return sum(
            1 for p in panel if "N" in p.graph.vertex_label_set()
        )

    print(f"  plain MIDAS:       {plain_outcome.num_swaps} swaps, "
          f"{nitrogen_patterns(plain_panel)} N-patterns on panel")
    print(f"  log-weighted:      {weighted_outcome.num_swaps} swaps, "
          f"{nitrogen_patterns(logged_panel)} N-patterns on panel")
    print(
        "\nLog weighting protects the patterns this user's queries rely "
        "on (N-pattern count never lower than plain MIDAS's)."
    )


if __name__ == "__main__":
    main()
