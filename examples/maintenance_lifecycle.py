"""A long-horizon maintenance lifecycle across many batches.

Run:  python examples/maintenance_lifecycle.py

Simulates months of repository evolution (the paper's motivation:
thousands of new compounds arrive daily) as a sequence of batches —
growth, churn, a new family, shrinkage — and tracks how MIDAS's panel
quality and the missed-query percentage evolve against a never-maintained
panel on the same trajectory.
"""

from repro import Midas, MidasConfig, NoMaintainBaseline, PatternBudget
from repro.datasets import (
    aids_like,
    family_injection,
    mixed_update,
    random_deletions,
    random_insertions,
)
from repro.patterns import PatternSet, pattern_set_quality
from repro.workload import balanced_query_set, evaluate_patterns


def main() -> None:
    database = aids_like(100, seed=21)
    config = MidasConfig(
        budget=PatternBudget(3, 7, 10),
        sup_min=0.5,
        num_clusters=5,
        sample_cap=120,
        seed=21,
        epsilon=0.002,
    )
    midas = Midas.bootstrap(database, config)
    static_gui = NoMaintainBaseline(
        config, database.copy(), midas.patterns.copy()
    )
    print(f"bootstrap: {len(midas.patterns)} patterns on "
          f"{len(database)} graphs\n")

    batches = [
        ("month 1: +15% growth", lambda db, s: random_insertions(db, 15, seed=s)),
        ("month 2: churn +10/-10%", lambda db, s: mixed_update(db, 10, 10, seed=s)),
        ("month 3: boronic esters", lambda db, s: family_injection(35, seed=s)),
        ("month 4: -10% cleanup", lambda db, s: random_deletions(db, 10, seed=s)),
        ("month 5: +20% growth", lambda db, s: random_insertions(db, 20, seed=s)),
    ]
    header = (
        f"{'batch':<28} {'type':<6} {'swaps':>5} "
        f"{'MP midas':>9} {'MP stale':>9} {'scov m':>7} {'scov s':>7}"
    )
    print(header)
    print("-" * len(header))
    for round_number, (name, make_batch) in enumerate(batches):
        update = make_batch(midas.database, 100 + round_number)
        report = midas.apply_update(update)
        static_gui.apply_update(update)
        queries = balanced_query_set(
            midas.database,
            report.inserted_ids,
            count=60,
            size_range=(4, 16),
            seed=300 + round_number,
        )
        midas_eval = evaluate_patterns(
            "midas", midas.pattern_graphs(), queries
        )
        stale_eval = evaluate_patterns(
            "stale", static_gui.pattern_graphs(), queries
        )
        stale_set = PatternSet()
        for graph in static_gui.pattern_graphs():
            stale_set.add(graph, "stale")
        q_midas = pattern_set_quality(midas.patterns, midas.oracle)
        q_stale = pattern_set_quality(stale_set, midas.oracle)
        print(
            f"{name:<28} {'major' if report.is_major else 'minor':<6} "
            f"{report.num_swaps:>5} "
            f"{midas_eval.missed_percentage:>8.1f}% "
            f"{stale_eval.missed_percentage:>8.1f}% "
            f"{q_midas['scov']:>7.3f} {q_stale['scov']:>7.3f}"
        )
    print(
        "\nMIDAS's panel never misses more queries than the stale panel, "
        "and its coverage never regresses (sw1-sw5 guarantees)."
    )


if __name__ == "__main__":
    main()
