"""Quickstart: bootstrap MIDAS, evolve the database, watch maintenance.

Run:  python examples/quickstart.py

Walks through the core loop of the library:

1. generate a synthetic chemical-compound database (the stand-in for
   PubChem/AIDS — see DESIGN.md);
2. bootstrap MIDAS through the ``repro.api`` facade, which runs
   CATAPULT++ once to select the initial canned patterns, build
   clusters, CSGs and the FCT/IFE indices;
3. apply a *minor* batch (a few random molecules) — detected as Type 2,
   so patterns stay put while clusters/CSGs/indices are maintained;
4. apply a *major* batch (a new compound family) — detected as Type 1,
   triggering pruned candidate generation and the multi-scan swap;
5. print pattern-set quality before/after to see the progressive gain;
6. show graceful degradation: exact GED under a tight budget falls down
   the fidelity ladder (exact → beam → bipartite → lower bound) instead
   of overrunning (see docs/ROBUSTNESS.md).
"""

import repro
from repro import MidasConfig, PatternBudget
from repro.datasets import family_injection, pubchem_like, random_insertions
from repro.patterns import PatternSet, pattern_set_quality
from repro.resilience import Budget, resilient_ged


def show_quality(title: str, patterns, oracle) -> None:
    quality = pattern_set_quality(patterns, oracle)
    print(
        f"  {title:<28} scov={quality['scov']:.3f} lcov={quality['lcov']:.3f} "
        f"div={quality['div']:.2f} cog={quality['cog']:.2f} "
        f"score={quality['score']:.3f}"
    )


def main() -> None:
    print("== 1. generate a PubChem-like database ==")
    database = pubchem_like(150, seed=1)
    print(f"  {database.summary()}")

    print("== 2. bootstrap MIDAS (one CATAPULT++ run) ==")
    config = MidasConfig(
        budget=PatternBudget(eta_min=3, eta_max=8, gamma=12),
        sup_min=0.5,
        num_clusters=6,
        sample_cap=150,
        seed=1,
        epsilon=0.002,
    )
    midas = repro.api.bootstrap(database, config=config)
    print(f"  selected {len(midas.patterns)} canned patterns")
    show_quality("initial quality:", midas.patterns, midas.oracle)

    print("== 3. minor batch: +5 random molecules ==")
    report = repro.api.maintain(
        midas, random_insertions(midas.database, 3, seed=2)
    )
    print(
        f"  GFD distance {report.classification.distance:.5f} "
        f"(epsilon {config.epsilon}) -> "
        f"{'MAJOR' if report.is_major else 'MINOR'}; "
        f"swaps={report.num_swaps}"
    )

    print("== 4. major batch: +50 boronic-ester compounds ==")
    stale = PatternSet()
    for pattern in midas.patterns:
        stale.add(pattern.graph, "stale")
    report = repro.api.maintain(midas, family_injection(50, seed=3))
    print(
        f"  GFD distance {report.classification.distance:.5f} -> "
        f"{'MAJOR' if report.is_major else 'MINOR'}; "
        f"candidates={report.candidates_generated} "
        f"promising={report.candidates_promising} swaps={report.num_swaps}"
    )
    print(
        f"  maintenance took {report.pattern_maintenance_seconds:.2f}s "
        f"(candidate generation + swap: "
        f"{report.pattern_generation_seconds:.2f}s)"
    )

    print("== 5. progressive gain on the evolved database ==")
    show_quality("stale (NoMaintain view):", stale, midas.oracle)
    show_quality("maintained (MIDAS):", midas.patterns, midas.oracle)

    print("== 6. graceful degradation: exact GED under a tight budget ==")
    graphs = midas.pattern_graphs()[:4]
    # A handful of A* expansions is nowhere near enough for exact GED on
    # these patterns, so every pair falls down the fidelity ladder.
    budget = Budget(max_states=25)
    for position, (first, second) in enumerate(zip(graphs, graphs[1:])):
        result = resilient_ged(first, second, method="exact", budget=budget)
        print(
            f"  GED(p{position}, p{position + 1}) = {result.value} "
            f"via {result.fidelity}"
            f"{' (degraded from exact)' if result.degraded else ''}"
        )

    print("== 7. the refreshed panel ==")
    from repro.gui import render_panel

    print(render_panel(midas.patterns))


if __name__ == "__main__":
    main()
