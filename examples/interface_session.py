"""Driving the simulated visual interface directly.

Run:  python examples/interface_session.py

A tour of the GUI substrate (paper, Figure 1): the pattern panel
(Panel 4), the query canvas (Panel 2), pattern-at-a-time vs
edge-at-a-time construction, editing a dropped pattern, and undo —
the building blocks the user study is simulated with.
"""

from repro.graph import LabeledGraph, are_isomorphic
from repro.gui import QueryCanvas, VisualInterface
from repro.patterns import PatternSet


def build_pattern(labels: str, edges) -> LabeledGraph:
    return LabeledGraph.from_edges(dict(enumerate(labels)), edges)


def main() -> None:
    # The boronic-acid query of the paper's Example 1.1, simplified:
    # a carbon ring fragment with a B(OH)(OH) functional group.
    query = build_pattern(
        "CCCBOOHH",
        [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (4, 6), (5, 7)],
    )
    query.name = "boronic-acid"

    print("== edge-at-a-time construction ==")
    canvas = QueryCanvas()
    vertex_of = {}
    for vertex in sorted(query.vertices()):
        vertex_of[vertex] = canvas.add_vertex(query.label(vertex))
    for u, v in sorted(query.edges()):
        canvas.add_edge(vertex_of[u], vertex_of[v])
    print(f"  {canvas.steps} steps "
          f"({query.num_vertices} vertices + {query.num_edges} edges)")
    assert are_isomorphic(canvas.graph, query)

    print("== pattern-at-a-time construction ==")
    panel = PatternSet()
    panel.add(build_pattern("CCCB", [(0, 1), (1, 2), (2, 3)]), "panel")
    panel.add(build_pattern("BOOHH", [(0, 1), (0, 2), (1, 3), (2, 4)]), "panel")
    gui = VisualInterface.with_patterns(panel)
    record = gui.formulate(query, max_edits=2)
    print(
        f"  {record.steps} steps: {record.pattern_uses} pattern drops, "
        f"{record.deletions} deletions, {record.vertices_drawn} vertices, "
        f"{record.edges_drawn} edges — success={record.success}"
    )

    print("== editing and undo ==")
    canvas = QueryCanvas()
    mapping = canvas.place_pattern(panel.get(panel.ids()[1]).graph)
    print(f"  dropped the B(OH)(OH) pattern: canvas has "
          f"{canvas.graph.num_vertices} vertices after {canvas.steps} step")
    # John decides he does not need one hydroxyl hydrogen.
    leaf = max(mapping.values())
    canvas.delete_vertex(leaf)
    print(f"  deleted one H: {canvas.graph.num_vertices} vertices, "
          f"{canvas.steps} steps")
    canvas.undo()
    print(f"  changed his mind (undo): {canvas.graph.num_vertices} vertices, "
          f"{canvas.steps} steps")

    print("== session statistics ==")
    for name, record_ in zip(["boronic-acid"], gui.sessions):
        print(f"  {name}: {record_.as_dict()}")
    print(f"  summary: {gui.session_summary()}")


if __name__ == "__main__":
    main()
