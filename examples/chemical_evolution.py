"""The paper's running example: boronic acids, boronic esters and John.

Run:  python examples/chemical_evolution.py

Examples 1.1/1.2 of the paper: John, a chemist, formulates a boronic-acid
query on a chemical-compound GUI.  After the repository absorbs a family
of boronic *esters*, a maintained pattern set lets him formulate related
queries in far fewer steps than the stale (never-maintained) panel.

This script replays that story with the simulated interface:

* a PubChem-like database is created and MIDAS selects initial patterns;
* a boronic-ester family batch arrives; MIDAS maintains the panel while
  a NoMaintain GUI keeps its stale patterns;
* "John" (the simulated user) formulates ester-flavoured queries on both
  GUIs and on the edge-at-a-time control; steps and QFT are compared.
"""

from repro import Midas, MidasConfig, NoMaintainBaseline, PatternBudget
from repro.datasets import family_injection, pubchem_like
from repro.gui import VisualInterface
from repro.workload import (
    SimulatedUser,
    balanced_query_set,
    edge_at_a_time_steps,
)


def main() -> None:
    print("== setting up the chemical repository ==")
    database = pubchem_like(120, seed=7)
    config = MidasConfig(
        budget=PatternBudget(3, 8, 12),
        sup_min=0.5,
        num_clusters=5,
        sample_cap=120,
        seed=7,
        epsilon=0.002,
    )
    midas = Midas.bootstrap(database, config)
    static_gui = NoMaintainBaseline(config, database.copy(), midas.patterns.copy())
    print(f"  initial panel: {len(midas.patterns)} patterns")

    print("== the boronic-ester family arrives (+40 compounds) ==")
    batch = family_injection(40, "boronic_ester", seed=8)
    report = midas.apply_update(batch)
    static_gui.apply_update(batch)
    print(
        f"  modification classified as "
        f"{'MAJOR' if report.is_major else 'MINOR'} "
        f"(distance {report.classification.distance:.5f}); "
        f"{report.num_swaps} pattern(s) swapped"
    )

    print("== John formulates queries on three GUIs ==")
    queries = balanced_query_set(
        midas.database, report.inserted_ids, count=12, size_range=(8, 18), seed=9
    )
    john = SimulatedUser(seed=1, max_edits=2)

    maintained_gui = VisualInterface.with_patterns(midas.patterns)
    stale_gui = VisualInterface.with_patterns(static_gui.patterns)

    total = {"midas": 0, "stale": 0, "edge": 0}
    qft = {"midas": 0.0, "stale": 0.0, "edge": 0.0}
    for query in queries:
        maintained = maintained_gui.formulate(query, max_edits=2)
        stale = stale_gui.formulate(query, max_edits=2)
        assert maintained.success and stale.success
        total["midas"] += maintained.steps
        total["stale"] += stale.steps
        total["edge"] += edge_at_a_time_steps(query)
        qft["midas"] += john.formulate(
            query, [p.graph for p in midas.patterns]
        ).qft_seconds
        qft["stale"] += john.formulate(
            query, [p.graph for p in static_gui.patterns]
        ).qft_seconds
        qft["edge"] += john.formulate_edge_at_a_time(query).qft_seconds

    count = len(queries)
    print(f"  over {count} queries (pattern editing allowed):")
    for approach, label in (
        ("edge", "edge-at-a-time (no patterns)"),
        ("stale", "stale GUI (NoMaintain)"),
        ("midas", "maintained GUI (MIDAS)"),
    ):
        print(
            f"    {label:<30} avg steps {total[approach] / count:5.1f}   "
            f"avg QFT {qft[approach] / count:6.1f}s"
        )
    saved = (total["stale"] - total["midas"]) / max(total["stale"], 1)
    print(
        f"  maintained panel saves {100 * saved:.1f}% steps vs the stale "
        "panel (paper: up to 50% fewer steps, 42% lower QFT)"
    )


if __name__ == "__main__":
    main()
