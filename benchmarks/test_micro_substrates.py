"""Micro-benchmarks of the hot substrates.

Unlike the figure benchmarks (one full experiment per run), these are
classic pytest-benchmark micro-measurements with many rounds: subgraph
isomorphism, graphlet counting, GED bounds, FCT mining and the index
prefilter — the operations whose costs dominate every experiment.
"""

import random

import pytest

from repro.covindex import CoverageIndex, available_substrates, make_ops
from repro.datasets import aids_like
from repro.ged import ged_bipartite_upper_bound, ged_tight_lower_bound
from repro.graphlets import count_graphlets
from repro.index import IndexPair
from repro.isomorphism import contains, count_embeddings
from repro.patterns import CoverageOracle
from repro.trees import FCTSet, TreeMiner
from repro.workload import generate_queries


@pytest.fixture(scope="module")
def db():
    return aids_like(60, seed=42)


@pytest.fixture(scope="module")
def graphs(db):
    return dict(db.items())


@pytest.fixture(scope="module")
def pattern(graphs):
    queries = generate_queries(graphs, 1, size_range=(4, 4), seed=0)
    return queries[0]


def test_vf2_containment_scan(benchmark, graphs, pattern):
    """One pattern tested against the whole database."""

    def scan():
        return sum(1 for g in graphs.values() if contains(g, pattern))

    hits = benchmark(scan)
    assert 0 <= hits <= len(graphs)


def test_graphlet_counting(benchmark, graphs):
    """Graphlet census of the full database."""

    def census():
        total = 0.0
        for g in graphs.values():
            total += count_graphlets(g).sum()
        return total

    assert benchmark(census) > 0


def test_ged_bounds_pairwise(benchmark, graphs):
    """Tight lower + bipartite upper bounds over pattern-sized pairs."""
    pool = generate_queries(graphs, 12, size_range=(3, 8), seed=1)

    def bounds():
        total = 0
        for i, a in enumerate(pool):
            for b in pool[i + 1 :]:
                total += ged_tight_lower_bound(a, b)
                total += ged_bipartite_upper_bound(a, b)
        return total

    assert benchmark(bounds) >= 0


def test_fct_mining(benchmark, graphs):
    """Frequent-tree mining at the default threshold."""

    def mine():
        return len(TreeMiner(graphs, 0.5, max_edges=3).mine_frequent())

    assert benchmark(mine) > 0


def test_count_embeddings_unfiltered(benchmark, graphs, pattern):
    """Embedding counts over every graph — the baseline the coverage
    engine's posting-list filter is measured against."""

    def scan():
        return sum(
            count_embeddings(g, pattern, limit=64) for g in graphs.values()
        )

    assert benchmark(scan) >= 0


def test_count_embeddings_covindex_filtered(benchmark, graphs, pattern):
    """Embedding counts over posting-list survivors only.

    Filtered-out graphs have zero embeddings by the invariant-soundness
    argument, so the filtered total must equal the unfiltered one.
    """
    index = CoverageIndex.build(graphs)

    def scan():
        return sum(
            count_embeddings(graphs[gid], pattern, limit=64)
            for gid in index.candidate_ids(pattern)
        )

    filtered_total = benchmark(scan)
    unfiltered_total = sum(
        count_embeddings(g, pattern, limit=64) for g in graphs.values()
    )
    assert filtered_total == unfiltered_total


# ----------------------------------------------------------------------
# bitset substrates (docs/PERFORMANCE.md) — the CI PR gate runs exactly
# these (`pytest benchmarks/test_micro_substrates.py -k bitset`), so a
# substrate regression fails the gate before it can reach a figure run.
# ----------------------------------------------------------------------
#: A wide synthetic universe: IDs far past one machine word, the regime
#: the numpy word-array substrate exists for.
BITSET_UNIVERSE = 100_000

#: Posting rows ANDed per filter query (a generous pattern key count).
BITSET_ROWS = 32


@pytest.fixture(scope="module")
def bitset_id_rows():
    rng = random.Random(99)
    return [
        rng.sample(range(BITSET_UNIVERSE), BITSET_UNIVERSE // 4)
        for _ in range(BITSET_ROWS)
    ]


def _and_reduce(ops, rows):
    acc = ops.copy(rows[0])
    for row in rows[1:]:
        acc = ops.intersect(acc, row)
    return acc


@pytest.mark.parametrize("substrate", sorted(available_substrates()))
def test_bitset_and_reduce(benchmark, bitset_id_rows, substrate):
    """AND across all posting rows — the candidate-filter hot loop."""
    ops = make_ops(substrate)
    rows = [ops.from_ids(ids) for ids in bitset_id_rows]

    survivors = ops.to_int(benchmark(_and_reduce, ops, rows))

    int_ops = make_ops("int")
    reference = _and_reduce(
        int_ops, [int_ops.from_ids(ids) for ids in bitset_id_rows]
    )
    assert survivors == int_ops.to_int(reference)


@pytest.mark.parametrize("substrate", sorted(available_substrates()))
def test_bitset_popcount(benchmark, bitset_id_rows, substrate):
    """Popcount over a quarter-full 100k-bit set (engine stats path)."""
    ops = make_ops(substrate)
    value = ops.from_ids(bitset_id_rows[0])

    result = benchmark(ops.popcount, value)

    assert result == len(set(bitset_id_rows[0]))


def test_index_prefilter_speedup(benchmark, graphs, pattern):
    """Coverage with the FCT/IFE prefilter (the Section 6.1 trick)."""
    fct_set = FCTSet(graphs, 0.5, max_edges=3)
    pair = IndexPair.build(fct_set, graphs)

    def covered():
        oracle = CoverageOracle(graphs, index_pair=pair)
        return len(oracle.cover(pattern)), oracle.isomorphism_tests

    covered_count, tests = benchmark(covered)
    # The prefilter must not affect correctness...
    plain = CoverageOracle(graphs)
    assert covered_count == len(plain.cover(pattern))
    # ...and should skip at least some isomorphism tests.
    assert tests <= len(graphs)
