"""Benchmark E-FIG15: the baseline comparison on PubChem-like data
(paper Figure 15).  Same protocol and expected shape as E-FIG14.
"""

from repro.bench.experiments import fig15

from .conftest import run_once


def test_fig15_baselines_pubchem(benchmark, scale):
    table = run_once(benchmark, fig15.run, scale)
    print()
    table.show()
    approaches = set(table.column_values("approach"))
    assert approaches == {"midas", "random", "catapult", "catapult++"}
    # μ of MIDAS against itself is 0 by definition.
    for row in table.rows:
        if row[1] == "midas":
            assert abs(row[4]) < 1e-9
