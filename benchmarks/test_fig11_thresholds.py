"""Benchmark E-FIG11: ε and κ=λ threshold sweeps (paper Figure 11).

Expected shape: PMT roughly flat in ε until large ε suppresses
maintenance entirely; PMT far below the from-scratch CATAPULT++ total;
κ sweeps barely move PMT/PGT.
"""

from repro.bench.experiments import fig11

from .conftest import run_once


def test_fig11_thresholds(benchmark, scale):
    epsilon_table, kappa_table = run_once(benchmark, fig11.run, scale)
    print()
    epsilon_table.show()
    kappa_table.show()
    # Larger ε must not classify more batches as major than smaller ε.
    majors = epsilon_table.column_values("major")
    assert majors == sorted(majors, reverse=True)
    assert len(kappa_table.rows) == 4
