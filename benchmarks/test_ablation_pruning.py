"""Benchmark A-ABL2: coverage-based pruning on/off (Section 5.2)."""

from repro.bench.experiments import ablations

from .conftest import run_once


def test_ablation_pruning(benchmark, scale):
    table = run_once(benchmark, ablations.run_pruning, scale)
    print()
    table.show()
    gated = table.column_values("gated")
    ungated = table.column_values("ungated")
    promising = table.column_values("promising")
    # The gate can only remove candidates, never invent them...
    assert all(g <= u for g, u in zip(gated, ungated))
    # ...and the Definition 5.5 filter only narrows further.
    assert all(p <= g for p, g in zip(promising, gated))
