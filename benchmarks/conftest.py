"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one figure of the paper and prints its table;
``REPRO_BENCH_SCALE`` (small | medium | large) selects the dataset scale.
Benchmarks run with ``rounds=1`` because each figure is itself a full
experiment, not a micro-benchmark.

Observability (see docs/OBSERVABILITY.md): set ``REPRO_METRICS_OUT`` to
a path to export a JSON metrics snapshot covering the whole benchmark
session, ``REPRO_METRICS_REPORT=1`` to print the human-readable span
tree at the end, and ``REPRO_TRACE_MEMORY=1`` to capture tracemalloc
peak memory per span.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import ExperimentScale, scaled
from repro.obs import (
    render_metrics_report,
    set_trace_memory,
    write_metrics_json,
)

_SCALES = {
    "small": ExperimentScale(
        base_graphs=80,
        batch_percent=20.0,
        family_batch=30,
        queries=60,
        gamma=10,
        eta_max=7,
        sample_cap=100,
        num_clusters=4,
    ),
    "medium": ExperimentScale(),
    "large": ExperimentScale(
        base_graphs=400,
        batch_percent=20.0,
        family_batch=120,
        queries=300,
        gamma=24,
        eta_max=10,
        sample_cap=300,
        num_clusters=10,
    ),
}


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}"
        ) from None


@pytest.fixture(scope="session", autouse=True)
def metrics_export():
    """Export collected metrics when the environment asks for them."""
    if os.environ.get("REPRO_TRACE_MEMORY") == "1":
        set_trace_memory(True)
    yield
    out = os.environ.get("REPRO_METRICS_OUT")
    if out:
        write_metrics_json(out)
        print(f"\nmetrics written to {out}")
    if os.environ.get("REPRO_METRICS_REPORT") == "1":
        print()
        print(render_metrics_report())


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


__all__ = ["run_once", "scaled"]
