"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one figure of the paper and prints its table;
``REPRO_BENCH_SCALE`` (small | medium | large) selects the dataset scale.
Benchmarks run with ``rounds=1`` because each figure is itself a full
experiment, not a micro-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import ExperimentScale, scaled

_SCALES = {
    "small": ExperimentScale(
        base_graphs=80,
        batch_percent=20.0,
        family_batch=30,
        queries=60,
        gamma=10,
        eta_max=7,
        sample_cap=100,
        num_clusters=4,
    ),
    "medium": ExperimentScale(),
    "large": ExperimentScale(
        base_graphs=400,
        batch_percent=20.0,
        family_batch=120,
        queries=300,
        gamma=24,
        eta_max=10,
        sample_cap=300,
        num_clusters=10,
    ),
}


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}"
        ) from None


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


__all__ = ["run_once", "scaled"]
