"""Benchmark E-FIG13: MIDAS vs NoMaintain (paper Figure 13).

Expected shape: MIDAS's MP is at most NoMaintain's on every batch, and
strictly better somewhere on the grid; scov and div never worse.
"""

from repro.bench.experiments import fig13

from .conftest import run_once


def test_fig13_nomaintain(benchmark, scale):
    table = run_once(benchmark, fig13.run, scale)
    print()
    table.show()
    rows = {}
    for row in table.rows:
        batch, approach = row[0], row[1]
        rows.setdefault(batch, {})[approach] = row
    for batch, by_approach in rows.items():
        midas_mp = by_approach["midas"][2]
        nomaintain_mp = by_approach["nomaintain"][2]
        assert midas_mp <= nomaintain_mp + 1e-9, (
            f"MIDAS MP worse than NoMaintain on batch {batch}"
        )
        # Progressive-gain guarantee: coverage never regresses.
        assert by_approach["midas"][3] >= by_approach["nomaintain"][3] - 1e-9
