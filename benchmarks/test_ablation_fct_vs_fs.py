"""Benchmark A-ABL1: incremental FCT maintenance vs frequent-subtree
re-mining (the Section 3.3 scaffolding decision in isolation)."""

from repro.bench.experiments import ablations

from .conftest import run_once


def test_ablation_fct_vs_fs(benchmark, scale):
    table = run_once(benchmark, ablations.run_fct_vs_fs, scale)
    print()
    table.show()
    speedups = table.column_values("speedup")
    # Incremental maintenance should win on most batches.
    wins = sum(1 for s in speedups if s > 1.0)
    assert wins * 2 >= len(speedups)
