"""Benchmark A-ABL3: GFD distance measure choice (Section 3.4).

The paper's technical report claims alternative distance measures do not
significantly change behaviour; we verify the severity *ordering* of
batches agrees across measures.
"""

from repro.bench.experiments import ablations

from .conftest import run_once


def test_ablation_distance(benchmark, scale):
    table = run_once(benchmark, ablations.run_distance_measures, scale)
    print()
    table.show()
    assert len(table.rows) == 4  # one per grid batch
    # Normalised severities must be in [0, 1].
    for row in table.rows:
        for value in row[1:]:
            assert -1e-9 <= value <= 1.0 + 1e-9
