"""Benchmark A-ABL4: walk-based candidate generation vs frequent
subgraph mining — CATAPULT's central design bet, measured."""

from repro.bench.experiments import ablations

from .conftest import run_once


def test_ablation_walks_vs_fsm(benchmark, scale):
    table = run_once(benchmark, ablations.run_walks_vs_fsm, scale)
    print()
    table.show()
    rows = {row[0]: row for row in table.rows}
    walk_seconds = rows["random-walk FCPs"][2]
    fsm_seconds = rows["frequent subgraphs"][2]
    # Walks must be at least an order of magnitude cheaper.
    assert walk_seconds * 10 <= fsm_seconds
    # ... at coverage within 20% of the exhaustive pool's.
    walk_cov = rows["random-walk FCPs"][3]
    fsm_cov = rows["frequent subgraphs"][3]
    assert walk_cov >= 0.8 * fsm_cov
