"""Benchmark E-FIG12: FCT and index construction/maintenance costs
(paper Figure 12).

Expected shape: all costs grow with |D|; the FCT-Index costs more to
build than the IFE-Index; memory stays modest; |FCT|/|D| shrinks.
"""

from repro.bench.experiments import fig12

from .conftest import run_once


def test_fig12_index_cost(benchmark, scale):
    sizes = (
        scale.base_graphs // 2,
        scale.base_graphs,
        scale.base_graphs * 2,
    )
    table = run_once(benchmark, fig12.run, scale, sizes)
    print()
    table.show()
    mine_times = table.column_values("fct_mine")
    assert mine_times[-1] >= mine_times[0]  # cost grows with |D|
    ratios = table.column_values("fct_ratio")
    assert ratios[-1] <= ratios[0]  # |FCT|/|D| shrinks with |D|
    fct_builds = table.column_values("fct_index_build")
    ife_builds = table.column_values("ife_index_build")
    assert all(f >= i for f, i in zip(fct_builds, ife_builds))
