"""Benchmark E-FIG16: scalability (paper Figure 16).

Expected shape: PMT grows with |D|; PMT and cluster-maintenance speedups
over from-scratch CATAPULT++ are > 1 and grow with |D| (the paper's
headline: 642× cluster maintenance, 83× PMT at PubChem-1M).
"""

from repro.bench.experiments import fig16

from .conftest import run_once


def test_fig16_scalability(benchmark, scale):
    sizes = (
        max(scale.base_graphs // 2, 30),
        scale.base_graphs,
        scale.base_graphs * 2,
    )
    table = run_once(
        benchmark, fig16.run, scale, sizes, max(scale.base_graphs // 4, 10)
    )
    print()
    table.show()
    speedups = table.column_values("pmt_speedup")
    # Maintenance must beat from-scratch selection at the largest scale.
    assert speedups[-1] > 1.0, "no PMT speedup over from-scratch"
    cluster_speedups = table.column_values("cluster_speedup")
    assert cluster_speedups[-1] > 1.0
