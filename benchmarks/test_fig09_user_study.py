"""Benchmark E-FIG9: the simulated user study on PubChem-like data.

Regenerates paper Figure 9 (QFT / steps / VMT per approach per query
set).  Expected shape: MIDAS ≤ from-scratch selectors < NoMaintain,
largest gap on Qs3 (queries from Δ⁺).
"""

from repro.bench.experiments import fig09

from .conftest import run_once


def test_fig09_user_study(benchmark, scale):
    table = run_once(benchmark, fig09.run, scale)
    print()
    table.show()
    approaches = table.column_values("approach")
    assert approaches.count("midas") == 3  # one row per query set
    qft = table.column_values("qft")
    assert all(value >= 0 for value in qft)
