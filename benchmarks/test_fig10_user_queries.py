"""Benchmark E-FIG10: user-specified queries across the three datasets.

Regenerates paper Figure 10 (average QFT / steps / VMT per approach per
dataset).  Expected shape: MIDAS lowest on average.
"""

from repro.bench.experiments import fig10

from .conftest import run_once


def test_fig10_user_queries(benchmark, scale):
    table = run_once(benchmark, fig10.run, scale)
    print()
    table.show()
    datasets = set(table.column_values("dataset"))
    assert datasets == {"pubchem", "aids", "emol"}
    assert len(table.rows) == 12  # 3 datasets x 4 approaches
