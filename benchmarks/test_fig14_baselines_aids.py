"""Benchmark E-FIG14: MIDAS vs CATAPULT / CATAPULT++ / Random on
AIDS-like data (paper Figure 14).

Expected shape: MIDAS maintenance time well below from-scratch CATAPULT;
MIDAS MP never worse than Random's; quality comparable to from-scratch.
"""

from repro.bench.experiments import fig14

from .conftest import run_once


def test_fig14_baselines_aids(benchmark, scale):
    table = run_once(benchmark, fig14.run, scale)
    print()
    table.show()
    by_batch: dict[str, dict[str, tuple]] = {}
    for row in table.rows:
        by_batch.setdefault(row[0], {})[row[1]] = row
    midas_faster_count = 0
    for batch, rows in by_batch.items():
        midas_time = rows["midas"][2]
        catapult_time = rows["catapult"][2]
        if midas_time < catapult_time:
            midas_faster_count += 1
    # MIDAS must beat from-scratch CATAPULT on the majority of batches.
    assert midas_faster_count * 2 >= len(by_batch), (
        "MIDAS not faster than from-scratch CATAPULT on most batches"
    )
