"""Unit tests for repro.isomorphism — validated against networkx."""

import random

import networkx as nx
import pytest
from networkx.algorithms import isomorphism as nx_iso

from repro.graph import LabeledGraph
from repro.isomorphism import (
    VF2Matcher,
    contains,
    count_embeddings,
    covered_graphs,
    find_embedding,
    find_embeddings,
)

from .conftest import make_graph


def to_networkx(graph: LabeledGraph) -> nx.Graph:
    g = nx.Graph()
    for v in graph.vertices():
        g.add_node(v, label=graph.label(v))
    g.add_edges_from(graph.edges())
    return g


def nx_has_monomorphism(host: LabeledGraph, pattern: LabeledGraph) -> bool:
    matcher = nx_iso.GraphMatcher(
        to_networkx(host),
        to_networkx(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_is_monomorphic()


def random_graph(n: int, p: float, labels: str, rng: random.Random) -> LabeledGraph:
    g = LabeledGraph()
    for v in range(n):
        g.add_vertex(v, rng.choice(labels))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestBasics:
    def test_edge_in_triangle(self, triangle):
        p = make_graph("CC", [(0, 1)])
        assert contains(triangle, p)
        assert count_embeddings(triangle, p) == 6  # 3 edges x 2 directions

    def test_label_mismatch(self, triangle):
        p = make_graph("CO", [(0, 1)])
        assert not contains(triangle, p)

    def test_pattern_larger_than_host(self, triangle):
        p = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        assert not contains(triangle, p)

    def test_monomorphism_vs_induced(self, triangle, path3):
        assert contains(triangle, path3)                 # monomorphism
        assert not contains(triangle, path3, induced=True)

    def test_induced_match(self):
        host = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        p = make_graph("CCC", [(0, 1), (1, 2)])
        assert contains(host, p, induced=True)

    def test_empty_pattern_matches(self, triangle):
        assert contains(triangle, LabeledGraph())

    def test_find_embedding_is_valid(self):
        host = make_graph("CONC", [(0, 1), (1, 2), (2, 3), (3, 0)])
        p = make_graph("CO", [(0, 1)])
        embedding = find_embedding(host, p)
        assert embedding is not None
        (u, v) = embedding[0], embedding[1]
        assert host.has_edge(u, v)
        assert host.label(u) == "C" and host.label(v) == "O"

    def test_find_embedding_none(self, triangle):
        assert find_embedding(triangle, make_graph("NN", [(0, 1)])) is None

    def test_find_embeddings_limit(self, triangle):
        p = make_graph("CC", [(0, 1)])
        assert len(find_embeddings(triangle, p, limit=3)) == 3

    def test_count_limit(self, triangle):
        p = make_graph("CC", [(0, 1)])
        assert count_embeddings(triangle, p, limit=4) == 4

    def test_embeddings_are_injective(self):
        host = make_graph("CCC", [(0, 1), (1, 2)])
        p = make_graph("CC", [(0, 1)])
        for embedding in find_embeddings(host, p):
            assert len(set(embedding.values())) == len(embedding)

    def test_disconnected_pattern(self):
        host = make_graph("COCN", [(0, 1), (2, 3)])
        p = LabeledGraph.from_edges(
            {0: "C", 1: "O", 2: "C", 3: "N"}, [(0, 1), (2, 3)]
        )
        assert contains(host, p)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(20))
    def test_monomorphism_agrees_with_networkx(self, seed):
        rng = random.Random(seed)
        host = random_graph(rng.randint(4, 9), 0.4, "CNO", rng)
        pattern = random_graph(rng.randint(2, 4), 0.6, "CNO", rng)
        if pattern.num_edges == 0 or not pattern.is_connected():
            return
        expected = nx_has_monomorphism(host, pattern)
        assert contains(host, pattern) == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_embedding_count_agrees_with_networkx(self, seed):
        rng = random.Random(seed + 100)
        host = random_graph(6, 0.5, "CN", rng)
        pattern = random_graph(3, 0.8, "CN", rng)
        if not pattern.is_connected() or pattern.num_edges == 0:
            return
        matcher = nx_iso.GraphMatcher(
            to_networkx(host),
            to_networkx(pattern),
            node_match=lambda a, b: a["label"] == b["label"],
        )
        expected = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        assert count_embeddings(host, pattern) == expected


class TestCoveredGraphs:
    def test_covered_graphs(self, paper_db):
        p = make_graph("CO", [(0, 1)])
        covered = covered_graphs(paper_db, p)
        assert covered == {0, 1, 2, 3, 5, 6, 7, 8}

    def test_candidate_restriction(self, paper_db):
        p = make_graph("CO", [(0, 1)])
        covered = covered_graphs(paper_db, p, candidate_ids=[0, 4])
        assert covered == {0}


class TestMatcherInternals:
    def test_prefilter_rejects_label_shortage(self, triangle):
        p = make_graph("CCO", [(0, 1), (1, 2)])
        matcher = VF2Matcher(p, triangle)
        assert not matcher.has_match()

    def test_matching_order_covers_all_vertices(self):
        p = make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
        host = make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
        matcher = VF2Matcher(p, host)
        assert sorted(matcher._order, key=repr) == sorted(
            p.vertices(), key=repr
        )
