"""Unit tests for repro.graphlets."""

import random

import numpy as np
import pytest

from repro.graph import LabeledGraph
from repro.graphlets import (
    ATLAS,
    DISTANCE_MEASURES,
    GRAPHLET_NAMES,
    GraphletDistribution,
    count_graphlets,
    count_graphlets_bruteforce,
    database_distribution,
    distribution_distance,
    graphlet_by_name,
)

from .conftest import make_graph


def random_unlabeled(n, p, rng):
    g = LabeledGraph()
    for v in range(n):
        g.add_vertex(v, "X")
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestAtlas:
    def test_nine_graphlets(self):
        assert len(ATLAS) == 9
        assert len(GRAPHLET_NAMES) == 9

    def test_vertex_counts(self):
        sizes = [g.num_vertices for g in ATLAS]
        assert sizes == [2, 3, 3, 4, 4, 4, 4, 4, 4]

    def test_as_graph_connected(self):
        for graphlet in ATLAS:
            materialised = graphlet.as_graph()
            assert materialised.is_connected()
            assert materialised.num_edges == len(graphlet.edges)

    def test_lookup(self):
        assert graphlet_by_name("triangle").index == 2
        with pytest.raises(KeyError):
            graphlet_by_name("pentagon")


class TestCounting:
    def test_each_graphlet_counts_itself_once(self):
        for graphlet in ATLAS:
            counts = count_graphlets(graphlet.as_graph())
            assert counts[graphlet.index] == 1, graphlet.name

    @pytest.mark.parametrize("seed", range(25))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        g = random_unlabeled(rng.randint(2, 9), rng.uniform(0.2, 0.8), rng)
        assert np.array_equal(
            count_graphlets(g), count_graphlets_bruteforce(g)
        )

    def test_empty_graph(self):
        assert count_graphlets(LabeledGraph()).sum() == 0

    def test_counts_nonnegative(self):
        rng = random.Random(99)
        for _ in range(10):
            g = random_unlabeled(8, 0.5, rng)
            assert (count_graphlets(g) >= 0).all()


class TestDistribution:
    def test_add_remove_roundtrip(self, paper_db):
        graphs = dict(paper_db.items())
        dist = GraphletDistribution(graphs)
        before = dist.totals()
        extra = make_graph("CCC", [(0, 1), (1, 2), (0, 2)])
        dist.add(100, extra)
        dist.remove(100)
        assert np.allclose(dist.totals(), before)

    def test_duplicate_add_rejected(self, paper_db):
        dist = GraphletDistribution(dict(paper_db.items()))
        with pytest.raises(ValueError):
            dist.add(0, make_graph("CO", [(0, 1)]))

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            GraphletDistribution().remove(5)

    def test_frequencies_normalised(self, paper_db):
        dist = database_distribution(dict(paper_db.items()))
        assert dist.frequencies().sum() == pytest.approx(1.0)

    def test_empty_distribution_zero(self):
        assert GraphletDistribution().frequencies().sum() == 0.0

    def test_as_dict_keys(self, paper_db):
        dist = database_distribution(dict(paper_db.items()))
        assert set(dist.as_dict()) == set(GRAPHLET_NAMES)

    def test_copy_independent(self, paper_db):
        dist = database_distribution(dict(paper_db.items()))
        clone = dist.copy()
        clone.remove(0)
        assert dist.num_graphs == 9
        assert clone.num_graphs == 8


class TestDistances:
    def test_identity_is_zero(self, paper_db):
        dist = database_distribution(dict(paper_db.items()))
        for measure in DISTANCE_MEASURES:
            assert distribution_distance(dist, dist, measure) == pytest.approx(
                0.0
            )

    def test_unknown_measure(self, paper_db):
        dist = database_distribution(dict(paper_db.items()))
        with pytest.raises(ValueError):
            distribution_distance(dist, dist, "chebyshev")

    def test_accepts_raw_vectors(self):
        a = [0.5, 0.5] + [0.0] * 7
        b = [1.0, 0.0] + [0.0] * 7
        assert distribution_distance(a, b) == pytest.approx(
            np.sqrt(0.5)
        )

    def test_symmetry(self, paper_db, molecule_db):
        d1 = database_distribution(dict(paper_db.items()))
        d2 = database_distribution(dict(molecule_db.items()))
        for measure in DISTANCE_MEASURES:
            assert distribution_distance(d1, d2, measure) == pytest.approx(
                distribution_distance(d2, d1, measure)
            )

    def test_family_shift_larger_than_random(self):
        from repro.datasets import aids_like, family_injection, random_insertions

        db = aids_like(80, seed=3)
        base = database_distribution(dict(db.items()))
        family = database_distribution(
            dict(db.updated(family_injection(30, seed=5)).items())
        )
        random_batch = database_distribution(
            dict(db.updated(random_insertions(db, 10, seed=5)).items())
        )
        assert distribution_distance(base, family) > distribution_distance(
            base, random_batch
        )
