"""Direct checks of the paper's lemmas on concrete data.

* **Lemma 3.4** — a tree closed in D or in ΔD is closed in D ⊕ ΔD.
* **Lemma 3.5** — every canned pattern contains graphlets and edges.
* **Lemma 4.5** — mining at sup_min/2 retains every tree that is
  frequent at sup_min after the modification (bounded deletions).
* **Lemma 6.3** — the κ schedule's approximation ratio is monotone and
  bounded by [0.25, 0.5] (tested in test_midas_swap, re-checked here
  against the remark's fixed point).
"""

import pytest

from repro.graph import GraphDatabase
from repro.graphlets import count_graphlets
from repro.midas import kappa_schedule
from repro.trees import TreeMiner

from .conftest import make_graph


def closed_keys(graphs, min_support, max_edges=3):
    mined = TreeMiner(graphs, min_support, max_edges=max_edges).mine_frequent()
    return {
        repr(t.key)
        for t in mined
        # Frontier-size trees are reported closed without verification;
        # exclude them so the check is exact.
        if t.closed and t.num_edges < max_edges
    }


class TestLemma34:
    """Closure property: closed in D or ΔD ⇒ closed in D ⊕ ΔD."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_closure_under_union(self, seed):
        from repro.datasets import MoleculeGenerator

        base = {
            i: g
            for i, g in enumerate(
                MoleculeGenerator(seed=seed).generate_many(8)
            )
        }
        delta = {
            100 + i: g
            for i, g in enumerate(
                MoleculeGenerator(seed=seed + 50).generate_many(4)
            )
        }
        union = dict(base)
        union.update(delta)
        # Use a minimal threshold so "frequent" barely filters.
        eps = 1e-9
        threshold_base = 1 / len(base) - eps
        threshold_delta = 1 / len(delta) - eps
        threshold_union = 1 / len(union) - eps
        closed_base = closed_keys(base, threshold_base)
        closed_delta = closed_keys(delta, threshold_delta)
        closed_union = closed_keys(union, threshold_union)
        assert closed_base <= closed_union
        assert closed_delta <= closed_union


class TestLemma35:
    """Any canned pattern (η ≥ 3) contains graphlets and edges."""

    def test_patterns_decompose_into_graphlets(self, molecule_db):
        from repro.catapult import Catapult, CatapultConfig
        from repro.patterns import PatternBudget

        config = CatapultConfig(
            budget=PatternBudget(3, 6, 6),
            sup_min=0.5,
            num_clusters=3,
            sample_cap=30,
        )
        result = Catapult(config).run(molecule_db)
        assert len(result.patterns) > 0
        for pattern in result.patterns:
            counts = count_graphlets(pattern.graph)
            assert counts[0] >= 3          # edges (η_min > 2)
            assert counts[1:].sum() >= 1   # at least one 3/4-node graphlet


class TestLemma45:
    """Halving sup_min prevents missing FCTs after modification."""

    def test_deletion_inflation_bounded(self, paper_db):
        graphs = dict(paper_db.items())
        sup_min = 0.5
        relaxed = TreeMiner(graphs, sup_min / 2, max_edges=3).mine_frequent()
        relaxed_keys = {repr(t.key) for t in relaxed}
        # Delete up to half the database in every possible prefix order.
        survivors = dict(graphs)
        for victim in list(graphs)[: len(graphs) // 2]:
            del survivors[victim]
            frequent_now = TreeMiner(
                survivors, sup_min, max_edges=3
            ).mine_frequent()
            for tree in frequent_now:
                assert repr(tree.key) in relaxed_keys, (
                    "a tree frequent after deletion was not in the "
                    "relaxed pool"
                )


class TestLemma63:
    def test_ratio_window(self):
        sigma = 0.25
        for _ in range(30):
            kappa, sigma = kappa_schedule(sigma)
            assert 0.0 <= kappa <= 0.5
            assert 0.25 <= sigma <= 0.5


class TestProposition41:
    """Adding a graph that contains a closed tree does not change the
    number of closed trees (Proposition 4.1)."""

    def test_adding_superset_graph(self):
        base = {
            0: make_graph("COS", [(0, 1), (0, 2)]),
            1: make_graph("COS", [(0, 1), (0, 2)]),
            2: make_graph("CO", [(0, 1)]),
        }
        eps = 1e-9
        before = closed_keys(base, 1 / 3 - eps)
        # G3 contains every tree of the database (a supergraph of G0).
        extended = dict(base)
        extended[3] = make_graph("COSN", [(0, 1), (0, 2), (0, 3)])
        after = closed_keys(extended, 1 / 4 - eps)
        assert before <= after
