"""The pattern-serving layer: snapshots, the service, HTTP, the oracle.

The load-bearing claims under test (see docs/SERVING.md):

* snapshot isolation — a reader pinned at version *v* observes exactly
  the version-*v* pattern set, bit for bit, no matter how many
  maintenance rounds commit after the pin;
* failure atomicity — a rolled-back round publishes nothing, so the
  served head is untouched (the serving half of the PR-2 transactional
  guarantee);
* observability — the serve.* metric namespace is populated and
  exposed through ``GET /metricz``.
"""

from __future__ import annotations

import asyncio
import re

import pytest

from repro import api
from repro.check import run_oracle
from repro.datasets import aids_like, family_injection
from repro.midas import MidasConfig
from repro.obs import get_registry
from repro.patterns import PatternBudget
from repro.patterns.metrics import CoverageOracle
from repro.resilience import Fault, inject_faults
from repro.serve import (
    PatternServer,
    PatternService,
    ROUTES,
    SnapshotStore,
    build_snapshot,
    endpoints,
)
from repro.serve.bench import HttpClient, run_smoke


def make_midas(seed: int = 5):
    """A cheap bootstrapped maintainer (~1s) for service-level tests."""
    return api.bootstrap(
        aids_like(24, seed=11),
        config=MidasConfig(
            budget=PatternBudget(3, 6, 6),
            num_clusters=3,
            sample_cap=40,
            seed=seed,
        ),
    )


def signature(snapshot) -> tuple:
    """Everything a reader can observe through a snapshot."""
    return (
        snapshot.version,
        snapshot.database_size,
        snapshot.sample_size,
        snapshot.set_scov,
        tuple(
            (entry.pattern_id, tuple(sorted(entry.cover)), entry.scov)
            for entry in snapshot.patterns
        ),
    )


@pytest.fixture(scope="module")
def frozen_midas():
    """Shared read-only maintainer; tests must not apply updates to it."""
    return make_midas()


# ----------------------------------------------------------------------
# SnapshotStore unit behaviour
# ----------------------------------------------------------------------
def empty_snapshot(version: int):
    return build_snapshot(version, [], CoverageOracle({}), database_size=0)


class TestSnapshotStore:
    def test_versions_increase_by_one(self):
        store = SnapshotStore()
        assert store.version == 0
        with pytest.raises(RuntimeError):
            store.current()
        store.publish(empty_snapshot(1))
        assert store.version == 1
        with pytest.raises(ValueError):
            store.publish(empty_snapshot(3))
        with pytest.raises(ValueError):
            store.publish(empty_snapshot(1))
        store.publish(empty_snapshot(2))
        assert store.current().version == 2

    def test_release_reports_version_lag(self):
        registry = get_registry()
        stale_before = registry.counter("serve.stale_reads").value
        store = SnapshotStore()
        store.publish(empty_snapshot(1))
        lease = store.pin()
        store.publish(empty_snapshot(2))
        store.publish(empty_snapshot(3))
        assert lease.version == 1
        assert lease.release() == 2
        assert registry.gauge("serve.staleness").value == 2
        assert registry.counter("serve.stale_reads").value == stale_before + 1
        # releasing twice is a no-op
        assert lease.release() == 0

    def test_fresh_release_is_not_stale(self):
        registry = get_registry()
        stale_before = registry.counter("serve.stale_reads").value
        store = SnapshotStore()
        store.publish(empty_snapshot(1))
        with store.pin() as lease:
            assert lease.snapshot.version == 1
        assert registry.gauge("serve.staleness").value == 0
        assert registry.counter("serve.stale_reads").value == stale_before


class TestBuildSnapshot:
    def test_freezes_covers_and_scov(self, frozen_midas):
        midas = frozen_midas
        snapshot = build_snapshot(
            1,
            ((p.pattern_id, p.graph, p.provenance) for p in midas.patterns),
            midas.oracle,
            database_size=len(midas.database),
        )
        assert snapshot.pattern_ids() == [
            p.pattern_id for p in midas.patterns
        ]
        assert snapshot.sample_size == midas.oracle.universe_size
        for entry in snapshot.patterns:
            assert entry.cover == midas.oracle.cover(entry.graph)
            assert entry.scov == midas.oracle.scov(entry.graph)
        assert snapshot.set_scov == midas.oracle.set_scov(
            [entry.graph for entry in snapshot.patterns]
        )
        assert snapshot.pattern(10**9) is None

    def test_to_dict_shapes(self, frozen_midas):
        snapshot = build_snapshot(
            1,
            (
                (p.pattern_id, p.graph, p.provenance)
                for p in frozen_midas.patterns
            ),
            frozen_midas.oracle,
            database_size=len(frozen_midas.database),
        )
        payload = snapshot.to_dict()
        assert payload["version"] == 1
        assert {"id", "provenance", "scov", "cover_size", "graph"} <= set(
            payload["patterns"][0]
        )
        meta = snapshot.to_dict(include_graphs=False)
        assert "graph" not in meta["patterns"][0]


# ----------------------------------------------------------------------
# service-level snapshot isolation
# ----------------------------------------------------------------------
class TestPatternService:
    def test_pinned_reader_never_sees_a_committed_round(self):
        async def scenario():
            service = PatternService(make_midas())
            await service.start()
            try:
                lease = service.store.pin()
                before = signature(lease.snapshot)
                status = service.submit(family_injection(6, seed=3))
                assert status.state == "queued"
                final = await service.wait_for(status.update_id)
                assert final.state == "applied"
                assert final.version == 2
                assert final.inserted_ids
                # The pinned reader still observes version 1, bit for
                # bit, even though the head moved on.
                assert lease.snapshot.version == 1
                assert signature(lease.snapshot) == before
                assert service.store.version == 2
                assert lease.release() == 1
                with service.store.pin() as fresh:
                    assert fresh.snapshot.version == 2
                    assert fresh.snapshot.database_size == len(
                        service.midas.database
                    )
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_rollback_leaves_published_snapshot_untouched(self):
        async def scenario():
            service = PatternService(make_midas())
            await service.start()
            try:
                before = signature(service.store.current())
                with inject_faults({"midas.detect": Fault(times=None)}):
                    status = service.submit(family_injection(6, seed=3))
                    final = await service.wait_for(status.update_id)
                assert final.state == "rolled_back"
                assert final.version is None
                assert service.store.version == 1
                assert signature(service.store.current()) == before
                # The service stays healthy: the next round commits.
                status = service.submit(family_injection(6, seed=4))
                final = await service.wait_for(status.update_id)
                assert final.state == "applied"
                assert final.version == 2
            finally:
                await service.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# HTTP end to end (real TCP, real parsing)
# ----------------------------------------------------------------------
class TestHttpServer:
    def test_endpoints_and_errors(self):
        async def scenario():
            server = PatternServer(PatternService(make_midas()), port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request("GET", "/patterns")
                assert status == 200
                assert body["version"] == 1
                assert body["patterns"]
                first = body["patterns"][0]
                assert {"id", "provenance", "scov", "cover_size", "graph"} \
                    <= set(first)

                status, body = await client.request(
                    "GET", "/patterns?meta_only=1"
                )
                assert status == 200
                assert "graph" not in body["patterns"][0]

                pattern_id = first["id"]
                status, body = await client.request(
                    "GET", f"/cover?pattern={pattern_id}"
                )
                assert status == 200
                assert len(body["cover"]) == first["cover_size"]
                assert body["version"] == 1

                status, body = await client.request("GET", "/scov")
                assert status == 200
                assert 0.0 <= body["set_scov"] <= 1.0

                status, body = await client.request("GET", "/healthz")
                assert status == 200
                assert body["status"] == "ok"

                # the error surface, as documented in docs/SERVING.md
                status, body = await client.request("GET", "/cover")
                assert (status, body["error"]["code"]) == (400, "bad_request")
                status, body = await client.request(
                    "GET", "/cover?pattern=abc"
                )
                assert (status, body["error"]["code"]) == (400, "bad_request")
                status, body = await client.request(
                    "GET", "/cover?pattern=999999"
                )
                assert (status, body["error"]["code"]) == (
                    404,
                    "unknown_pattern",
                )
                status, body = await client.request("GET", "/nope")
                assert (status, body["error"]["code"]) == (404, "not_found")
                status, body = await client.request("POST", "/patterns")
                assert (status, body["error"]["code"]) == (
                    405,
                    "method_not_allowed",
                )
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": [{"bad": 1}]}
                )
                assert (status, body["error"]["code"]) == (400, "bad_update")
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_update_commit_and_metricz(self):
        async def scenario():
            from repro.graph.io import graph_to_dict

            server = PatternServer(PatternService(make_midas()), port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                update = family_injection(5, seed=7)
                payload = {
                    "insertions": [
                        graph_to_dict(g) for g in update.insertions
                    ],
                    "deletions": [],
                }
                status, body = await client.request(
                    "POST", "/updates?wait=1", payload=payload
                )
                assert status == 200
                assert body["status"] == "applied"
                assert body["version"] == 2
                assert len(body["inserted_ids"]) == 5

                status, body = await client.request("GET", "/patterns")
                assert body["version"] == 2

                status, body = await client.request("GET", "/metricz")
                assert status == 200
                counters = body["counters"]
                assert counters["serve.requests"] >= 3
                assert counters["serve.updates_applied"] >= 1
                assert counters["serve.snapshots_published"] >= 2
                assert body["gauges"]["serve.version"] >= 2
                assert "serve.request_ms" in body["histograms"]
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_fire_and_forget_update_is_accepted(self):
        async def scenario():
            server = PatternServer(PatternService(make_midas()), port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": []}
                )
                assert status == 202
                assert body["status"] == "queued"
                assert body["update_id"] >= 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())


class TestSmokeGate:
    def test_run_smoke_passes(self, capsys):
        assert run_smoke(make_midas()) == 0
        assert "serve smoke ok" in capsys.readouterr().out


class TestServeOracle:
    def test_seeded_fuzz_budget_is_clean(self):
        report = run_oracle("serve", seed=0, budget=10)
        assert report.ok, report.summary()


class TestRouteTable:
    def test_endpoints_mirror_routes(self):
        listed = endpoints()
        assert len(listed) == len(ROUTES)
        for method, path in ROUTES:
            assert f"{method} {path}" in listed
            assert re.fullmatch(r"(GET|POST)", method)
            assert path.startswith("/")
