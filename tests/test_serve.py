"""The pattern-serving layer: snapshots, the service, HTTP, the oracle.

The load-bearing claims under test (see docs/SERVING.md):

* snapshot isolation — a reader pinned at version *v* observes exactly
  the version-*v* pattern set, bit for bit, no matter how many
  maintenance rounds commit after the pin;
* failure atomicity — a rolled-back round publishes nothing, so the
  served head is untouched (the serving half of the PR-2 transactional
  guarantee);
* observability — the serve.* metric namespace is populated and
  exposed through ``GET /metricz``.
"""

from __future__ import annotations

import asyncio
import re

import pytest

from repro import api
from repro.check import run_oracle
from repro.datasets import aids_like, family_injection
from repro.midas import MidasConfig
from repro.obs import get_registry
from repro.patterns import PatternBudget
from repro.patterns.metrics import CoverageOracle
from repro.resilience import Fault, inject_faults
from repro.serve import (
    PatternServer,
    PatternService,
    ROUTES,
    SnapshotStore,
    build_snapshot,
    endpoints,
)
from repro.serve.bench import HttpClient, run_smoke


def make_midas(seed: int = 5):
    """A cheap bootstrapped maintainer (~1s) for service-level tests."""
    return api.bootstrap(
        aids_like(24, seed=11),
        config=MidasConfig(
            budget=PatternBudget(3, 6, 6),
            num_clusters=3,
            sample_cap=40,
            seed=seed,
        ),
    )


def signature(snapshot) -> tuple:
    """Everything a reader can observe through a snapshot."""
    return (
        snapshot.version,
        snapshot.database_size,
        snapshot.sample_size,
        snapshot.set_scov,
        tuple(
            (entry.pattern_id, tuple(sorted(entry.cover)), entry.scov)
            for entry in snapshot.patterns
        ),
    )


@pytest.fixture(scope="module")
def frozen_midas():
    """Shared read-only maintainer; tests must not apply updates to it."""
    return make_midas()


# ----------------------------------------------------------------------
# SnapshotStore unit behaviour
# ----------------------------------------------------------------------
def empty_snapshot(version: int):
    return build_snapshot(version, [], CoverageOracle({}), database_size=0)


class TestSnapshotStore:
    def test_versions_increase_by_one(self):
        store = SnapshotStore()
        assert store.version == 0
        with pytest.raises(RuntimeError):
            store.current()
        store.publish(empty_snapshot(1))
        assert store.version == 1
        with pytest.raises(ValueError):
            store.publish(empty_snapshot(3))
        with pytest.raises(ValueError):
            store.publish(empty_snapshot(1))
        store.publish(empty_snapshot(2))
        assert store.current().version == 2

    def test_release_reports_version_lag(self):
        registry = get_registry()
        stale_before = registry.counter("serve.stale_reads").value
        store = SnapshotStore()
        store.publish(empty_snapshot(1))
        lease = store.pin()
        store.publish(empty_snapshot(2))
        store.publish(empty_snapshot(3))
        assert lease.version == 1
        assert lease.release() == 2
        assert registry.gauge("serve.staleness").value == 2
        assert registry.counter("serve.stale_reads").value == stale_before + 1
        # releasing twice is a no-op
        assert lease.release() == 0

    def test_fresh_release_is_not_stale(self):
        registry = get_registry()
        stale_before = registry.counter("serve.stale_reads").value
        store = SnapshotStore()
        store.publish(empty_snapshot(1))
        with store.pin() as lease:
            assert lease.snapshot.version == 1
        assert registry.gauge("serve.staleness").value == 0
        assert registry.counter("serve.stale_reads").value == stale_before


class TestBuildSnapshot:
    def test_freezes_covers_and_scov(self, frozen_midas):
        midas = frozen_midas
        snapshot = build_snapshot(
            1,
            ((p.pattern_id, p.graph, p.provenance) for p in midas.patterns),
            midas.oracle,
            database_size=len(midas.database),
        )
        assert snapshot.pattern_ids() == [
            p.pattern_id for p in midas.patterns
        ]
        assert snapshot.sample_size == midas.oracle.universe_size
        for entry in snapshot.patterns:
            assert entry.cover == midas.oracle.cover(entry.graph)
            assert entry.scov == midas.oracle.scov(entry.graph)
        assert snapshot.set_scov == midas.oracle.set_scov(
            [entry.graph for entry in snapshot.patterns]
        )
        assert snapshot.pattern(10**9) is None

    def test_to_dict_shapes(self, frozen_midas):
        snapshot = build_snapshot(
            1,
            (
                (p.pattern_id, p.graph, p.provenance)
                for p in frozen_midas.patterns
            ),
            frozen_midas.oracle,
            database_size=len(frozen_midas.database),
        )
        payload = snapshot.to_dict()
        assert payload["version"] == 1
        assert {"id", "provenance", "scov", "cover_size", "graph"} <= set(
            payload["patterns"][0]
        )
        meta = snapshot.to_dict(include_graphs=False)
        assert "graph" not in meta["patterns"][0]


# ----------------------------------------------------------------------
# service-level snapshot isolation
# ----------------------------------------------------------------------
class TestPatternService:
    def test_pinned_reader_never_sees_a_committed_round(self):
        async def scenario():
            service = PatternService(make_midas())
            await service.start()
            try:
                lease = service.store.pin()
                before = signature(lease.snapshot)
                status = await service.submit(family_injection(6, seed=3))
                assert status.state == "queued"
                final = await service.wait_for(status.update_id)
                assert final.state == "applied"
                assert final.version == 2
                assert final.inserted_ids
                # The pinned reader still observes version 1, bit for
                # bit, even though the head moved on.
                assert lease.snapshot.version == 1
                assert signature(lease.snapshot) == before
                assert service.store.version == 2
                assert lease.release() == 1
                with service.store.pin() as fresh:
                    assert fresh.snapshot.version == 2
                    assert fresh.snapshot.database_size == len(
                        service.midas.database
                    )
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_rollback_leaves_published_snapshot_untouched(self):
        async def scenario():
            service = PatternService(make_midas())
            await service.start()
            try:
                before = signature(service.store.current())
                with inject_faults({"midas.detect": Fault(times=None)}):
                    status = await service.submit(family_injection(6, seed=3))
                    final = await service.wait_for(status.update_id)
                assert final.state == "rolled_back"
                assert final.version is None
                assert service.store.version == 1
                assert signature(service.store.current()) == before
                # The service stays healthy: the next round commits.
                status = await service.submit(family_injection(6, seed=4))
                final = await service.wait_for(status.update_id)
                assert final.state == "applied"
                assert final.version == 2
            finally:
                await service.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# HTTP end to end (real TCP, real parsing)
# ----------------------------------------------------------------------
class TestHttpServer:
    def test_endpoints_and_errors(self):
        async def scenario():
            server = PatternServer(PatternService(make_midas()), port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request("GET", "/patterns")
                assert status == 200
                assert body["version"] == 1
                assert body["patterns"]
                first = body["patterns"][0]
                assert {"id", "provenance", "scov", "cover_size", "graph"} \
                    <= set(first)

                status, body = await client.request(
                    "GET", "/patterns?meta_only=1"
                )
                assert status == 200
                assert "graph" not in body["patterns"][0]

                pattern_id = first["id"]
                status, body = await client.request(
                    "GET", f"/cover?pattern={pattern_id}"
                )
                assert status == 200
                assert len(body["cover"]) == first["cover_size"]
                assert body["version"] == 1

                status, body = await client.request("GET", "/scov")
                assert status == 200
                assert 0.0 <= body["set_scov"] <= 1.0

                status, body = await client.request("GET", "/healthz")
                assert status == 200
                assert body["status"] == "ok"

                # the error surface, as documented in docs/SERVING.md
                status, body = await client.request("GET", "/cover")
                assert (status, body["error"]["code"]) == (400, "bad_request")
                status, body = await client.request(
                    "GET", "/cover?pattern=abc"
                )
                assert (status, body["error"]["code"]) == (400, "bad_request")
                status, body = await client.request(
                    "GET", "/cover?pattern=999999"
                )
                assert (status, body["error"]["code"]) == (
                    404,
                    "unknown_pattern",
                )
                status, body = await client.request("GET", "/nope")
                assert (status, body["error"]["code"]) == (404, "not_found")
                status, body = await client.request("POST", "/patterns")
                assert (status, body["error"]["code"]) == (
                    405,
                    "method_not_allowed",
                )
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": [{"bad": 1}]}
                )
                assert (status, body["error"]["code"]) == (400, "bad_update")
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_update_commit_and_metricz(self):
        async def scenario():
            from repro.graph.io import graph_to_dict

            server = PatternServer(PatternService(make_midas()), port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                update = family_injection(5, seed=7)
                payload = {
                    "insertions": [
                        graph_to_dict(g) for g in update.insertions
                    ],
                    "deletions": [],
                }
                status, body = await client.request(
                    "POST", "/updates?wait=1", payload=payload
                )
                assert status == 200
                assert body["status"] == "applied"
                assert body["version"] == 2
                assert len(body["inserted_ids"]) == 5

                status, body = await client.request("GET", "/patterns")
                assert body["version"] == 2

                status, body = await client.request("GET", "/metricz")
                assert status == 200
                counters = body["counters"]
                assert counters["serve.requests"] >= 3
                assert counters["serve.updates_applied"] >= 1
                assert counters["serve.snapshots_published"] >= 2
                assert body["gauges"]["serve.version"] >= 2
                assert "serve.request_ms" in body["histograms"]
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_fire_and_forget_update_is_accepted(self):
        async def scenario():
            server = PatternServer(PatternService(make_midas()), port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": []}
                )
                assert status == 202
                assert body["status"] == "queued"
                assert body["update_id"] >= 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())


class TestSmokeGate:
    def test_run_smoke_passes(self, capsys):
        assert run_smoke(make_midas()) == 0
        assert "serve smoke ok" in capsys.readouterr().out


class TestServeOracle:
    def test_seeded_fuzz_budget_is_clean(self):
        report = run_oracle("serve", seed=0, budget=10)
        assert report.ok, report.summary()


class TestRouteTable:
    def test_endpoints_mirror_routes(self):
        listed = endpoints()
        assert len(listed) == len(ROUTES)
        for method, path in ROUTES:
            assert f"{method} {path}" in listed
            assert re.fullmatch(r"(GET|POST)", method)
            assert path.startswith("/")


# ----------------------------------------------------------------------
# overload protection, the supervised writer and the health states
# ----------------------------------------------------------------------
class TestOverloadProtection:
    def test_full_queue_sheds_with_retry_after(self, frozen_midas):
        from repro.exceptions import ServiceOverloaded

        async def scenario():
            registry = get_registry()
            shed_before = registry.counter("serve.updates_shed").value
            service = PatternService(frozen_midas, queue_limit=2)
            # Writer never started: the queue only fills.
            await service.submit(family_injection(1, seed=1))
            await service.submit(family_injection(1, seed=2))
            with pytest.raises(ServiceOverloaded) as excinfo:
                await service.submit(family_injection(1, seed=3))
            assert 1.0 <= excinfo.value.retry_after <= 30.0
            assert (
                registry.counter("serve.updates_shed").value
                == shed_before + 1
            )
            # 2/2 queued is past the high watermark: health degrades.
            assert service.health_state == "degraded"

        asyncio.run(scenario())

    def test_close_with_full_admission_queue_shuts_down_cleanly(self):
        """The drain sentinel must always fit, even at the admission
        bound (regression: a maxsize-bounded queue made close() raise
        asyncio.QueueFull exactly in the overloaded drain=False case)."""
        import threading

        midas = make_midas()
        gate = threading.Event()
        original = midas.apply_update
        midas.apply_update = lambda update: (
            gate.wait(10),
            original(update),
        )[1]

        async def scenario():
            service = PatternService(midas, queue_limit=1)
            await service.start()
            first = await service.submit(family_injection(1, seed=1))
            # Let the writer dequeue the first update; it now blocks on
            # the gate inside the round while the queue is empty again.
            while service.queue_depth:
                await asyncio.sleep(0.01)
            second = await service.submit(family_injection(1, seed=2))
            assert service.queue_depth == service.queue_limit
            gate.set()
            await service.close(drain=False)
            assert (await service.wait_for(first.update_id)).state == (
                "applied"
            )
            assert (await service.wait_for(second.update_id)).state == (
                "applied"
            )

        try:
            asyncio.run(scenario())
        finally:
            midas.apply_update = original

    def test_peek_next_id_does_not_consume(self, frozen_midas):
        """Checkpoints peek at the id counter from a worker thread;
        peeking must never burn or reorder ids for concurrent submits."""

        async def scenario():
            service = PatternService(frozen_midas, queue_limit=4)
            peeked = service._peek_next_id()
            assert service._peek_next_id() == peeked
            status = await service.submit(family_injection(1, seed=1))
            assert status.update_id == peeked
            assert service._peek_next_id() == peeked + 1

        asyncio.run(scenario())

    def test_draining_and_dead_reject_submits(self, frozen_midas):
        from repro.exceptions import ServiceUnavailable

        async def scenario():
            service = PatternService(frozen_midas)
            service._draining = True
            assert service.health_state == "draining"
            with pytest.raises(ServiceUnavailable) as excinfo:
                await service.submit(family_injection(1, seed=1))
            assert excinfo.value.reason == "draining"
            service._draining = False
            service._declare_dead("test")
            assert service.health_state == "dead"
            with pytest.raises(ServiceUnavailable) as excinfo:
                await service.submit(family_injection(1, seed=1))
            assert excinfo.value.reason == "writer_dead"

        asyncio.run(scenario())

    def test_run_overload_sheds_and_resolves(self):
        from repro.serve.bench import run_overload

        figure = run_overload(
            make_midas(), queue_limit=2, writers=2, bursts=4, seed=3
        )
        outcomes = figure["outcomes"]
        assert outcomes["shed"] > 0
        assert figure["queue_bounded"]
        assert figure["retry_after"]["present_on_all_429s"]
        assert figure["accepted_resolved"] == outcomes["accepted"]


class TestWriterResilience:
    def test_unexpected_round_exception_yields_failed_status(self):
        midas = make_midas()

        async def scenario():
            registry = get_registry()
            failed_before = registry.counter("serve.updates_failed").value
            service = PatternService(midas)
            await service.start()
            original = midas.apply_update
            midas.apply_update = lambda update: (_ for _ in ()).throw(
                RuntimeError("surprise outside the transactional wrapper")
            )
            try:
                status = await service.submit(family_injection(1, seed=4))
                status = await service.wait_for(status.update_id)
                assert status.state == "failed"
                assert "surprise" in status.detail
                assert (
                    registry.counter("serve.updates_failed").value
                    == failed_before + 1
                )
                # The writer survived: a good update still applies.
                midas.apply_update = original
                status = await service.submit(family_injection(1, seed=5))
                status = await service.wait_for(status.update_id)
                assert status.state == "applied"
            finally:
                midas.apply_update = original
                await service.close()

        asyncio.run(scenario())

    def test_breaker_opens_after_consecutive_failures(self):
        from repro.exceptions import ServiceUnavailable

        midas = make_midas()

        async def scenario():
            service = PatternService(
                midas,
                breaker_threshold=2,
                breaker_cooldown_seconds=60.0,
            )
            await service.start()
            original = midas.apply_update
            midas.apply_update = lambda update: (_ for _ in ()).throw(
                RuntimeError("round failure")
            )
            try:
                for seed in (6, 7):
                    status = await service.submit(family_injection(1, seed=seed))
                    status = await service.wait_for(status.update_id)
                    assert status.state == "failed"
                assert service._breaker_state == "open"
                assert service.health_state == "degraded"
                with pytest.raises(ServiceUnavailable) as excinfo:
                    await service.submit(family_injection(1, seed=8))
                assert excinfo.value.reason == "circuit_open"
            finally:
                midas.apply_update = original
                await service.close()

        asyncio.run(scenario())

    def test_breaker_recloses_after_cooldown_probe(self):
        midas = make_midas()

        async def scenario():
            service = PatternService(
                midas,
                breaker_threshold=1,
                breaker_cooldown_seconds=0.05,
            )
            await service.start()
            original = midas.apply_update
            midas.apply_update = lambda update: (_ for _ in ()).throw(
                RuntimeError("round failure")
            )
            status = await service.submit(family_injection(1, seed=9))
            status = await service.wait_for(status.update_id)
            assert status.state == "failed"
            assert service._breaker_state == "open"
            # Repair the maintainer; after the cooldown the next round is
            # the half-open probe and its success recloses the breaker.
            midas.apply_update = original
            await asyncio.sleep(0.06)
            status = await service.submit(family_injection(1, seed=10))
            status = await service.wait_for(status.update_id)
            assert status.state == "applied"
            assert service._breaker_state == "closed"
            assert service.health_state == "ok"
            await service.close()

        asyncio.run(scenario())


class TestBacklogTrim:
    def test_unresolved_statuses_survive_trimming(self, frozen_midas):
        import repro.serve.service as service_module

        async def scenario(monkey_backlog: int):
            service = PatternService(frozen_midas, queue_limit=512)
            original = service_module.STATUS_BACKLOG
            service_module.STATUS_BACKLOG = monkey_backlog
            try:
                first = await service.submit(family_injection(1, seed=1))
                # Resolve a stream of later updates; the queued first
                # update must never be evicted however many resolve.
                for i in range(monkey_backlog * 3):
                    status = await service.submit(family_injection(1, seed=i))
                    service._resolve(
                        status.update_id,
                        service_module.UpdateStatus(
                            status.update_id, "rejected", detail="x"
                        ),
                    )
                    service._queue.get_nowait()
                    service._trim_backlog()
                assert service.status_of(first.update_id) is not None
                assert (
                    service.status_of(first.update_id).state == "queued"
                )
            finally:
                service_module.STATUS_BACKLOG = original

        asyncio.run(scenario(8))

    def test_wait_for_survives_eviction_race(self, frozen_midas):
        """A waiter must get its outcome even if the status was trimmed
        between resolution and the waiter waking."""

        async def scenario():
            service = PatternService(frozen_midas)
            status = await service.submit(family_injection(1, seed=2))
            update_id = status.update_id
            waiter = asyncio.create_task(service.wait_for(update_id))
            await asyncio.sleep(0)  # the waiter parks on the event
            from repro.serve.service import UpdateStatus

            service._resolve(
                update_id, UpdateStatus(update_id, "applied", version=99)
            )
            # Simulate the trim racing in before the waiter wakes.
            del service._statuses[update_id]
            resolved = await waiter
            assert resolved.state == "applied"
            assert resolved.version == 99

        asyncio.run(scenario())


class TestHttpOverloadSurface:
    def test_429_with_retry_after_header(self, frozen_midas):
        async def scenario():
            service = PatternService(frozen_midas, queue_limit=1)

            async def parked_writer() -> None:  # deterministic shedding:
                pass  # the queue can only fill, never drain

            service.start = parked_writer
            server = PatternServer(service, port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": []}
                )
                assert status == 202
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": []}
                )
                assert status == 429
                assert body["error"]["code"] == "overloaded"
                retry_after = client.last_headers.get("retry-after")
                assert retry_after is not None and int(retry_after) >= 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_healthz_503_when_draining(self, frozen_midas):
        async def scenario():
            service = PatternService(frozen_midas)
            server = PatternServer(service, port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request("GET", "/healthz")
                assert status == 200
                assert body["status"] == "ok"
                assert body["breaker"] == "closed"
                service._draining = True
                status, body = await client.request("GET", "/healthz")
                assert status == 503
                assert body["status"] == "draining"
            finally:
                service._draining = False
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_503_when_dead(self, frozen_midas):
        async def scenario():
            service = PatternService(frozen_midas)
            server = PatternServer(service, port=0)
            host, port = await server.start()
            service._declare_dead("writer crashed in test")
            client = await HttpClient.connect(host, port)
            try:
                status, body = await client.request(
                    "POST", "/updates", payload={"insertions": []}
                )
                assert status == 503
                assert body["error"]["code"] == "unavailable"
                status, body = await client.request("GET", "/healthz")
                assert status == 503
                assert body["status"] == "dead"
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())


class TestHttpClientDeadlines:
    def test_request_times_out_instead_of_hanging(self):
        async def scenario():
            async def black_hole(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(
                black_hole, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            client = await HttpClient.connect(
                "127.0.0.1", port, timeout=0.2
            )
            try:
                with pytest.raises(TimeoutError):
                    await client.request("GET", "/patterns")
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_retry_reconnects_after_transport_failure(self, frozen_midas):
        async def scenario():
            service = PatternService(frozen_midas)
            server = PatternServer(service, port=0)
            host, port = await server.start()
            client = await HttpClient.connect(host, port)
            try:
                # Poison the connection, then prove the retry path
                # transparently reconnects.
                await client.close()
                status, body = await client.request_with_retry(
                    "GET", "/healthz"
                )
                assert status == 200
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())
