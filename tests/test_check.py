"""The differential correctness harness: oracles, fuzzing, shrinking, replay.

The load-bearing guarantees:

* **Determinism** — the same ``(seed, case)`` always generates the same
  workload, so every reported failure reproduces from its seed alone.
* **Shrinking** — a failing workload is reduced to a minimal repro that
  still fails with the same mismatch signature; the PR-4 permuted-
  isomorphic-pattern bug shrinks to a handful of graphs.
* **Replay** — a shrunk failure round-trips through a JSON artifact and
  re-evaluates to the same mismatch while the bug is alive (proved here
  with an injected fault), and to a clean pass once fixed (proved with
  the committed regression artifact).
* **Guards** — armed invariant checks raise a typed
  ``InvariantViolation`` that a transactional maintenance round maps to
  a rollback, never a commit.
* **Identity** — one maintenance round produces the same observable
  report under every on/off combination of {workers, cache, covindex,
  check}.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.cache import graph_key
from repro.check.fuzz import (
    ARTIFACT_FORMAT,
    case_rng,
    load_artifact,
    random_workload,
    recorded_mismatch,
    replay,
    run_oracle,
    write_artifact,
)
from repro.check.invariants import (
    check_enabled,
    check_pattern_budget,
    invariant,
    use_check,
)
from repro.check.oracles import ORACLES, get_oracle, oracle_names
from repro.check.shrink import shrink
from repro.check.workload import (
    Workload,
    WorkloadBatch,
    permuted_copy,
    workload_from_dict,
    workload_to_dict,
)
from repro.cli import main
from repro.covindex import CoverageIndex
from repro.datasets import aids_like, mixed_update
from repro.exceptions import InvariantViolation, RolledBack
from repro.execution import ExecutionConfig
from repro.isomorphism import contains
from repro.midas import Midas, MidasConfig
from repro.patterns import PatternBudget
from repro.resilience import Fault, inject_faults

from .conftest import make_graph

ARTIFACT_DIR = Path(__file__).parent / "artifacts"
REGRESSION_ARTIFACT = ARTIFACT_DIR / "permuted_isomorphic_pattern.json"


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _regression_workload() -> Workload:
    """The PR-4 bug shape: permuted twin patterns + a delta insertion."""
    return Workload(
        graphs={0: make_graph("COS", [(0, 1), (1, 2)])},
        patterns=(
            make_graph("CO", [(0, 1)]),
            make_graph("OC", [(0, 1)]),
        ),
        batches=(
            WorkloadBatch(
                added={1: make_graph("NCO", [(0, 1), (1, 2)])}
            ),
        ),
    )


class TestWorkload:
    def test_views_evolve_per_batch(self):
        workload = Workload(
            graphs={0: make_graph("CO", [(0, 1)])},
            batches=(
                WorkloadBatch(added={1: make_graph("NN", [(0, 1)])}),
                WorkloadBatch(removed=(0,)),
            ),
        )
        views = [sorted(view) for view in workload.views()]
        assert views == [[0], [0, 1], [1]]
        assert sorted(workload.final_view()) == [1]

    def test_removal_of_absent_id_is_ignored(self):
        workload = Workload(
            graphs={}, batches=(WorkloadBatch(removed=(42,)),)
        )
        assert workload.final_view() == {}

    def test_json_round_trip_preserves_permuted_assignment(self):
        workload = _regression_workload()
        rebuilt = workload_from_dict(workload_to_dict(workload))
        assert workload_to_dict(rebuilt) == workload_to_dict(workload)
        # The two patterns are isomorphic twins with *different*
        # vertex-ID->label assignments; the round trip must not
        # canonicalise that difference away.
        a, b = rebuilt.patterns
        assert graph_key(a) == graph_key(b)
        assert a.label(0) != b.label(0)

    def test_size_is_the_lexicographic_shrink_objective(self):
        workload = _regression_workload()
        graphs, ops, patterns, edges, vertices, labels = workload.size()
        assert (graphs, ops, patterns) == (2, 1, 2)
        assert edges == 2 + 2 + 1 + 1
        assert vertices == 3 + 3 + 2 + 2
        assert labels == 4  # C, O, S, N

    def test_permuted_copy_is_isomorphic_not_identical(self):
        graph = make_graph("CNOS", [(0, 1), (1, 2), (2, 3)])
        twin = permuted_copy(graph, seed=1)
        assert graph_key(twin) == graph_key(graph)
        assert sorted(twin.vertices()) == sorted(graph.vertices())
        assert any(
            twin.label(v) != graph.label(v) for v in graph.vertices()
        )


class TestFuzzerDeterminism:
    def test_same_seed_same_workload(self):
        for case in range(3):
            first = random_workload(case_rng(11, case))
            second = random_workload(case_rng(11, case))
            assert workload_to_dict(first) == workload_to_dict(second)

    def test_different_cases_differ(self):
        first = random_workload(case_rng(11, 0))
        second = random_workload(case_rng(11, 1))
        assert workload_to_dict(first) != workload_to_dict(second)

    def test_insert_only_workloads_never_remove(self):
        workload = random_workload(
            case_rng(5, 0), insert_only=True, num_batches=3
        )
        assert all(not batch.removed for batch in workload.batches)


class TestOracleRegistry:
    def test_expected_oracles_registered(self):
        assert set(oracle_names()) == {
            "cache",
            "canonical",
            "covindex",
            "fragments",
            "ged",
            "index",
            "parallel",
            "scov",
            "serve",
            "store",
            "vf2",
        }

    def test_unknown_oracle_is_a_clear_error(self):
        with pytest.raises(ValueError, match="covindex"):
            get_oracle("nonesuch")

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_oracle_passes_smoke_budget(self, name):
        report = run_oracle(name, seed=0, budget=2)
        assert report.ok, report.summary()

    @pytest.mark.slow
    def test_acceptance_command_passes(self):
        """The PR acceptance criterion: covindex, seed 7, budget 50."""
        report = run_oracle("covindex", seed=7, budget=50)
        assert report.ok, report.summary()


# ----------------------------------------------------------------------
# the committed PR-4 regression artifact
# ----------------------------------------------------------------------
class TestRegressionArtifact:
    def test_artifact_records_the_historical_mismatch(self):
        artifact = load_artifact(REGRESSION_ARTIFACT)
        assert artifact["format"] == ARTIFACT_FORMAT
        mismatch = recorded_mismatch(artifact)
        assert mismatch.signature() == ("covindex", "cover_mismatch")
        assert mismatch.detail["full_scan"] == [0, 1]

    def test_artifact_replays_clean_on_fixed_code(self):
        """The bug the artifact captured is fixed: replay finds nothing."""
        assert replay(load_artifact(REGRESSION_ARTIFACT)) is None

    def test_artifact_workload_is_the_regression_shape(self):
        artifact = load_artifact(REGRESSION_ARTIFACT)
        workload = workload_from_dict(artifact["workload"])
        a, b = workload.patterns
        assert graph_key(a) == graph_key(b)
        assert len(workload.graphs) == 1
        assert len(workload.batches) == 1


def _prefix_buggy_cover_disagrees(workload: Workload) -> bool:
    """Re-enact the pre-fix engine on *workload*: true iff the bug fires.

    The fixed engine verifies with its *stored* pattern (the first
    registrant of a canonical key) and seeds VF2 with domains keyed by
    that object's vertex IDs.  The pre-fix code seeded domains from the
    stored twin but ran VF2 with the *caller's* isomorphic copy — two
    different vertex-ID->label assignments, so the domains can exclude
    every valid host vertex and delta verification reports a false
    negative.
    """
    stored: dict = {}
    for pattern in workload.patterns:
        stored.setdefault(graph_key(pattern), pattern)
    view = dict(workload.graphs)
    # Initial registration verifies unseeded (that path was correct).
    covers = [
        {gid for gid, host in view.items() if contains(host, p)}
        for p in workload.patterns
    ]
    for batch in workload.batches:
        for gid in batch.removed:
            view.pop(gid, None)
            for cover in covers:
                cover.discard(gid)
        for gid, host in batch.added.items():
            view[gid] = host
            index = CoverageIndex.build({gid: host})
            for i, pattern in enumerate(workload.patterns):
                twin = stored[graph_key(pattern)]
                domains = index.vertex_domains(twin, gid, host)
                if contains(host, pattern, domains=domains):  # the bug
                    covers[i].add(gid)
    reference = [
        {gid for gid, host in view.items() if contains(host, p)}
        for p in workload.patterns
    ]
    return covers != reference


class TestShrinker:
    def test_reduces_padded_regression_to_minimal_repro(self):
        """Satellite acceptance: the shrinker strips every padding graph
        and leaves <= 3 graphs that still reproduce the PR-4 bug."""
        base = _regression_workload()
        padded = Workload(
            graphs={
                **base.graphs,
                10: make_graph("CCCC", [(0, 1), (1, 2), (2, 3)]),
                11: make_graph("NOS", [(0, 1), (1, 2)]),
            },
            patterns=(*base.patterns, make_graph("SS", [(0, 1)])),
            batches=(
                *base.batches,
                WorkloadBatch(
                    added={12: make_graph("NN", [(0, 1)])},
                    removed=(10,),
                ),
            ),
        )
        assert _prefix_buggy_cover_disagrees(padded)
        shrunk = shrink(padded, _prefix_buggy_cover_disagrees)
        assert _prefix_buggy_cover_disagrees(shrunk)
        assert shrunk.num_graphs() <= 3
        assert shrunk.size() < padded.size()

    def test_shrink_returns_input_when_predicate_needs_everything(self):
        workload = Workload(graphs={0: make_graph("C", [])})
        same = shrink(workload, lambda w: w.num_graphs() == 1)
        assert same.num_graphs() == 1


# ----------------------------------------------------------------------
# fault injection -> mismatch -> shrink -> artifact -> replay (acceptance)
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestFaultToReplayPipeline:
    def test_injected_fault_is_caught_shrunk_and_replayed(self, tmp_path):
        """A deliberate fault at an existing inject_faults site is caught
        by the oracle, shrunk to a minimal workload, serialised, and the
        artifact replays to the *same* mismatch while the fault plan is
        active — and to a clean pass without it."""
        plan = {"vf2.search": Fault(kind="error", times=None)}
        with inject_faults(plan):
            report = run_oracle("covindex", seed=7, budget=5)
        assert not report.ok
        assert report.mismatch.code == "exception"
        assert report.mismatch.detail["type"] == "FaultInjected"
        # Shrinking happened and never grew the workload.
        assert report.workload.size() <= report.original.size()

        path = write_artifact(tmp_path / "fault.json", report)
        artifact = load_artifact(path)
        assert artifact["oracle"] == "covindex"

        # Bug still "alive" (fault active): replay reproduces the exact
        # recorded mismatch from the JSON alone.
        with inject_faults(
            {"vf2.search": Fault(kind="error", times=None)}
        ):
            assert replay(artifact) == recorded_mismatch(artifact)

        # Bug "fixed" (no fault): the same artifact replays clean.
        assert replay(artifact) is None


# ----------------------------------------------------------------------
# invariant guards
# ----------------------------------------------------------------------
class TestInvariantGuards:
    def test_disabled_by_default(self):
        assert not check_enabled()

    def test_use_check_scopes_the_flag(self):
        with use_check(True):
            assert check_enabled()
            with use_check(False):
                assert not check_enabled()
            assert check_enabled()
        assert not check_enabled()

    def test_execution_config_arms_the_guards(self):
        with ExecutionConfig(check=True).apply():
            assert check_enabled()
        assert not check_enabled()

    def test_invariant_raises_typed_violation(self):
        invariant(True, "test.ok")
        with pytest.raises(InvariantViolation, match="test.bad"):
            invariant(False, "test.bad", "broke on purpose")

    def test_pattern_budget_guard(self):
        budget = PatternBudget(eta_min=3, eta_max=4, gamma=2)
        ok = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        check_pattern_budget([ok], budget)
        too_small = make_graph("CO", [(0, 1)])
        with pytest.raises(InvariantViolation, match="pattern_size_bound"):
            check_pattern_budget([too_small], budget)
        with pytest.raises(InvariantViolation, match="pattern_count_bound"):
            check_pattern_budget([ok, ok, ok], budget)

    def test_guard_counters_are_emitted(self):
        from repro.obs import get_registry

        registry = get_registry()
        assertions = registry.counter("check.assertions").value
        violations = registry.counter("check.violations").value
        invariant(True, "test.counted")
        with pytest.raises(InvariantViolation):
            invariant(False, "test.counted")
        assert registry.counter("check.assertions").value == assertions + 2
        assert registry.counter("check.violations").value == violations + 1


@pytest.mark.faults
class TestViolationRollsBackRound:
    def test_invariant_violation_maps_to_rolled_back(self):
        """An InvariantViolation mid-round is a generic failure, not a
        budget signal: the transactional wrapper restores the snapshot
        and re-raises RolledBack with the violation chained."""
        config = MidasConfig(
            budget=PatternBudget(3, 6, 8),
            num_clusters=3,
            sample_cap=50,
            seed=5,
        )
        midas = Midas.bootstrap(aids_like(20, seed=4), config)
        ids_before = sorted(midas.database.ids())
        patterns_before = sorted(
            graph_key(g) for g in midas.pattern_graphs()
        )
        update = mixed_update(midas.database, 3, 3, seed=8)
        with inject_faults({"midas.fct": Fault(exc=InvariantViolation)}):
            with pytest.raises(RolledBack) as excinfo:
                midas.apply_update(update)
        assert isinstance(excinfo.value.__cause__, InvariantViolation)
        assert sorted(midas.database.ids()) == ids_before
        assert (
            sorted(graph_key(g) for g in midas.pattern_graphs())
            == patterns_before
        )


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCheckCli:
    def test_list_prints_registry(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out

    def test_fuzz_one_oracle(self, capsys):
        assert main(
            ["check", "--oracle", "canonical", "--budget", "2"]
        ) == 0
        assert "passed" in capsys.readouterr().out

    def test_replay_clean_artifact_exits_zero(self, capsys):
        code = main(["check", "--replay", str(REGRESSION_ARTIFACT)])
        assert code == 0
        assert "clean" in capsys.readouterr().out.lower()

    def test_oracle_or_all_required(self, capsys):
        assert main(["check"]) == 2


# ----------------------------------------------------------------------
# execution-knob identity: one round, all 2^5 combinations
# ----------------------------------------------------------------------
def _knob_fingerprint(execution: ExecutionConfig):
    """One bootstrap + one mixed round under *execution*; every
    observable output of the round, hashable for comparison."""
    config = MidasConfig(
        budget=PatternBudget(3, 6, 8),
        num_clusters=3,
        sample_cap=50,
        seed=5,
        execution=execution,
    )
    midas = Midas.bootstrap(aids_like(20, seed=4), config)
    update = mixed_update(midas.database, 4, 4, seed=11)
    report = midas.apply_update(update)
    return (
        report.is_major,
        report.num_swaps,
        sorted(report.inserted_ids),
        sorted(report.deleted_ids),
        sorted(midas.database.ids()),
        sorted(graph_key(g) for g in midas.pattern_graphs()),
    )


KNOB_COMBOS = list(
    itertools.product(
        (1, 2), (False, True), (False, True), (False, True), (False, True)
    )
)

_baseline_fingerprint: list = []


@pytest.mark.slow
@pytest.mark.parametrize(
    "workers,cache,covindex,fragments,check",
    KNOB_COMBOS,
    ids=[
        f"workers{w}-cache{int(ca)}-covindex{int(co)}"
        f"-fragments{int(fr)}-check{int(ch)}"
        for w, ca, co, fr, ch in KNOB_COMBOS
    ],
)
def test_execution_knobs_do_not_change_results(
    workers, cache, covindex, fragments, check
):
    """Every on/off combination of the execution accelerators (and the
    invariant guards) produces an identical maintenance round — the
    knobs trade speed, never answers.  ``fragments`` without
    ``covindex`` is deliberately included: the flag must be inert when
    no engine exists to host the network."""
    if not _baseline_fingerprint:
        _baseline_fingerprint.append(_knob_fingerprint(ExecutionConfig()))
    fingerprint = _knob_fingerprint(
        ExecutionConfig(
            workers=workers,
            cache=cache,
            covindex=covindex,
            fragments=fragments,
            check=check,
        )
    )
    assert fingerprint == _baseline_fingerprint[0]
