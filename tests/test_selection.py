"""Focused tests for the greedy selector internals."""

import pytest

from repro.catapult import (
    CandidateGenerator,
    GreedySelector,
    decay_weights,
)
from repro.catapult.candidate import CandidatePattern
from repro.csg import build_csg
from repro.patterns import CoverageOracle, PatternBudget, PatternSet

from .conftest import make_graph


@pytest.fixture
def selector(paper_db):
    graphs = dict(paper_db.items())
    summaries = {
        0: build_csg(0, [0, 1, 3, 5], graphs),
        1: build_csg(1, [2, 4, 6, 7, 8], graphs),
    }
    budget = PatternBudget(3, 4, 4)
    generator = CandidateGenerator(graphs, budget, seed=0)
    oracle = CoverageOracle(graphs)
    return GreedySelector(
        generator,
        summaries,
        {0: 4 / 9, 1: 5 / 9},
        oracle,
        budget,
    )


def candidate_of(graph, cluster_id=0):
    return CandidatePattern(
        graph=graph,
        cluster_id=cluster_id,
        traversal_score=10,
        csg_edges=frozenset(),
    )


class TestAdmissibility:
    def test_size_out_of_budget(self, selector):
        too_small = candidate_of(make_graph("CCC", [(0, 1), (1, 2)]))
        too_small.graph.remove_vertex(2)  # 1 edge now
        assert not selector._admissible(too_small, PatternSet(), {})

    def test_per_size_cap(self, selector):
        candidate = candidate_of(
            make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
        )
        cap = selector.budget.per_size_cap
        assert selector._admissible(candidate, PatternSet(), {})
        assert not selector._admissible(
            candidate, PatternSet(), {3: cap}
        )

    def test_isomorphic_rejected(self, selector):
        selected = PatternSet()
        graph = make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
        selected.add(graph)
        twin = candidate_of(make_graph("OCCC", [(1, 0), (2, 1), (3, 2)]))
        assert not selector._admissible(twin, selected, {})


class TestSelectionLoop:
    def test_select_returns_within_gamma(self, selector):
        patterns = selector.select()
        assert 0 < len(patterns) <= selector.budget.gamma
        for pattern in patterns:
            assert selector.budget.admits_size(pattern.num_edges)

    def test_select_deterministic(self, paper_db):
        def build():
            graphs = dict(paper_db.items())
            summaries = {0: build_csg(0, list(graphs), graphs)}
            budget = PatternBudget(3, 4, 3)
            generator = CandidateGenerator(graphs, budget, seed=5)
            return GreedySelector(
                generator, summaries, {0: 1.0}, CoverageOracle(graphs), budget
            ).select()

        first = build()
        second = build()
        assert [p.key for p in first] == [p.key for p in second]

    def test_mwu_decay_discourages_reuse(self, selector):
        weights = dict(selector._weights[0])
        some_edges = set(list(weights)[:2])
        before = {e: weights[e] for e in some_edges}
        decay_weights(weights, some_edges, 0.5)
        for edge in some_edges:
            assert weights[edge] == pytest.approx(before[edge] * 0.5)

    def test_max_rounds_bounds_work(self, selector):
        patterns = selector.select(max_rounds=1)
        assert len(patterns) <= 1
