"""Smoke tests for the example scripts.

The fast example runs end to end; the expensive ones are compiled and
import-checked so a broken API surfaces here rather than for a user.
"""

import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=lambda p: p.name
)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_interface_session_runs(capsys):
    import runpy

    runpy.run_path(
        str(EXAMPLES_DIR / "interface_session.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "pattern-at-a-time" in out
    assert "success=True" in out
