"""Unit tests for repro.ged — bounds must bracket the exact distance."""

import random

import pytest

from repro.ged import (
    ged,
    ged_bipartite_upper_bound,
    ged_exact,
    ged_label_lower_bound,
    ged_tight_lower_bound,
    relaxed_edge_count,
    vertex_term,
)
from repro.graph import LabeledGraph

from .conftest import make_graph


def random_graph(n, p, labels, rng):
    g = LabeledGraph()
    for v in range(n):
        g.add_vertex(v, rng.choice(labels))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestLowerBounds:
    def test_identical_graphs(self, triangle):
        assert ged_label_lower_bound(triangle, triangle) == 0
        assert ged_tight_lower_bound(triangle, triangle) == 0

    def test_vertex_term_label_mismatch(self):
        g1 = make_graph("CC", [(0, 1)])
        g2 = make_graph("CO", [(0, 1)])
        assert vertex_term(g1, g2) == 1

    def test_size_difference(self, triangle, path3):
        assert ged_label_lower_bound(triangle, path3) == 1

    def test_relaxed_edges(self):
        g1 = make_graph("CCO", [(0, 1), (1, 2)])   # C-C, C-O
        g2 = make_graph("CNN", [(0, 1), (1, 2)])   # C-N, N-N
        assert relaxed_edge_count(g1, g2) == 2

    def test_tight_bound_dominates(self):
        rng = random.Random(5)
        for _ in range(30):
            g1 = random_graph(rng.randint(2, 6), 0.5, "CNO", rng)
            g2 = random_graph(rng.randint(2, 6), 0.5, "CNO", rng)
            assert ged_tight_lower_bound(g1, g2) >= ged_label_lower_bound(
                g1, g2
            )

    def test_symmetry(self):
        rng = random.Random(9)
        for _ in range(20):
            g1 = random_graph(rng.randint(2, 5), 0.5, "CN", rng)
            g2 = random_graph(rng.randint(2, 5), 0.5, "CN", rng)
            assert ged_tight_lower_bound(g1, g2) == ged_tight_lower_bound(
                g2, g1
            )

    def test_symmetry_on_equal_sized_graphs(self):
        """Regression: with |E_A| = |E_B| the 'smaller graph' tie-break
        used to make GED'_l asymmetric, which let the swap strategy's
        sw3 check disagree with post-hoc diversity audits."""
        rng = random.Random(31)
        checked = 0
        for _ in range(300):
            n = rng.randint(2, 5)
            g1 = random_graph(n, 0.5, "CNO", rng)
            g2 = random_graph(n, 0.5, "CNO", rng)
            if g1.num_edges != g2.num_edges:
                continue
            checked += 1
            assert ged_tight_lower_bound(g1, g2) == (
                ged_tight_lower_bound(g2, g1)
            )
        assert checked > 20  # the tie-break path was actually exercised


class TestExact:
    def test_identical(self, triangle):
        assert ged_exact(triangle, triangle.copy()) == 0

    def test_single_edge_removal(self, triangle, path3):
        assert ged_exact(triangle, path3) == 1

    def test_label_substitution(self):
        g1 = make_graph("CO", [(0, 1)])
        g2 = make_graph("CN", [(0, 1)])
        assert ged_exact(g1, g2) == 1

    def test_empty_vs_graph(self, triangle):
        assert ged_exact(LabeledGraph(), triangle) == 6  # 3 V + 3 E
        assert ged_exact(triangle, LabeledGraph()) == 6

    def test_vertex_addition(self):
        g1 = make_graph("CC", [(0, 1)])
        g2 = make_graph("CCC", [(0, 1), (1, 2)])
        assert ged_exact(g1, g2) == 2  # one vertex + one edge

    def test_limit_caps_search(self, triangle):
        big = make_graph("NNNNN", [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert ged_exact(triangle, big, limit=2) == 2

    def test_symmetry_small(self):
        rng = random.Random(2)
        for _ in range(10):
            g1 = random_graph(rng.randint(1, 4), 0.6, "CN", rng)
            g2 = random_graph(rng.randint(1, 4), 0.6, "CN", rng)
            assert ged_exact(g1, g2) == ged_exact(g2, g1)


class TestBracketing:
    @pytest.mark.parametrize("seed", range(15))
    def test_bounds_sandwich_exact(self, seed):
        rng = random.Random(seed)
        g1 = random_graph(rng.randint(2, 5), 0.5, "CNO", rng)
        g2 = random_graph(rng.randint(2, 5), 0.5, "CNO", rng)
        exact = ged_exact(g1, g2)
        assert ged_label_lower_bound(g1, g2) <= exact
        assert ged_tight_lower_bound(g1, g2) <= exact
        assert ged_bipartite_upper_bound(g1, g2) >= exact


class TestBipartite:
    def test_identical(self, triangle):
        assert ged_bipartite_upper_bound(triangle, triangle.copy()) == 0

    def test_empty_cases(self, triangle):
        assert ged_bipartite_upper_bound(LabeledGraph(), LabeledGraph()) == 0
        assert ged_bipartite_upper_bound(LabeledGraph(), triangle) == 6
        assert ged_bipartite_upper_bound(triangle, LabeledGraph()) == 6


class TestDispatcher:
    def test_all_methods(self, triangle, path3):
        for method in ("lower", "tight_lower", "bipartite", "exact"):
            assert ged(triangle, path3, method=method) >= 0

    def test_unknown_method(self, triangle, path3):
        with pytest.raises(ValueError):
            ged(triangle, path3, method="nope")

    def test_default_is_tight_lower(self, triangle, path3):
        assert ged(triangle, path3) == ged_tight_lower_bound(triangle, path3)
