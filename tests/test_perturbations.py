"""Tests for perturbation batches — including the detector blind spot."""

import random

import pytest

from repro.datasets import aids_like
from repro.datasets.perturbations import (
    densified_batch,
    densify_graph,
    label_swap_mapping,
    relabel_graph,
    relabeled_batch,
    rewire_graph,
    rewired_batch,
)
from repro.midas import ModificationDetector

from .conftest import make_graph


class TestOperators:
    def test_relabel_preserves_structure(self, triangle):
        relabeled = relabel_graph(triangle, {"C": "N"})
        assert relabeled.num_vertices == 3
        assert relabeled.num_edges == 3
        assert relabeled.vertex_label_set() == {"N"}

    def test_relabel_partial_mapping(self):
        g = make_graph("CON", [(0, 1), (1, 2)])
        relabeled = relabel_graph(g, {"O": "S"})
        assert sorted(relabeled.labels().values()) == ["C", "N", "S"]

    def test_rewire_keeps_counts(self):
        g = make_graph("CCCCO", [(0, 1), (1, 2), (2, 3), (3, 4)])
        rewired = rewire_graph(g, 3, random.Random(1))
        assert rewired.num_vertices == g.num_vertices
        assert rewired.num_edges == g.num_edges
        assert rewired.vertex_label_multiset() == g.vertex_label_multiset()

    def test_densify_adds_chords(self):
        g = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        dense = densify_graph(g, 2, random.Random(2))
        assert dense.num_edges == 5

    def test_label_swap_mapping_total(self):
        mapping = label_swap_mapping(["C", "O", "N"])
        assert set(mapping) == {"C", "O", "N"}
        for source, target in mapping.items():
            assert source != target
        assert label_swap_mapping(["C"]) == {}


class TestBatches:
    @pytest.fixture
    def db(self):
        return aids_like(30, seed=8)

    def test_relabeled_batch_shape(self, db):
        batch = relabeled_batch(db, 10, {"C": "X"}, seed=1)
        assert batch.num_insertions == 10
        assert batch.num_deletions == 10
        assert set(batch.deletions) <= set(db.ids())

    def test_rewired_batch_applies(self, db):
        batch = rewired_batch(db, 5, seed=2)
        updated = db.updated(batch)
        assert len(updated) == len(db)

    def test_densified_batch_applies(self, db):
        batch = densified_batch(db, 5, seed=3)
        updated = db.updated(batch)
        assert updated.total_edges() >= db.total_edges()


class TestDetectorBlindSpot:
    """The GFD detector is label-blind (graphlets are unlabelled):
    a pure relabeling is invisible to it even though every displayed
    pattern may have gone stale — a faithful limitation of the paper's
    Section 3.4 design, pinned down here."""

    def test_relabeling_is_invisible(self):
        db = aids_like(40, seed=9)
        detector = ModificationDetector(
            dict(db.items()), epsilon=1e-6
        )
        mapping = label_swap_mapping(sorted(db.vertex_label_alphabet()))
        batch = relabeled_batch(db, len(db), mapping, seed=4)
        updated = db.updated(batch)
        added = {
            gid: updated[gid]
            for gid in updated
            if gid not in set(db.ids()) - set(batch.deletions)
        }
        result = detector.classify(
            added, set(batch.deletions), commit=False
        )
        # Structure unchanged => GFD distance exactly zero.
        assert result.distance == pytest.approx(0.0, abs=1e-12)

    def test_rewiring_is_visible(self):
        db = aids_like(40, seed=9)
        detector = ModificationDetector(dict(db.items()), epsilon=1e-6)
        batch = densified_batch(db, 30, chords_per_graph=4, seed=5)
        updated = db.updated(batch)
        surviving = set(db.ids()) - set(batch.deletions)
        added = {
            gid: updated[gid] for gid in updated if gid not in surviving
        }
        result = detector.classify(
            added, set(batch.deletions), commit=False
        )
        assert result.distance > 0.0
