"""Bit-for-bit determinism of the seeded pipelines.

Every stochastic component takes an explicit seed, so identical inputs
must give identical outputs — the property that makes EXPERIMENTS.md
reproducible.
"""

import pytest

from repro import Midas, MidasConfig, PatternBudget
from repro.datasets import aids_like, family_injection


@pytest.fixture(scope="module")
def config():
    return MidasConfig(
        budget=PatternBudget(3, 6, 6),
        sup_min=0.5,
        num_clusters=3,
        sample_cap=50,
        seed=77,
        epsilon=0.002,
    )


def panel_fingerprint(midas):
    return sorted(repr(p.key) for p in midas.patterns)


class TestDeterminism:
    def test_bootstrap_deterministic(self, config):
        db = aids_like(50, seed=77)
        first = Midas.bootstrap(db, config)
        second = Midas.bootstrap(db, config)
        assert panel_fingerprint(first) == panel_fingerprint(second)
        assert first.sampler.sample_ids == second.sampler.sample_ids
        assert first.clusters.clusters() == second.clusters.clusters()

    def test_maintenance_deterministic(self, config):
        db = aids_like(50, seed=77)
        update = family_injection(20, seed=78)
        first = Midas.bootstrap(db, config)
        second = Midas.bootstrap(db, config)
        report_a = first.apply_update(update)
        report_b = second.apply_update(update)
        assert report_a.is_major == report_b.is_major
        assert report_a.classification.distance == pytest.approx(
            report_b.classification.distance
        )
        assert report_a.num_swaps == report_b.num_swaps
        assert panel_fingerprint(first) == panel_fingerprint(second)

    def test_dataset_generation_deterministic(self):
        a = aids_like(25, seed=5)
        b = aids_like(25, seed=5)
        for gid in a.ids():
            assert a[gid].labels() == b[gid].labels()
            assert sorted(a[gid].edges()) == sorted(b[gid].edges())

    def test_different_seeds_differ(self):
        a = aids_like(25, seed=5)
        b = aids_like(25, seed=6)
        assert any(
            a[g].labels() != b[g].labels() for g in a.ids()
        )
