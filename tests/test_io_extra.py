"""Extra serialisation coverage: molecule round-trips and cross-format
consistency."""

import pytest

from repro.datasets import aids_like
from repro.graph import GraphDatabase, are_isomorphic
from repro.graph.io import (
    database_from_json,
    database_to_json,
    dumps_transactions,
    loads_transactions,
)


class TestMoleculeRoundTrips:
    def test_transactions_preserve_isomorphism_class(self):
        db = aids_like(10, seed=42)
        restored = loads_transactions(
            dumps_transactions(list(db.graphs()))
        )
        assert len(restored) == len(db)
        for original, parsed in zip(db.graphs(), restored):
            assert are_isomorphic(original, parsed)

    def test_json_preserves_isomorphism_class(self):
        db = aids_like(10, seed=43)
        restored = database_from_json(database_to_json(db))
        for graph_id in db.ids():
            assert are_isomorphic(db[graph_id], restored[graph_id])

    def test_cross_format_consistency(self):
        """Transactions and JSON agree on the structures they carry."""
        db = aids_like(6, seed=44)
        via_transactions = loads_transactions(
            dumps_transactions(list(db.graphs()))
        )
        via_json = database_from_json(database_to_json(db))
        for t_graph, (_, j_graph) in zip(
            via_transactions, via_json.items()
        ):
            assert are_isomorphic(t_graph, j_graph)

    def test_empty_database_round_trip(self):
        restored = database_from_json(database_to_json(GraphDatabase()))
        assert len(restored) == 0

    def test_json_stable_under_double_round_trip(self):
        db = aids_like(5, seed=45)
        once = database_to_json(db)
        twice = database_to_json(database_from_json(once))
        assert once == twice
