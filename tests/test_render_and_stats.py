"""Unit tests for repro.gui.render and repro.graph.statistics."""

import pytest

from repro.graph import (
    DatabaseStatistics,
    GraphDatabase,
    LabeledGraph,
    database_statistics,
    describe,
    label_entropy,
)
from repro.gui import (
    ascii_adjacency,
    linear_notation,
    render_panel,
    render_pattern,
)
from repro.patterns import PatternSet

from .conftest import make_graph


class TestLinearNotation:
    def test_single_vertex(self):
        assert linear_notation(make_graph("C", [])) == "C"

    def test_empty(self):
        assert linear_notation(LabeledGraph()) == "(empty)"

    def test_chain(self):
        g = make_graph("CON", [(0, 1), (1, 2)])
        text = linear_notation(g)
        assert text.count("-") == 2
        for label in "CON":
            assert label in text

    def test_ring_closure_digits(self):
        ring = make_graph("CCCCCC", [(i, (i + 1) % 6) for i in range(6)])
        text = linear_notation(ring)
        assert text.count("1") == 2  # ring opened and closed
        assert text.count("C") == 6

    def test_branching_parentheses(self):
        star = make_graph("COSN", [(0, 1), (0, 2), (0, 3)])
        text = linear_notation(star)
        assert "(" in text and ")" in text

    def test_every_vertex_rendered(self):
        g = make_graph("CCONSH", [(0, 1), (1, 2), (1, 3), (3, 4), (0, 5)])
        text = linear_notation(g)
        for label, count in g.vertex_label_multiset().items():
            assert text.count(label) >= count


class TestAsciiAdjacency:
    def test_lists_all_vertices(self, triangle):
        text = ascii_adjacency(triangle)
        assert text.count("C") >= 3
        assert "|V|=3 |E|=3" in text

    def test_empty(self):
        assert "empty" in ascii_adjacency(LabeledGraph())

    def test_isolated_vertex_marker(self):
        g = make_graph("C", [])
        assert "·" in ascii_adjacency(g)


class TestRenderDispatch:
    def test_small_connected_goes_linear(self, triangle):
        assert "—" not in render_pattern(triangle)

    def test_disconnected_goes_adjacency(self):
        g = LabeledGraph.from_edges(
            {0: "C", 1: "C", 2: "O", 3: "O"}, [(0, 1), (2, 3)]
        )
        assert "—" in render_pattern(g)

    def test_large_goes_adjacency(self):
        chain = make_graph("C" * 20, [(i, i + 1) for i in range(19)])
        assert "—" in render_pattern(chain)

    def test_render_panel(self):
        patterns = PatternSet()
        patterns.add(make_graph("CCC", [(0, 1), (1, 2)]), "catapult")
        patterns.add(make_graph("CON", [(0, 1), (0, 2)]), "midas")
        text = render_panel(patterns)
        assert "γ = 2" in text
        assert "[catapult]" in text and "[midas]" in text

    def test_render_empty_panel(self):
        assert "empty" in render_panel(PatternSet())


class TestStatistics:
    def test_empty_database(self):
        stats = database_statistics(GraphDatabase())
        assert stats.num_graphs == 0
        assert stats.dominant_label() is None
        assert describe(GraphDatabase()) == "empty database"

    def test_paper_db_statistics(self, paper_db):
        stats = database_statistics(paper_db)
        assert stats.num_graphs == 9
        assert stats.dominant_label() == "O"  # 9 C but 10 O in Fig-3-like DB
        assert stats.tree_fraction == 1.0  # all stars/chains
        assert stats.avg_density > 0
        assert stats.max_vertices == 4

    def test_entropy(self):
        from collections import Counter

        assert label_entropy(Counter()) == 0.0
        assert label_entropy(Counter({"C": 8})) == 0.0
        assert label_entropy(Counter({"C": 4, "O": 4})) == pytest.approx(1.0)

    def test_describe_mentions_dominant(self, paper_db):
        text = describe(paper_db)
        assert "'O'" in text
        assert "9 graphs" in text

    def test_dataclass_shape(self, paper_db):
        stats = database_statistics(paper_db)
        assert isinstance(stats, DatabaseStatistics)
        assert stats.avg_degree == pytest.approx(
            2 * stats.avg_edges / stats.avg_vertices
        )
