"""Unit tests for repro.clustering.kmeans."""

import random

import numpy as np
import pytest

from repro.clustering import inertia, kmeans, kmeans_plus_plus_seeds


@pytest.fixture
def blobs():
    rng = np.random.default_rng(3)
    a = rng.normal(loc=0.0, scale=0.3, size=(20, 2))
    b = rng.normal(loc=5.0, scale=0.3, size=(20, 2))
    c = rng.normal(loc=(0.0, 5.0), scale=0.3, size=(20, 2))
    return np.vstack([a, b, c])


class TestSeeding:
    def test_correct_seed_count(self, blobs):
        seeds = kmeans_plus_plus_seeds(blobs, 3, random.Random(0))
        assert seeds.shape == (3, 2)

    def test_invalid_k(self, blobs):
        with pytest.raises(ValueError):
            kmeans_plus_plus_seeds(blobs, 0, random.Random(0))
        with pytest.raises(ValueError):
            kmeans_plus_plus_seeds(blobs, len(blobs) + 1, random.Random(0))

    def test_duplicate_points_handled(self):
        points = np.ones((10, 3))
        seeds = kmeans_plus_plus_seeds(points, 3, random.Random(1))
        assert seeds.shape == (3, 3)

    def test_seeds_spread_across_blobs(self, blobs):
        seeds = kmeans_plus_plus_seeds(blobs, 3, random.Random(5))
        # Each seed should be near a different blob centre.
        centers = np.array([[0, 0], [5, 0], [0, 5]])
        nearest = {
            int(np.argmin(np.linalg.norm(centers - s, axis=1)))
            for s in seeds
        }
        assert len(nearest) == 3


class TestKMeans:
    def test_separated_blobs_recovered(self, blobs):
        assignments, centroids = kmeans(blobs, 3, seed=0)
        assert len(set(assignments[:20])) == 1
        assert len(set(assignments[20:40])) == 1
        assert len(set(assignments[40:])) == 1
        assert len({assignments[0], assignments[20], assignments[40]}) == 3
        assert centroids.shape == (3, 2)

    def test_deterministic(self, blobs):
        a1, c1 = kmeans(blobs, 3, seed=42)
        a2, c2 = kmeans(blobs, 3, seed=42)
        assert np.array_equal(a1, a2)
        assert np.array_equal(c1, c2)

    def test_k_geq_n_degenerates(self):
        points = np.arange(6, dtype=float).reshape(3, 2)
        assignments, centroids = kmeans(points, 5)
        assert list(assignments) == [0, 1, 2]
        assert np.array_equal(centroids, points)

    def test_no_empty_clusters(self, blobs):
        assignments, _ = kmeans(blobs, 6, seed=1)
        assert len(set(int(a) for a in assignments)) == 6

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.arange(10, dtype=float), 2)

    def test_inertia_decreases_with_k(self, blobs):
        results = []
        for k in (1, 3):
            assignments, centroids = kmeans(blobs, k, seed=0)
            results.append(inertia(blobs, assignments, centroids))
        assert results[1] < results[0]
