"""Unit tests for repro.graph.io (serialisation round-trips)."""

import pytest

from repro.graph import GraphDatabase
from repro.graph.io import (
    FormatError,
    database_from_json,
    database_to_json,
    dumps_transactions,
    graph_from_dict,
    graph_to_dict,
    iter_graph_chunks,
    loads_transactions,
    read_database,
    read_transactions,
    write_database,
    write_transactions,
)

from .conftest import make_graph


@pytest.fixture
def graphs():
    return [
        make_graph("COS", [(0, 1), (0, 2)]),
        make_graph("CN", [(0, 1)]),
        make_graph("C", []),
    ]


class TestTransactions:
    def test_round_trip(self, graphs):
        text = dumps_transactions(graphs)
        parsed = loads_transactions(text)
        assert len(parsed) == len(graphs)
        for original, restored in zip(graphs, parsed):
            assert restored.num_vertices == original.num_vertices
            assert restored.num_edges == original.num_edges
            assert sorted(restored.labels().values()) == sorted(
                original.labels().values()
            )

    def test_file_round_trip(self, graphs, tmp_path):
        path = tmp_path / "db.txt"
        write_transactions(path, graphs)
        assert len(read_transactions(path)) == len(graphs)

    def test_terminator_line(self, graphs):
        assert dumps_transactions(graphs).strip().endswith("t # -1")

    def test_vertex_outside_transaction_raises(self):
        with pytest.raises(FormatError):
            loads_transactions("v 0 C\n")

    def test_malformed_vertex_raises(self):
        with pytest.raises(FormatError):
            loads_transactions("t # 0\nv 0\n")

    def test_unknown_record_raises(self):
        with pytest.raises(FormatError):
            loads_transactions("t # 0\nx 1 2\n")

    def test_blank_lines_ignored(self, graphs):
        text = dumps_transactions(graphs).replace("\n", "\n\n")
        assert len(loads_transactions(text)) == len(graphs)


class TestJson:
    def test_graph_dict_round_trip(self, graphs):
        for graph in graphs:
            restored = graph_from_dict(graph_to_dict(graph))
            assert restored.num_vertices == graph.num_vertices
            assert restored.num_edges == graph.num_edges

    def test_graph_dict_missing_key_raises(self):
        with pytest.raises(FormatError):
            graph_from_dict({"labels": ["C"]})

    def test_database_round_trip_preserves_ids(self, graphs):
        db = GraphDatabase(graphs)
        db.remove(1)  # create an ID gap
        restored = database_from_json(database_to_json(db))
        assert restored.ids() == db.ids()
        assert restored[2].num_edges == db[2].num_edges

    def test_database_file_round_trip(self, graphs, tmp_path):
        db = GraphDatabase(graphs)
        path = tmp_path / "db.json"
        write_database(path, db)
        assert read_database(path).ids() == db.ids()

    def test_bad_format_tag_raises(self):
        with pytest.raises(FormatError):
            database_from_json('{"format": "something-else", "graphs": {}}')


class TestChunks:
    def test_chunking(self, graphs):
        chunks = list(iter_graph_chunks(graphs, 2))
        assert [len(c) for c in chunks] == [2, 1]

    def test_bad_chunk_size(self, graphs):
        with pytest.raises(ValueError):
            list(iter_graph_chunks(graphs, 0))
