"""Unit tests for repro.trees.maintenance (incremental FCT pool).

The gold standard throughout: maintained state must match mining from
scratch on the updated database (same FCTs, same supports).
"""

import pytest

from repro.trees import FCTSet

from .conftest import make_graph


def fct_snapshot(fct_set: FCTSet) -> set[tuple[str, int]]:
    return {(repr(t.key), t.support_count) for t in fct_set.fcts()}


@pytest.fixture
def graphs(paper_db):
    return dict(paper_db.items())


@pytest.fixture
def fct_set(graphs):
    return FCTSet(graphs, sup_min=3 / 9, max_edges=3)


DELTA = {
    100: make_graph("COS", [(0, 1), (1, 2)]),
    101: make_graph("CSO", [(0, 1), (0, 2)]),
    102: make_graph("CO", [(0, 1)]),
}


class TestConstruction:
    def test_invalid_sup_min(self, graphs):
        with pytest.raises(ValueError):
            FCTSet(graphs, sup_min=0.0)

    def test_pool_mined_at_relaxed_threshold(self, fct_set):
        assert fct_set.relaxed_threshold == pytest.approx(1 / 6)
        assert fct_set.pool_size >= len(fct_set.fcts())

    def test_fcts_are_closed_and_frequent(self, fct_set):
        minimum = 3
        for tree in fct_set.fcts():
            assert tree.closed
            assert tree.support_count >= minimum

    def test_frequent_edges_are_single_edges(self, fct_set):
        for tree in fct_set.frequent_edges():
            assert tree.num_edges == 1

    def test_infrequent_edge_labels(self, fct_set):
        labels = fct_set.infrequent_edge_labels()
        assert ("C", "N") in labels      # support 2 < 3
        assert ("C", "O") not in labels  # support 8

    def test_empty_database(self):
        empty = FCTSet({}, sup_min=0.5)
        assert empty.fcts() == []


class TestAdditions:
    def test_matches_scratch_after_add(self, graphs, fct_set):
        fct_set.add_graphs(DELTA)
        merged = dict(graphs)
        merged.update(DELTA)
        scratch = FCTSet(merged, sup_min=3 / 9, max_edges=3)
        assert fct_snapshot(fct_set) == fct_snapshot(scratch)

    def test_duplicate_ids_rejected(self, fct_set):
        with pytest.raises(ValueError):
            fct_set.add_graphs({0: make_graph("CO", [(0, 1)])})

    def test_add_empty_is_noop(self, fct_set):
        before = fct_snapshot(fct_set)
        fct_set.add_graphs({})
        assert fct_snapshot(fct_set) == before

    def test_new_family_appears(self, graphs, fct_set):
        family = {
            200 + i: make_graph("BO", [(0, 1)]) for i in range(10)
        }
        fct_set.add_graphs(family)
        labels = {
            t.tree.edge_label(*next(t.tree.edges()))
            for t in fct_set.frequent_edges()
        }
        assert ("B", "O") in labels

    def test_db_size_tracked(self, fct_set):
        fct_set.add_graphs(DELTA)
        assert fct_set.db_size == 12


class TestDeletions:
    def test_matches_scratch_after_delete(self, graphs, fct_set):
        fct_set.remove_graphs([3, 5])
        remaining = {g: v for g, v in graphs.items() if g not in (3, 5)}
        scratch = FCTSet(remaining, sup_min=3 / 9, max_edges=3)
        assert fct_snapshot(fct_set) == fct_snapshot(scratch)

    def test_missing_ids_rejected(self, fct_set):
        with pytest.raises(ValueError):
            fct_set.remove_graphs([999])

    def test_remove_empty_is_noop(self, fct_set):
        before = fct_snapshot(fct_set)
        fct_set.remove_graphs([])
        assert fct_snapshot(fct_set) == before


class TestMixedAndSequences:
    def test_apply_add_and_remove(self, graphs, fct_set):
        fct_set.apply(added=DELTA, removed=[3, 5])
        merged = {g: v for g, v in graphs.items() if g not in (3, 5)}
        merged.update(DELTA)
        scratch = FCTSet(merged, sup_min=3 / 9, max_edges=3)
        assert fct_snapshot(fct_set) == fct_snapshot(scratch)

    def test_paper_example_4_7_sequence(self, graphs, fct_set):
        """Example 4.7: add G10-G12, then delete two graphs; the FCT set
        stays consistent with from-scratch mining throughout."""
        fct_set.add_graphs(DELTA)
        fct_set.remove_graphs([3, 5])
        merged = {g: v for g, v in graphs.items() if g not in (3, 5)}
        merged.update(DELTA)
        scratch = FCTSet(merged, sup_min=3 / 9, max_edges=3)
        assert fct_snapshot(fct_set) == fct_snapshot(scratch)

    def test_randomised_sequences_match_scratch(self, molecule_db):
        import random

        rng = random.Random(3)
        graphs = dict(molecule_db.items())
        live = dict(graphs)
        fct_set = FCTSet(live, sup_min=0.5, max_edges=3)
        from repro.datasets import MoleculeGenerator

        generator = MoleculeGenerator(seed=77)
        next_id = max(live) + 1
        for round_number in range(3):
            additions = {
                next_id + i: g
                for i, g in enumerate(generator.generate_many(5))
            }
            next_id += len(additions)
            victims = rng.sample(sorted(live), 3)
            fct_set.apply(added=additions, removed=victims)
            for victim in victims:
                del live[victim]
            live.update(additions)
            scratch = FCTSet(live, sup_min=0.5, max_edges=3)
            assert fct_snapshot(fct_set) == fct_snapshot(scratch), (
                f"divergence at round {round_number}"
            )

    def test_rebuild_restores_consistency(self, fct_set, graphs):
        fct_set.add_graphs(DELTA)
        before = fct_snapshot(fct_set)
        fct_set.rebuild()
        assert fct_snapshot(fct_set) == before
