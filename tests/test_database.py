"""Unit tests for repro.graph.database."""

import pytest

from repro.graph import BatchUpdate, DatabaseError, GraphDatabase

from .conftest import make_graph


class TestContainer:
    def test_empty(self):
        db = GraphDatabase()
        assert len(db) == 0
        assert db.ids() == []

    def test_add_assigns_sequential_ids(self):
        db = GraphDatabase()
        first = db.add(make_graph("CO", [(0, 1)]))
        second = db.add(make_graph("CN", [(0, 1)]))
        assert (first, second) == (0, 1)
        assert 0 in db and 1 in db

    def test_getitem_missing_raises(self):
        db = GraphDatabase()
        with pytest.raises(DatabaseError):
            db[3]

    def test_iteration_orders_by_id(self, paper_db):
        assert list(paper_db) == sorted(paper_db.ids())
        assert [gid for gid, _ in paper_db.items()] == paper_db.ids()

    def test_graph_names_assigned(self):
        db = GraphDatabase([make_graph("CO", [(0, 1)])])
        assert db[0].name == "G0"


class TestBatchUpdate:
    def test_of_constructor(self):
        update = BatchUpdate.of(insertions=[make_graph("CO", [(0, 1)])])
        assert update.num_insertions == 1
        assert update.num_deletions == 0
        assert not update.is_empty()

    def test_empty_batch(self):
        assert BatchUpdate().is_empty()

    def test_apply_insertions_and_deletions(self, paper_db):
        before = len(paper_db)
        update = BatchUpdate.of(
            insertions=[make_graph("CP", [(0, 1)])], deletions=[0, 1]
        )
        record = paper_db.apply(update)
        assert len(paper_db) == before - 1
        assert record.inserted_ids == [before]
        assert sorted(record.deleted_ids) == [0, 1]
        assert set(record.deleted_graphs) == {0, 1}

    def test_apply_missing_deletion_is_atomic(self, paper_db):
        before = len(paper_db)
        update = BatchUpdate.of(
            insertions=[make_graph("CP", [(0, 1)])], deletions=[999]
        )
        with pytest.raises(DatabaseError):
            paper_db.apply(update)
        assert len(paper_db) == before  # nothing applied

    def test_updated_does_not_mutate(self, paper_db):
        before = len(paper_db)
        update = BatchUpdate.of(deletions=[0])
        new_db = paper_db.updated(update)
        assert len(paper_db) == before
        assert len(new_db) == before - 1
        assert 0 in paper_db and 0 not in new_db

    def test_updated_preserves_surviving_ids(self, paper_db):
        update = BatchUpdate.of(deletions=[2])
        new_db = paper_db.updated(update)
        assert new_db[5].name == paper_db[5].name

    def test_ids_never_reused_after_deletion(self):
        db = GraphDatabase([make_graph("CO", [(0, 1)])])
        db.remove(0)
        new_id = db.add(make_graph("CN", [(0, 1)]))
        assert new_id == 1


class TestStatistics:
    def test_totals(self, paper_db):
        assert paper_db.total_vertices() == sum(
            g.num_vertices for g in paper_db.graphs()
        )
        assert paper_db.total_edges() == sum(
            g.num_edges for g in paper_db.graphs()
        )

    def test_label_alphabet(self, paper_db):
        assert paper_db.vertex_label_alphabet() == {"C", "O", "S", "N"}

    def test_edge_label_document_frequency(self, paper_db):
        frequency = paper_db.edge_label_document_frequency()
        assert frequency[("C", "O")] == 8  # every graph but G4 (C-N)
        assert frequency[("C", "N")] == 2

    def test_summary_keys(self, paper_db):
        summary = paper_db.summary()
        assert set(summary) == {"graphs", "avg_vertices", "avg_edges", "labels"}
        assert summary["graphs"] == 9

    def test_summary_empty(self):
        assert GraphDatabase().summary()["graphs"] == 0
