"""Cross-cutting checks between the candidate sources.

The random-walk generator and the FSM miner approach candidates from
opposite ends (sampled traversal vs exhaustive enumeration); these tests
pin the relationship between them on a fixed database.
"""

import pytest

from repro.catapult import CandidateGenerator, SubgraphMiner, fsm_candidates
from repro.csg import build_csg
from repro.graph import canonical_certificate
from repro.isomorphism import contains
from repro.patterns import PatternBudget


@pytest.fixture
def setting(molecule_db):
    graphs = dict(molecule_db.items())
    summary = build_csg(0, list(graphs), graphs)
    return graphs, summary


class TestCrossChecks:
    def test_walk_candidates_within_fsm_universe_support(self, setting):
        """Every walk candidate that actually occurs in data graphs has
        a well-defined support; FSM at the same threshold must find all
        candidates whose support clears it."""
        graphs, summary = setting
        budget = PatternBudget(3, 4, 6)
        generator = CandidateGenerator(graphs, budget, seed=1)
        walk = generator.generate({0: summary})
        mined_keys = {
            repr(m.key)
            for m in SubgraphMiner(graphs, 0.3, max_edges=4).mine()
        }
        for candidate in walk:
            cover = sum(
                1 for g in graphs.values() if contains(g, candidate.graph)
            )
            if cover / len(graphs) >= 0.3:
                assert repr(canonical_certificate(candidate.graph)) in (
                    mined_keys
                ), "FSM missed a frequent walk candidate"

    def test_fsm_candidates_connected_and_sized(self, setting):
        graphs, _ = setting
        for candidate in fsm_candidates(graphs, 0.4, (3, 4), max_candidates=10):
            assert candidate.is_connected()
            assert 3 <= candidate.num_edges <= 4

    def test_walk_candidates_come_from_csg(self, setting):
        """Walk candidates are subgraphs of the CSG they were grown on."""
        graphs, summary = setting
        budget = PatternBudget(3, 5, 6)
        generator = CandidateGenerator(graphs, budget, seed=2)
        host = summary.as_labeled_graph()
        for candidate in generator.generate({0: summary}):
            assert contains(host, candidate.graph)
