"""The write-ahead journal: framing, rotation, checkpoints, recovery.

The load-bearing claims under test (see docs/ROBUSTNESS.md):

* **framing integrity** — every record is length-prefixed and
  CRC-checksummed; a flipped byte is detected, never silently decoded;
* **torn-tail semantics** — a partial or corrupt frame at the very tail
  of the last segment is a crash artefact and is truncated away on
  open; the same damage anywhere else is fatal corruption;
* **checkpoint atomicity** — a checkpoint is visible only after its
  atomic rename, an invalid one is skipped in favour of an older valid
  one;
* **recovery determinism** (the property test) — truncating the journal
  at *every* record boundary and recovering yields exactly the state of
  the uninterrupted run's corresponding prefix, oracle-verified,
  including mid-frame (torn-tail) truncation points.
"""

from __future__ import annotations

import asyncio
import shutil

import pytest

from repro import api
from repro.datasets import aids_like, family_injection
from repro.exceptions import JournalCorruption, JournalError
from repro.journal import (
    Journal,
    iter_frames,
    load_latest_checkpoint,
    recover,
    snapshot_digest,
    submitted_record,
    update_from_record,
    write_checkpoint,
)
from repro.journal.records import TornTail, encode_record
from repro.journal.segments import SEGMENT_PATTERN
from repro.midas import MidasConfig
from repro.patterns import PatternBudget
from repro.serve.service import PatternService


def make_midas(seed: int = 5):
    """A cheap bootstrapped maintainer (~1s) for journal-level tests."""
    return api.bootstrap(
        aids_like(20, seed=11),
        config=MidasConfig(
            budget=PatternBudget(3, 6, 5),
            num_clusters=3,
            sample_cap=40,
            seed=seed,
        ),
    )


def head_signature(snapshot) -> tuple:
    """Everything a reader can observe through a snapshot head."""
    return (
        snapshot.version,
        snapshot.database_size,
        snapshot.sample_size,
        snapshot.set_scov,
        tuple(
            (entry.pattern_id, tuple(sorted(entry.cover)), entry.scov)
            for entry in snapshot.patterns
        ),
    )


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        frames = b"".join(
            encode_record({"type": "rejected", "update_id": i, "detail": ""})
            for i in range(5)
        )
        records = list(iter_frames(frames, segment="wal"))
        assert [r.update_id for r in records] == list(range(5))
        assert all(r.type == "rejected" for r in records)

    def test_flipped_byte_is_detected(self):
        frame = bytearray(
            encode_record({"type": "rejected", "update_id": 1, "detail": ""})
        )
        frame[-1] ^= 0xFF
        with pytest.raises(TornTail):
            list(iter_frames(bytes(frame), segment="wal"))

    def test_partial_frame_is_torn(self):
        frame = encode_record(
            {"type": "rejected", "update_id": 1, "detail": ""}
        )
        good_then_partial = frame + frame[: len(frame) // 2]
        with pytest.raises(TornTail) as excinfo:
            list(iter_frames(good_then_partial, segment="wal"))
        # The tear starts exactly where the good prefix ends.
        assert excinfo.value.offset == len(frame)

    def test_unknown_record_type_is_corruption(self):
        # encode_record validates at write time, so frame the rogue
        # payload by hand: well-formed CRC, unknown vocabulary.
        import json
        import struct
        import zlib

        body = json.dumps({"type": "mystery", "update_id": 1}).encode()
        frame = struct.pack(">II", len(body), zlib.crc32(body)) + body
        with pytest.raises(JournalCorruption):
            list(iter_frames(frame, segment="wal"))
        with pytest.raises(ValueError):
            encode_record({"type": "mystery", "update_id": 1})


# ----------------------------------------------------------------------
# the Journal: append, rotate, reopen, prune
# ----------------------------------------------------------------------
def outcome(update_id: int, state: str = "rejected") -> dict:
    return {"type": state, "update_id": update_id, "detail": ""}


class TestJournal:
    def test_append_reopen_round_trip(self, tmp_path):
        with Journal(tmp_path) as journal:
            for i in range(4):
                journal.append(outcome(i))
        with Journal(tmp_path) as journal:
            assert [r.update_id for r in journal.records()] == [0, 1, 2, 3]

    def test_rotation_and_order(self, tmp_path):
        with Journal(tmp_path, segment_max_bytes=120) as journal:
            for i in range(10):
                journal.append(outcome(i))
            assert journal.segment_count > 1
            assert [r.update_id for r in journal.records()] == list(range(10))
        names = sorted(
            p.name for p in tmp_path.iterdir() if SEGMENT_PATTERN.match(p.name)
        )
        assert len(names) == Journal(tmp_path).segment_count

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        with Journal(tmp_path) as journal:
            for i in range(3):
                journal.append(outcome(i))
            active = journal.active_segment
        clean_size = active.stat().st_size
        with active.open("ab") as handle:
            handle.write(b"\x00\x00\x01\x00torn-by-a-crash")
        with Journal(tmp_path) as journal:
            assert [r.update_id for r in journal.records()] == [0, 1, 2]
        assert active.stat().st_size == clean_size

    def test_mid_segment_corruption_in_active_segment_is_fatal(
        self, tmp_path
    ):
        """A CRC failure with valid frames *after* it is corruption, not
        a torn tail — truncating there would silently drop records that
        were fsync-acknowledged (regression: open used to truncate the
        active segment at any TornTail offset unconditionally)."""
        with Journal(tmp_path) as journal:
            for i in range(4):
                journal.append(outcome(i))
            active = journal.active_segment
        data = bytearray(active.read_bytes())
        records = list(iter_frames(bytes(data), segment=active.name))
        # Flip a byte inside the SECOND record's body: records 2 and 3
        # still parse beyond the damage.
        data[records[1].offset + 8] ^= 0xFF
        active.write_bytes(bytes(data))
        with pytest.raises(JournalCorruption):
            Journal(tmp_path)

    def test_corruption_before_tail_is_fatal(self, tmp_path):
        with Journal(tmp_path, segment_max_bytes=120) as journal:
            for i in range(10):
                journal.append(outcome(i))
            assert journal.segment_count > 1
            first = journal._segments[0].path
        data = bytearray(first.read_bytes())
        data[len(data) // 2] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(JournalCorruption):
            Journal(tmp_path)

    def test_unresolved_tracking_and_prune(self, tmp_path):
        update = family_injection(1, seed=1)
        # segment_max_bytes=1 => every record rotates into its own segment.
        with Journal(tmp_path, segment_max_bytes=1) as journal:
            journal.append(submitted_record(1, update))
            journal.append(outcome(1))
            journal.append(submitted_record(2, update))
            assert journal.unresolved_ids() == {2}
            # update 2's submission lives in a non-active segment and is
            # unresolved: its segment must survive pruning.
            removed = journal.prune(last_update_id=2)
            assert removed >= 1
            assert {r.update_id for r in journal.records()} >= {2}
            assert journal.unresolved_ids() == {2}

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            Journal(tmp_path, fsync="sometimes")


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_round_trip_and_retention(self, tmp_path):
        midas = make_midas()
        reports = []
        for checkpoint_id in range(4):
            write_checkpoint(
                tmp_path,
                checkpoint_id=checkpoint_id,
                midas=midas,
                version=checkpoint_id + 1,
                last_update_id=checkpoint_id,
                next_update_id=checkpoint_id + 1,
            )
            reports.append(checkpoint_id)
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded.checkpoint_id == 3
        assert loaded.version == 4
        # retention: only the newest few checkpoint files survive
        remaining = sorted(p.name for p in tmp_path.glob("ckpt-*.bin"))
        assert len(remaining) <= 2

    def test_invalid_latest_falls_back(self, tmp_path):
        midas = make_midas()
        for checkpoint_id in (0, 1):
            write_checkpoint(
                tmp_path,
                checkpoint_id=checkpoint_id,
                midas=midas,
                version=checkpoint_id + 1,
                last_update_id=0,
                next_update_id=1,
            )
        newest = sorted(tmp_path.glob("ckpt-*.bin"))[-1]
        newest.write_bytes(b"garbage that is not a checkpoint")
        loaded = load_latest_checkpoint(tmp_path)
        assert loaded is not None
        assert loaded.checkpoint_id == 0

    def test_empty_directory_is_none(self, tmp_path):
        assert load_latest_checkpoint(tmp_path) is None
        with pytest.raises(JournalError):
            recover(tmp_path)


# ----------------------------------------------------------------------
# the recovery property: truncate at every boundary, recover, compare
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def uninterrupted_run(tmp_path_factory):
    """One journaled run of 3 committed updates, plus its ground truth.

    Returns (journal_dir, {version: head_signature}) where the signature
    map holds the published head after bootstrap (version 1) and after
    each commit (versions 2..4).
    """
    journal_dir = tmp_path_factory.mktemp("journal-run")
    midas = make_midas()
    updates = [family_injection(1, seed=s) for s in (1, 2, 3)]
    signatures: dict[int, tuple] = {}

    async def scenario() -> None:
        # checkpoint_every is huge so replay is journal-driven from
        # checkpoint 0 at every truncation point.
        service = PatternService(
            midas, journal_dir=journal_dir, checkpoint_every=10**6
        )
        signatures[1] = head_signature(service.store.current())
        await service.start()
        for update in updates:
            status = await service.submit(update)
            status = await service.wait_for(status.update_id)
            assert status.state == "applied"
            signatures[status.version] = head_signature(
                service.store.current()
            )
        await service.close(drain=False)  # no final checkpoint

    asyncio.run(scenario())
    return journal_dir, signatures


def _truncated_copy(source, target, size: int) -> None:
    shutil.copytree(source, target)
    segments = sorted(
        p for p in target.iterdir() if SEGMENT_PATTERN.match(p.name)
    )
    assert len(segments) == 1, "property test assumes a single segment"
    with segments[0].open("r+b") as handle:
        handle.truncate(size)


class TestRecoveryProperty:
    def test_every_record_boundary_recovers_to_prefix_state(
        self, uninterrupted_run, tmp_path
    ):
        journal_dir, signatures = uninterrupted_run
        segments = sorted(
            p for p in journal_dir.iterdir() if SEGMENT_PATTERN.match(p.name)
        )
        assert len(segments) == 1
        data = segments[0].read_bytes()
        records = list(iter_frames(data, segment=segments[0].name))
        boundaries = [r.offset for r in records] + [len(data)]
        # checkpoint 0's journal marker + 3 x (submitted + committed)
        assert len(
            [r for r in records if r.type != "checkpoint"]
        ) == 6

        for index, boundary in enumerate(boundaries):
            prefix = records[:index]
            commits = [r for r in prefix if r.type == "committed"]
            expected_version = 1 + len(commits)
            expected_pending = {
                r.update_id
                for r in prefix
                if r.type == "submitted"
                and r.update_id not in {c.update_id for c in commits}
            }
            copy = tmp_path / f"boundary-{index}"
            _truncated_copy(journal_dir, copy, boundary)
            recovered = recover(copy)
            recovered.journal.close()
            assert recovered.head_version == expected_version
            assert recovered.replayed_commits == len(commits)
            assert (
                head_signature(recovered.head)
                == signatures[expected_version]
            ), f"boundary {index}: recovered head diverged from prefix"
            assert {
                update_id for update_id, _ in recovered.pending
            } == expected_pending

    def test_mid_frame_truncation_recovers_as_torn_tail(
        self, uninterrupted_run, tmp_path
    ):
        journal_dir, signatures = uninterrupted_run
        segments = sorted(
            p for p in journal_dir.iterdir() if SEGMENT_PATTERN.match(p.name)
        )
        data = segments[0].read_bytes()
        records = list(iter_frames(data, segment=segments[0].name))
        # Tear inside the LAST frame: recovery must behave exactly as if
        # the whole frame were missing (the crash interrupted its write).
        last = records[-1]
        for cut in (last.offset + 3, (last.offset + len(data)) // 2):
            copy = tmp_path / f"torn-{cut}"
            _truncated_copy(journal_dir, copy, cut)
            recovered = recover(copy)
            recovered.journal.close()
            commits = [r for r in records[:-1] if r.type == "committed"]
            assert recovered.head_version == 1 + len(commits)
            assert (
                head_signature(recovered.head)
                == signatures[recovered.head_version]
            )

    def test_replay_digest_mismatch_fails_loudly(
        self, uninterrupted_run, tmp_path
    ):
        journal_dir, _ = uninterrupted_run
        copy = tmp_path / "tampered"
        shutil.copytree(journal_dir, copy)
        segments = sorted(
            p for p in copy.iterdir() if SEGMENT_PATTERN.match(p.name)
        )
        data = segments[0].read_bytes()
        records = list(iter_frames(data, segment=segments[0].name))
        # Rewrite a committed record with a wrong head digest (valid CRC,
        # lying payload): recovery must refuse to serve the divergence.
        rewritten = b""
        for record in records:
            payload = dict(record.payload)
            if record.type == "committed":
                payload["head_digest"] = "0" * 64
            rewritten += encode_record(payload)
        segments[0].write_bytes(rewritten)
        with pytest.raises(JournalError):
            recover(copy)

    def test_recovered_submission_payload_round_trips(
        self, uninterrupted_run
    ):
        journal_dir, _ = uninterrupted_run
        with Journal(journal_dir) as journal:
            submitted = [
                r for r in journal.records() if r.type == "submitted"
            ]
        assert submitted
        for record in submitted:
            update = update_from_record(record)
            assert len(update.insertions) == 1
            assert update.deletions == ()


# ----------------------------------------------------------------------
# service-level durability round trip
# ----------------------------------------------------------------------
class TestServiceDurability:
    def test_close_and_recover_identical_head(self, tmp_path):
        midas = make_midas()
        updates = [family_injection(1, seed=s) for s in (7, 8)]

        async def first_life() -> tuple:
            service = PatternService(
                midas, journal_dir=tmp_path, checkpoint_every=2
            )
            await service.start()
            for update in updates:
                status = await service.submit(update)
                status = await service.wait_for(status.update_id)
                assert status.state == "applied"
            head = service.store.current()
            await service.close()
            return head_signature(head), snapshot_digest(head)

        async def second_life() -> tuple:
            service = PatternService(None, journal_dir=tmp_path)
            recovery = service.last_recovery
            assert recovery is not None
            assert recovery.pending == []
            head = service.store.current()
            await service.close()
            return head_signature(head), snapshot_digest(head)

        assert asyncio.run(first_life()) == asyncio.run(second_life())

    def test_unresolved_update_is_requeued_after_recovery(self, tmp_path):
        midas = make_midas()
        update = family_injection(1, seed=9)

        async def submit_and_die() -> int:
            service = PatternService(midas, journal_dir=tmp_path)
            # never start the writer: the submission is journaled but
            # no round runs — the "crash before the round" shape.
            status = await service.submit(update)
            service.journal.close()
            return status.update_id

        update_id = asyncio.run(submit_and_die())

        async def next_life() -> None:
            service = PatternService(None, journal_dir=tmp_path)
            assert [u for u, _ in service.last_recovery.pending] == [
                update_id
            ]
            assert service.status_of(update_id).state == "queued"
            await service.start()
            status = await service.wait_for(update_id)
            assert status.state == "applied"
            await service.close()

        asyncio.run(next_life())

    def test_recovery_requeues_backlog_larger_than_queue_limit(
        self, tmp_path
    ):
        """A crashed service can hold more journaled-but-unresolved
        updates than ``queue_limit`` (a full queue plus the in-flight
        round); recovery must re-queue all of them without tripping any
        queue bound (regression: the maxsize-bounded queue made the
        constructor raise asyncio.QueueFull, so the service could never
        restart after the very overload the journal protects against)."""
        from repro.exceptions import ServiceOverloaded

        midas = make_midas()
        updates = [family_injection(1, seed=s) for s in (1, 2, 3)]

        async def first_life() -> list[int]:
            service = PatternService(
                midas, journal_dir=tmp_path, queue_limit=8
            )
            # Writer never started: every submission stays unresolved.
            ids = []
            for update in updates:
                status = await service.submit(update)
                ids.append(status.update_id)
            service.journal.close()
            return ids

        ids = asyncio.run(first_life())

        async def second_life() -> None:
            # The recovered backlog (3) exceeds the new queue_limit (2).
            service = PatternService(
                None, journal_dir=tmp_path, queue_limit=2
            )
            assert [u for u, _ in service.last_recovery.pending] == ids
            assert service.queue_depth == len(ids)
            # Admission control still sheds *new* writes meanwhile.
            with pytest.raises(ServiceOverloaded):
                await service.submit(family_injection(1, seed=4))
            await service.start()
            for update_id in ids:
                status = await service.wait_for(update_id)
                assert status.state == "applied"
            await service.close()

        asyncio.run(second_life())

    def test_recovery_requires_maintainer_or_checkpoint(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            PatternService(None, journal_dir=tmp_path / "empty")
