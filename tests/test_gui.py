"""Unit + integration tests for repro.gui (canvas, panel, interface).

The end-to-end property here is the strongest planner check in the
suite: executing a formulation plan on the canvas must reconstruct a
graph isomorphic to the query, with the step count the plan promised.
"""

import pytest

from repro.graph import GraphError, are_isomorphic
from repro.gui import ActionKind, PatternPanel, QueryCanvas, VisualInterface
from repro.patterns import PatternSet
from repro.workload import generate_queries, plan_formulation

from .conftest import make_graph


class TestCanvas:
    def test_vertex_and_edge_actions(self):
        canvas = QueryCanvas()
        a = canvas.add_vertex("C")
        b = canvas.add_vertex("O")
        canvas.add_edge(a, b)
        assert canvas.steps == 3
        assert canvas.graph.num_edges == 1

    def test_duplicate_edge_rejected(self):
        canvas = QueryCanvas()
        a = canvas.add_vertex("C")
        b = canvas.add_vertex("O")
        canvas.add_edge(a, b)
        with pytest.raises(GraphError):
            canvas.add_edge(b, a)

    def test_place_pattern_single_step(self, triangle):
        canvas = QueryCanvas()
        mapping = canvas.place_pattern(triangle)
        assert canvas.steps == 1
        assert len(mapping) == 3
        assert are_isomorphic(canvas.graph, triangle)

    def test_delete_vertex_logs_incident_edges(self, triangle):
        canvas = QueryCanvas()
        mapping = canvas.place_pattern(triangle)
        victim = mapping[0]
        canvas.delete_vertex(victim)
        assert canvas.graph.num_vertices == 2
        assert canvas.graph.num_edges == 1

    def test_undo_round_trip(self, triangle):
        canvas = QueryCanvas()
        a = canvas.add_vertex("C")
        b = canvas.add_vertex("O")
        canvas.add_edge(a, b)
        mapping = canvas.place_pattern(triangle)
        canvas.delete_edge(a, b)
        canvas.delete_vertex(mapping[0])
        snapshot_steps = canvas.steps
        # Undo everything back to the empty canvas.
        for _ in range(snapshot_steps):
            canvas.undo()
        assert canvas.graph.num_vertices == 0
        assert canvas.steps == 0

    def test_undo_empty_raises(self):
        with pytest.raises(GraphError):
            QueryCanvas().undo()

    def test_undo_delete_vertex_restores_edges(self, triangle):
        canvas = QueryCanvas()
        mapping = canvas.place_pattern(triangle)
        canvas.delete_vertex(mapping[1])
        canvas.undo()
        assert are_isomorphic(canvas.graph, triangle)

    def test_clear(self, triangle):
        canvas = QueryCanvas()
        canvas.place_pattern(triangle)
        canvas.clear()
        assert canvas.steps == 0
        assert canvas.graph.num_vertices == 0

    def test_action_kinds_logged(self):
        canvas = QueryCanvas()
        a = canvas.add_vertex("C")
        b = canvas.add_vertex("C")
        canvas.add_edge(a, b)
        kinds = [action.kind for action in canvas.log]
        assert kinds == [
            ActionKind.ADD_VERTEX,
            ActionKind.ADD_VERTEX,
            ActionKind.ADD_EDGE,
        ]


class TestPanel:
    @pytest.fixture
    def panel(self):
        patterns = PatternSet()
        patterns.add(make_graph("CCC", [(0, 1), (1, 2)]), "t")
        patterns.add(make_graph("CON", [(0, 1), (0, 2)]), "t")
        return PatternPanel(patterns)

    def test_gamma(self, panel):
        assert panel.gamma == 2

    def test_browse_counts_scans(self, panel):
        list(panel.browse())
        assert panel.scanned == 2

    def test_find_usable(self, panel):
        query = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        found = panel.find_usable(query)
        assert found is not None
        assert panel.picked == 1

    def test_find_usable_none(self, panel):
        query = make_graph("PP", [(0, 1)])
        assert panel.find_usable(query) is None
        assert panel.scanned == panel.gamma

    def test_refresh_swaps_set(self, panel):
        replacement = PatternSet()
        replacement.add(make_graph("SS", [(0, 1)]), "new")
        panel.refresh(replacement)
        assert panel.gamma == 1

    def test_reset_counters(self, panel):
        list(panel.browse())
        panel.reset_counters()
        assert panel.scanned == 0 and panel.picked == 0


class TestVisualInterface:
    def test_formulate_reconstructs_query(self):
        patterns = PatternSet()
        patterns.add(make_graph("CCC", [(0, 1), (1, 2)]), "t")
        interface = VisualInterface.with_patterns(patterns)
        query = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        query.name = "Qgui"
        record = interface.formulate(query)
        assert record.success
        assert record.steps == interface.canvas.steps
        assert record.pattern_uses == 1

    def test_plan_with_edits_replays_exactly(self):
        patterns = PatternSet()
        patterns.add(make_graph("CCCO", [(0, 1), (1, 2), (2, 3)]), "t")
        interface = VisualInterface.with_patterns(patterns)
        query = make_graph("CCC", [(0, 1), (1, 2)])
        query.name = "Qedit"
        record = interface.formulate(query, max_edits=1)
        assert record.success
        assert record.deletions == 1
        # Canvas log: 1 placement + 1 deletion = plan steps.
        assert interface.canvas.steps == record.steps == 2

    def test_random_queries_always_reconstruct(self, molecule_db):
        """Plans over real molecule queries must always replay into a
        graph isomorphic to the query — the planner's soundness check."""
        patterns = PatternSet()
        patterns.add(make_graph("CCC", [(0, 1), (1, 2)]), "t")
        patterns.add(make_graph("CCO", [(0, 1), (1, 2)]), "t")
        patterns.add(make_graph("CCCN", [(0, 1), (1, 2), (1, 3)]), "t")
        interface = VisualInterface.with_patterns(patterns)
        queries = generate_queries(
            dict(molecule_db.items()), 15, size_range=(3, 10), seed=12
        )
        for max_edits in (0, 2):
            for query in queries:
                record = interface.formulate(query, max_edits=max_edits)
                assert record.success, f"failed on {query.name}"

    def test_execute_plan_requires_embeddings(self, triangle):
        from repro.workload.formulation import FormulationPlan, PlacedPattern

        interface = VisualInterface()
        broken = FormulationPlan(
            steps=1,
            placed=[PlacedPattern(0, 3, 3)],
        )
        with pytest.raises(ValueError):
            interface.execute_plan(triangle, broken, patterns=[triangle])

    def test_session_summary(self):
        patterns = PatternSet()
        patterns.add(make_graph("CCC", [(0, 1), (1, 2)]), "t")
        interface = VisualInterface.with_patterns(patterns)
        for i in range(3):
            query = make_graph("CCC", [(0, 1), (1, 2)])
            query.name = f"Q{i}"
            interface.formulate(query)
        summary = interface.session_summary()
        assert summary["sessions"] == 3
        assert summary["success_rate"] == 1.0
        assert summary["pattern_usage_rate"] == 1.0

    def test_empty_summary(self):
        assert VisualInterface().session_summary()["sessions"] == 0
