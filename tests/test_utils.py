"""Unit tests for repro.utils (sampling, stats, timing)."""

import time

import pytest

from repro.utils import (
    LazySampler,
    Stopwatch,
    ks_similarity,
    mean,
    percentile,
    stddev,
    timed,
)


class TestLazySampler:
    def test_small_universe_fully_sampled(self):
        sampler = LazySampler(range(10), max_size=50, seed=0)
        assert sampler.sample_ids == set(range(10))

    def test_capped_sample(self):
        sampler = LazySampler(range(100), max_size=20, seed=0)
        assert sampler.sample_size == 20
        assert sampler.sample_ids <= set(range(100))

    def test_deterministic(self):
        a = LazySampler(range(100), max_size=20, seed=5)
        b = LazySampler(range(100), max_size=20, seed=5)
        assert a.sample_ids == b.sample_ids

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            LazySampler(range(5), max_size=0)

    def test_add_ids_below_capacity(self):
        sampler = LazySampler(range(5), max_size=10, seed=0)
        sampler.add_ids([100, 101])
        assert {100, 101} <= sampler.sample_ids

    def test_add_ids_at_capacity_keeps_size(self):
        sampler = LazySampler(range(50), max_size=10, seed=0)
        sampler.add_ids(range(100, 150))
        assert sampler.sample_size == 10
        assert sampler.universe_size == 100

    def test_remove_ids(self):
        sampler = LazySampler(range(10), max_size=10, seed=0)
        sampler.remove_ids([0, 1])
        assert 0 not in sampler
        assert sampler.universe_size == 8

    def test_scale_to_universe(self):
        sampler = LazySampler(range(10), max_size=10, seed=0)
        assert sampler.scale_to_universe(5) == pytest.approx(0.5)
        empty = LazySampler([], max_size=5)
        assert empty.scale_to_universe(3) == 0.0


class TestStats:
    def test_ks_identical_samples_similar(self):
        sizes = [3, 4, 5, 6, 7, 8] * 3
        assert ks_similarity(sizes, list(sizes))

    def test_ks_disjoint_samples_dissimilar(self):
        a = [1.0] * 30
        b = [100.0] * 30
        assert not ks_similarity(a, b)

    def test_ks_empty_handling(self):
        assert ks_similarity([], [])
        assert not ks_similarity([1.0], [])

    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([5]) == 0.0
        assert stddev([1, 3]) == pytest.approx(2 ** 0.5)

    def test_percentile(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 3
        assert percentile(values, 100) == 5
        assert percentile(values, 25) == 2
        assert percentile([7], 90) == 7

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("b"):
            pass
        assert watch.get("a") >= 0.02
        assert watch.total() >= watch.get("a")
        watch.reset()
        assert watch.total() == 0.0

    def test_stopwatch_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("x"):
                raise RuntimeError("boom")
        assert watch.get("x") >= 0.0

    def test_timed_helper(self):
        with timed() as elapsed:
            time.sleep(0.01)
            assert elapsed() >= 0.01
