"""Resilience layer: budgets, the degradation ladder, faults, rollback.

Covers the guarantees documented in docs/ROBUSTNESS.md:

* cooperative :class:`Budget`/:class:`Deadline` semantics (fake clock,
  state allowances, forced exhaustion, ambient propagation);
* the GED fidelity ladder — each rung a valid, monotonically looser
  bound, with the reported fidelity tag matching the path taken;
* deterministic fault injection at named sites;
* transactional maintenance rounds: a fault at *every* named site inside
  ``Midas.apply_update`` leaves the maintainer byte-identical to its
  pre-round snapshot (``pytest -m faults`` selects these).
"""

import pickle

import pytest

from repro.datasets import aids_like, family_injection
from repro.exceptions import (
    BudgetExhausted,
    ConfigurationError,
    DeadlineExceeded,
    MaintenanceError,
    ReproError,
    ResilienceError,
    RolledBack,
)
from repro.ged import ged
from repro.graph import BatchUpdate
from repro.graph.labeled_graph import LabeledGraph
from repro.midas import Midas, MidasConfig
from repro.obs import get_registry
from repro.patterns import PatternBudget
from repro.resilience import (
    MAINTENANCE_SITES,
    Budget,
    Deadline,
    Fault,
    FaultInjected,
    budget_check,
    current_budget,
    degradation_enabled,
    faults_active,
    inject_faults,
    resilient_count,
    resilient_ged,
    set_degradation,
    trip,
    use_budget,
)

from .conftest import make_graph


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def counter_value(name: str) -> int:
    return get_registry().counter(name).value


# ----------------------------------------------------------------------
# Budget / Deadline
# ----------------------------------------------------------------------
class TestBudget:
    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(10):
            budget.spend(1_000_000)
        budget.check("anywhere")
        assert not budget.expired

    def test_deadline_raises_after_clock_passes(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=5.0, clock=clock)
        budget.check("before")
        clock.advance(4.999)
        budget.check("still fine")
        assert not budget.expired
        clock.advance(0.001)
        assert budget.expired
        with pytest.raises(DeadlineExceeded) as err:
            budget.check("vf2.search")
        assert "vf2.search" in str(err.value)
        assert isinstance(err.value, ResilienceError)

    def test_state_budget_exhausts(self):
        budget = Budget(max_states=10)
        budget.spend(9)
        with pytest.raises(BudgetExhausted):
            budget.spend(1, site="ged.exact")
        assert budget.states == 10
        assert budget.expired

    def test_exhaust_forces_every_check(self):
        budget = Budget()
        budget.exhaust("injected")
        assert budget.expired
        with pytest.raises(BudgetExhausted, match="injected"):
            budget.check()

    def test_expired_property_does_not_raise(self):
        budget = Budget(max_states=0)
        assert budget.expired  # no exception

    def test_negative_allowances_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline_seconds=-1.0)
        with pytest.raises(ValueError):
            Budget(max_states=-1)

    def test_deadline_counters_increment(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=0.0, clock=clock)
        before = counter_value("resilience.deadline_hits")
        with pytest.raises(DeadlineExceeded):
            budget.check()
        assert counter_value("resilience.deadline_hits") == before + 1

    def test_deadline_from_ms(self):
        deadline = Deadline.from_ms(1500.0)
        assert deadline.deadline_seconds == pytest.approx(1.5)
        assert deadline.remaining_seconds() <= 1.5

    def test_elapsed_tracks_clock(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        clock.advance(2.5)
        assert budget.elapsed() == pytest.approx(2.5)


class TestAmbientBudget:
    def test_use_budget_installs_and_restores(self):
        assert current_budget() is None
        budget = Budget()
        with use_budget(budget):
            assert current_budget() is budget
        assert current_budget() is None

    def test_inner_scope_overrides_outer(self):
        outer, inner = Budget(), Budget()
        with use_budget(outer):
            with use_budget(inner):
                assert current_budget() is inner
            assert current_budget() is outer

    def test_use_budget_none_clears_outer(self):
        outer = Budget(max_states=0)
        with use_budget(outer):
            with use_budget(None):
                assert current_budget() is None
                budget_check("unbounded scope")  # must not raise

    def test_budget_check_raises_for_ambient_budget(self):
        with use_budget(Budget(max_states=0)):
            with pytest.raises(BudgetExhausted):
                budget_check("midas.detect")

    def test_budget_check_noop_without_budget(self):
        budget_check("nothing installed")


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
@pytest.fixture
def pairs():
    triangle = make_graph("CCC", [(0, 1), (1, 2), (0, 2)])
    path4 = make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
    star = make_graph("NCCC", [(0, 1), (0, 2), (0, 3)])
    return [(triangle, path4), (triangle, star), (path4, star)]


class TestDegradationLadder:
    def test_full_budget_keeps_requested_fidelity(self, pairs):
        for first, second in pairs:
            result = resilient_ged(first, second, method="exact")
            assert result.fidelity == "exact"
            assert result.requested == "exact"
            assert not result.degraded
            assert not result.is_lower_bound
            assert result.value == ged(first, second, method="exact")

    def test_rungs_are_valid_monotonically_looser_bounds(self, pairs):
        # Descending the ladder exact -> beam -> bipartite -> tight_lower
        # the answers stay *valid*: the upper-bound rungs never drop
        # below the exact distance and the lower bounds never exceed it.
        for first, second in pairs:
            exact = ged(first, second, method="exact")
            beam = ged(first, second, method="beam")
            bipartite = ged(first, second, method="bipartite")
            tight_lower = ged(first, second, method="tight_lower")
            lower = ged(first, second, method="lower")
            assert lower <= tight_lower <= exact <= beam
            assert exact <= bipartite

    @pytest.mark.faults
    @pytest.mark.parametrize(
        "failing_sites, expected_fidelity",
        [
            (("ged.exact",), "beam"),
            (("ged.exact", "ged.beam"), "bipartite"),
            (("ged.exact", "ged.beam", "ged.bipartite"), "tight_lower"),
        ],
    )
    def test_fidelity_tag_matches_path_taken(
        self, pairs, failing_sites, expected_fidelity
    ):
        first, second = pairs[0]
        exact = ged(first, second, method="exact")
        plan = {site: Fault(kind="exhaust") for site in failing_sites}
        before = counter_value("resilience.degradations")
        with inject_faults(plan):
            result = resilient_ged(first, second, method="exact")
        assert result.fidelity == expected_fidelity
        assert result.degraded
        assert counter_value("resilience.degradations") == before + 1
        if result.is_lower_bound:
            assert result.value <= exact
        else:
            assert result.value >= exact

    def test_state_budget_descends_to_tick_free_rung(self, pairs):
        # A zero-state budget kills exact and beam (both spend states);
        # the assignment bound is tick-free, so the ladder lands there.
        first, second = pairs[1]
        result = resilient_ged(
            first, second, method="exact", budget=Budget(max_states=0)
        )
        assert result.degraded
        assert result.fidelity == "bipartite"
        assert result.value >= ged(first, second, method="exact")

    def test_lower_bound_requests_never_degrade(self, pairs):
        first, second = pairs[0]
        result = resilient_ged(
            first, second, method="tight_lower", budget=Budget(max_states=0)
        )
        assert not result.degraded
        assert result.is_lower_bound

    @pytest.mark.faults
    def test_degrade_off_reraises(self, pairs):
        first, second = pairs[0]
        assert degradation_enabled()
        set_degradation(False)
        try:
            with inject_faults({"ged.exact": Fault(kind="exhaust")}):
                with pytest.raises(BudgetExhausted):
                    resilient_ged(first, second, method="exact")
        finally:
            set_degradation(True)

    def test_unknown_method_rejected(self, pairs):
        first, second = pairs[0]
        with pytest.raises(ValueError, match="unknown GED method"):
            resilient_ged(first, second, method="psychic")


class TestResilientCount:
    def test_full_enumeration(self):
        pattern = make_graph("CC", [(0, 1)])
        host = make_graph("CCC", [(0, 1), (1, 2)])
        result = resilient_count(pattern, host)
        assert result.fidelity == "full"
        assert not result.degraded
        assert result.value == 4  # 2 edges x 2 orientations

    def test_limit_respected(self):
        pattern = make_graph("CC", [(0, 1)])
        host = make_graph("CCC", [(0, 1), (1, 2)])
        result = resilient_count(pattern, host, limit=2)
        assert result.fidelity == "full"
        assert result.value == 2

    @pytest.mark.faults
    def test_budget_pressure_caps_the_count(self):
        pattern = make_graph("CC", [(0, 1)])
        host = make_graph("CCC", [(0, 1), (1, 2)])
        before = counter_value("resilience.degradations")
        with inject_faults({"vf2.search": Fault(kind="exhaust")}):
            result = resilient_count(pattern, host)
        assert result.fidelity == "capped"
        assert result.degraded
        assert result.value >= 0
        assert counter_value("resilience.degradations") == before + 1


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestFaultInjection:
    def test_trip_is_noop_without_a_plan(self):
        assert not faults_active()
        trip("midas.swap")  # must not raise

    def test_error_fault_fires_once_by_default(self):
        with inject_faults({"site.a": Fault(kind="error")}):
            assert faults_active()
            with pytest.raises(FaultInjected, match="site.a"):
                trip("site.a")
            trip("site.a")  # times=1: second hit passes
            trip("site.b")  # unplanned sites always pass

    def test_after_skips_initial_hits(self):
        with inject_faults({"s": Fault(kind="error", after=2)}):
            trip("s")
            trip("s")
            with pytest.raises(FaultInjected):
                trip("s")

    def test_custom_exception_class(self):
        class Boom(ReproError):
            pass

        with inject_faults({"s": Fault(kind="error", exc=Boom)}):
            with pytest.raises(Boom):
                trip("s")

    def test_custom_exception_instance(self):
        boom = KeyError("prebuilt")
        with inject_faults({"s": Fault(kind="error", exc=boom)}):
            with pytest.raises(KeyError) as err:
                trip("s")
        assert err.value is boom

    def test_latency_fault_sleeps_then_returns(self):
        with inject_faults({"s": Fault(kind="latency", delay=0.001)}):
            trip("s")  # returns normally after the sleep

    def test_exhaust_fault_poisons_the_ambient_budget(self):
        budget = Budget()
        with use_budget(budget):
            with inject_faults({"s": Fault(kind="exhaust")}):
                with pytest.raises(BudgetExhausted):
                    trip("s")
        assert budget.expired  # later checks keep failing

    def test_exhaust_fault_raises_without_ambient_budget(self):
        with inject_faults({"s": Fault(kind="exhaust")}):
            with pytest.raises(BudgetExhausted, match="s"):
                trip("s")

    def test_plans_do_not_nest(self):
        with inject_faults({"s": Fault()}):
            with pytest.raises(RuntimeError, match="do not nest"):
                with inject_faults({"t": Fault()}):
                    pass  # pragma: no cover

    def test_probability_schedule_reproduces_from_seed(self):
        def fired_pattern(seed: int) -> list[bool]:
            fault = Fault(kind="error", probability=0.5, times=None)
            pattern = []
            with inject_faults({"s": fault}, seed=seed):
                for _ in range(20):
                    try:
                        trip("s")
                        pattern.append(False)
                    except FaultInjected:
                        pattern.append(True)
            return pattern

        first, second = fired_pattern(7), fired_pattern(7)
        assert first == second
        assert any(first) and not all(first)

    def test_plan_reuse_resets_firing_state(self):
        fault = Fault(kind="error")
        for _ in range(2):
            with inject_faults({"s": fault}):
                with pytest.raises(FaultInjected):
                    trip("s")

    def test_counter_tracks_injections(self):
        before = counter_value("resilience.faults_injected")
        with inject_faults({"s": Fault(kind="latency", delay=0.0)}):
            trip("s")
        assert counter_value("resilience.faults_injected") == before + 1


# ----------------------------------------------------------------------
# Transactional maintenance rounds
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def resilience_midas():
    # epsilon=0 forces every round major, so all nine maintenance sites
    # (including candidates/swap) are on the execution path.
    config = MidasConfig(
        budget=PatternBudget(3, 6, 6),
        sup_min=0.5,
        num_clusters=3,
        sample_cap=40,
        seed=3,
        epsilon=0.0,
    )
    return Midas.bootstrap(aids_like(30, seed=9), config)


def _canon(obj, memo=None):
    """Canonical, order-independent projection of an object graph.

    Raw ``pickle.dumps`` is not a usable digest here: ``deepcopy``
    rebuilds sets with a different insertion history, so two structurally
    identical states can serialize to different bytes.  This walks the
    object graph and sorts every set, making the digest depend only on
    *content*.
    """
    import enum
    import random
    import types

    import numpy as np

    if memo is None:
        memo = set()
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, enum.Enum):
        return repr(obj)
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.dtype.str, obj.shape, obj.tobytes())
    if isinstance(obj, (type, types.FunctionType, types.MethodType)):
        return getattr(obj, "__qualname__", repr(obj))
    if isinstance(obj, random.Random):
        return ("random", obj.getstate())
    if id(obj) in memo:
        return "<cycle>"
    memo = memo | {id(obj)}
    if isinstance(obj, (set, frozenset)):
        return ("set", *sorted((_canon(x, memo) for x in obj), key=repr))
    if isinstance(obj, dict):
        return (
            "dict",
            *sorted(
                ((repr(k), _canon(v, memo)) for k, v in obj.items()),
            ),
        )
    if isinstance(obj, (list, tuple)):
        return (type(obj).__name__, *(_canon(x, memo) for x in obj))
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            name: getattr(obj, name)
            for klass in type(obj).__mro__
            for name in getattr(klass, "__slots__", ())
            if hasattr(obj, name)
        }
    if state is not None:
        return (type(obj).__qualname__, _canon(state, memo))
    return repr(obj)


def state_digest(midas: Midas) -> bytes:
    """Byte-level digest of every attribute a round may mutate."""
    return pickle.dumps(_canon(midas._snapshot_state()))


@pytest.mark.faults
class TestTransactionalRollback:
    def test_error_fault_rolls_back_at_every_site(self, resilience_midas):
        midas = resilience_midas
        update = family_injection(8, seed=4)
        for site in MAINTENANCE_SITES:
            before = state_digest(midas)
            rollbacks = counter_value("resilience.rollbacks")
            with inject_faults({site: Fault(kind="error")}):
                with pytest.raises(RolledBack) as err:
                    midas.apply_update(update)
            assert isinstance(err.value, MaintenanceError)
            assert isinstance(err.value.__cause__, FaultInjected)
            assert site in str(err.value.__cause__)
            assert state_digest(midas) == before, f"state leaked at {site}"
            assert counter_value("resilience.rollbacks") == rollbacks + 1

    def test_budget_fault_aborts_round_at_every_site(self, resilience_midas):
        midas = resilience_midas
        update = family_injection(8, seed=4)
        for site in MAINTENANCE_SITES:
            before = state_digest(midas)
            aborted = counter_value("resilience.aborted_rounds")
            with inject_faults({site: Fault(kind="exhaust")}):
                report = midas.apply_update(update)
            assert report.aborted
            assert site in (report.abort_reason or "")
            assert not report.is_major
            assert report.num_swaps == 0
            assert state_digest(midas) == before, f"state leaked at {site}"
            assert counter_value("resilience.aborted_rounds") == aborted + 1

    def test_tight_ambient_deadline_aborts_and_rolls_back(
        self, resilience_midas
    ):
        midas = resilience_midas
        clock = FakeClock()
        expired = Budget(deadline_seconds=1.0, clock=clock)
        clock.advance(2.0)
        before = state_digest(midas)
        with use_budget(expired):
            report = midas.apply_update(family_injection(8, seed=4))
        assert report.aborted
        assert "DeadlineExceeded" in (report.abort_reason or "")
        assert state_digest(midas) == before

    def test_clean_round_still_commits(self, resilience_midas):
        midas = resilience_midas
        before = state_digest(midas)
        report = midas.apply_update(family_injection(8, seed=4))
        assert not report.aborted
        assert report.is_major  # epsilon=0 forces major
        assert state_digest(midas) != before  # the round really mutates


@pytest.mark.faults
class TestNonTransactionalMode:
    def test_fault_propagates_raw_without_snapshot(self):
        config = MidasConfig(
            budget=PatternBudget(3, 6, 6),
            sup_min=0.5,
            num_clusters=3,
            sample_cap=40,
            seed=3,
            epsilon=0.0,
            transactional=False,
        )
        midas = Midas.bootstrap(aids_like(20, seed=11), config)
        with inject_faults({"midas.detect": Fault(kind="error")}):
            with pytest.raises(FaultInjected):  # not wrapped in RolledBack
                midas.apply_update(family_injection(5, seed=4))


# ----------------------------------------------------------------------
# Batch validation at the apply_update boundary
# ----------------------------------------------------------------------
class TestBatchValidation:
    @pytest.fixture(scope="class")
    def midas(self):
        config = MidasConfig(
            budget=PatternBudget(3, 6, 6),
            sup_min=0.5,
            num_clusters=3,
            sample_cap=40,
            seed=3,
        )
        return Midas.bootstrap(aids_like(20, seed=11), config)

    def test_empty_batch_rejected(self, midas):
        with pytest.raises(ConfigurationError, match="empty batch"):
            midas.apply_update(BatchUpdate())

    def test_duplicate_deletions_rejected(self, midas):
        gid = next(iter(midas.database.ids()))
        with pytest.raises(ConfigurationError, match="duplicate deletion"):
            midas.apply_update(BatchUpdate(deletions=(gid, gid)))

    def test_unknown_deletion_id_rejected(self, midas):
        with pytest.raises(ConfigurationError, match="not in database"):
            midas.apply_update(BatchUpdate(deletions=(10_000_000,)))

    def test_empty_graph_insertion_rejected(self, midas):
        with pytest.raises(ConfigurationError, match="empty graph"):
            midas.apply_update(BatchUpdate(insertions=(LabeledGraph(),)))

    def test_edge_to_missing_vertex_rejected(self, midas):
        broken = make_graph("CC", [(0, 1)])
        # Corrupt the adjacency directly: an edge to a vertex that was
        # never labelled (no public API can build this).
        broken._adj[1].add(99)
        broken._adj[99] = {1}
        with pytest.raises(ConfigurationError, match="missing vertex"):
            midas.apply_update(BatchUpdate(insertions=(broken,)))

    def test_validation_failures_leave_state_untouched(self, midas):
        before = state_digest(midas)
        with pytest.raises(ConfigurationError):
            midas.apply_update(BatchUpdate())
        assert state_digest(midas) == before


# ----------------------------------------------------------------------
# bench --all per-figure deadline
# ----------------------------------------------------------------------
class TestBenchDeadline:
    def test_per_figure_timeout_reported_in_summary(
        self, monkeypatch, capsys
    ):
        from repro import cli

        class FakeTable:
            def show(self):
                print("fake table")

        def runaway(scale):
            budget = current_budget()
            assert budget is not None  # --all installs a fresh deadline
            while True:
                budget.check("test.runaway")

        def quick(scale):
            return FakeTable()

        monkeypatch.setattr(
            cli,
            "FIGURES",
            {
                "slowfig": ("a runaway figure", runaway),
                "quickfig": ("a well-behaved figure", quick),
            },
        )
        rc = cli.main(["bench", "--all", "--deadline-ms", "50"])
        captured = capsys.readouterr()
        assert rc == 1  # a timed-out figure fails the run
        assert "TIMEOUT" in captured.err
        assert "slowfig" in captured.err
        # The summary lists both outcomes and the run continued past
        # the timeout to the healthy figure.
        assert "ok" in captured.out
        assert "1/2 experiments succeeded" in captured.out

    def test_explicit_deadline_applies_to_single_figure(
        self, monkeypatch, capsys
    ):
        from repro import cli

        def runaway(scale):
            while True:
                budget_check("test.runaway")

        monkeypatch.setattr(
            cli, "FIGURES", {"slowfig": ("a runaway figure", runaway)}
        )
        rc = cli.main(
            ["bench", "--figure", "slowfig", "--deadline-ms", "50"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "TIMEOUT" in captured.err
