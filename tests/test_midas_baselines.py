"""Unit tests for repro.midas.baselines."""

import pytest

from repro.datasets import aids_like, family_injection
from repro.midas import (
    Midas,
    MidasConfig,
    NoMaintainBaseline,
    RandomSwapMaintainer,
    from_scratch,
    maintenance_report_summary,
)
from repro.patterns import PatternBudget


@pytest.fixture(scope="module")
def config():
    return MidasConfig(
        budget=PatternBudget(3, 6, 6),
        sup_min=0.5,
        num_clusters=3,
        sample_cap=60,
        seed=5,
        epsilon=0.002,
    )


@pytest.fixture(scope="module")
def base_db():
    return aids_like(60, seed=4)


class TestNoMaintain:
    def test_patterns_never_change(self, base_db, config):
        baseline = NoMaintainBaseline.bootstrap(base_db, config)
        before = [p.pattern_id for p in baseline.patterns]
        baseline.apply_update(family_injection(30, seed=1))
        assert [p.pattern_id for p in baseline.patterns] == before

    def test_database_advances(self, base_db, config):
        baseline = NoMaintainBaseline.bootstrap(base_db, config)
        baseline.apply_update(family_injection(10, seed=1))
        assert len(baseline.database) == len(base_db) + 10

    def test_pattern_graphs_accessor(self, base_db, config):
        baseline = NoMaintainBaseline.bootstrap(base_db, config)
        assert len(baseline.pattern_graphs()) == len(baseline.patterns)


class TestRandomSwap:
    def test_random_swaps_execute_on_major(self, base_db, config):
        maintainer = RandomSwapMaintainer(
            config, base_db.copy(), _state(base_db, config)
        )
        report = maintainer.apply_update(family_injection(30, seed=2))
        if report.is_major and report.candidates_promising:
            assert report.num_swaps >= 1

    def test_gamma_preserved(self, base_db, config):
        maintainer = RandomSwapMaintainer(
            config, base_db.copy(), _state(base_db, config)
        )
        gamma = len(maintainer.patterns)
        maintainer.apply_update(family_injection(30, seed=2))
        assert len(maintainer.patterns) == gamma


def _state(base_db, config):
    from repro.catapult import CatapultPlusPlus

    return CatapultPlusPlus(config).run(base_db.copy())


class TestFromScratch:
    def test_returns_fresh_patterns(self, base_db, config):
        update = family_injection(10, seed=3)
        patterns, watch, updated = from_scratch(base_db, update, config)
        assert len(patterns) > 0
        assert watch.total() > 0
        assert len(updated) == len(base_db) + 10
        assert len(base_db) == 60  # input untouched

    def test_plus_plus_variant(self, base_db, config):
        update = family_injection(10, seed=3)
        patterns, watch, _ = from_scratch(
            base_db, update, config, plus_plus=True
        )
        assert len(patterns) > 0
        assert watch.get("indexing") >= 0


class TestReportSummary:
    def test_keys(self, base_db, config):
        midas = Midas.bootstrap(base_db, config)
        report = midas.apply_update(family_injection(20, seed=6))
        summary = maintenance_report_summary(report)
        assert set(summary) == {
            "pmt_seconds",
            "pgt_seconds",
            "cluster_seconds",
            "distance",
            "major",
            "swaps",
            "candidates",
            "promising",
        }
        assert summary["pmt_seconds"] > 0
