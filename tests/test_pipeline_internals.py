"""Additional coverage for pipeline composition details."""

import pytest

from repro.catapult import Catapult, CatapultConfig, CatapultPlusPlus
from repro.catapult.pipeline import CatapultResult
from repro.patterns import PatternBudget


@pytest.fixture(scope="module")
def config():
    return CatapultConfig(
        budget=PatternBudget(3, 5, 4),
        sup_min=0.5,
        num_clusters=3,
        sample_cap=30,
        seed=9,
    )


class TestPipelineComposition:
    def test_result_fields_populated(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        assert isinstance(result, CatapultResult)
        assert result.clusters.total_graphs() == len(molecule_db)
        assert len(result.csgs) == len(result.clusters)
        assert result.sampler.universe_size == len(molecule_db)
        assert result.oracle.universe_size <= config.sample_cap
        assert result.feature_space.features

    def test_catapult_uses_frequent_features(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        # CATAPULT clusters on frequent (not only closed) subtrees.
        frequent_keys = {
            repr(t.key) for t in result.fct_set.frequent()
        }
        for feature in result.feature_space.features:
            assert repr(feature.key) in frequent_keys

    def test_catapult_pp_uses_closed_features(self, molecule_db, config):
        result = CatapultPlusPlus(config).run(molecule_db)
        closed_keys = {repr(t.key) for t in result.fct_set.fcts()}
        for feature in result.feature_space.features:
            assert repr(feature.key) in closed_keys

    def test_csg_members_partition_database(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        seen: set[int] = set()
        for cluster_id, summary in result.csgs.summaries().items():
            assert summary.member_ids == result.clusters.members(cluster_id)
            assert not (summary.member_ids & seen)
            seen |= summary.member_ids
        assert seen == set(molecule_db.ids())

    def test_timings_cover_all_phases(self, molecule_db, config):
        result = CatapultPlusPlus(config).run(molecule_db)
        laps = result.stopwatch.laps
        for phase in ("mining", "clustering", "csg", "indexing", "selection"):
            assert phase in laps, f"missing stopwatch lap {phase}"
        assert result.selection_seconds == laps["selection"]

    def test_sample_is_subset_of_database(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        assert result.sampler.sample_ids <= set(molecule_db.ids())

    def test_pattern_provenance(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        for pattern in result.patterns:
            assert pattern.provenance == "catapult"
