"""Unit tests for the frequent connected subgraph miner."""

import pytest

from repro.catapult.fsm import SubgraphMiner, fsm_candidates
from repro.isomorphism import covered_graphs

from .conftest import make_graph


@pytest.fixture
def ring_db():
    from repro.graph import GraphDatabase

    return GraphDatabase(
        [
            make_graph("CCC", [(0, 1), (1, 2), (0, 2)]),
            make_graph("CCC", [(0, 1), (1, 2), (0, 2)]),
            make_graph("CCCC", [(0, 1), (1, 2), (2, 3), (0, 3)]),
            make_graph("CCO", [(0, 1), (1, 2)]),
        ]
    )


class TestSubgraphMiner:
    def test_parameter_validation(self, ring_db):
        graphs = dict(ring_db.items())
        with pytest.raises(ValueError):
            SubgraphMiner(graphs, 0.0)
        with pytest.raises(ValueError):
            SubgraphMiner(graphs, 0.5, max_edges=0)

    def test_cyclic_patterns_mined(self, ring_db):
        graphs = dict(ring_db.items())
        mined = SubgraphMiner(graphs, 2 / 4, max_edges=3).mine()
        cyclic = [m for m in mined if not m.graph.is_tree()]
        assert cyclic, "triangle should be mined"
        triangle = cyclic[0]
        assert triangle.num_edges == 3
        assert triangle.support_count == 2

    def test_supports_exact(self, ring_db):
        graphs = dict(ring_db.items())
        mined = SubgraphMiner(graphs, 1 / 4, max_edges=3).mine()
        for entry in mined:
            assert entry.cover == covered_graphs(ring_db, entry.graph)

    def test_superset_of_tree_miner(self, paper_db):
        """Every frequent tree is also a frequent subgraph."""
        from repro.trees import TreeMiner

        graphs = dict(paper_db.items())
        trees = TreeMiner(graphs, 3 / 9, max_edges=3).mine_frequent()
        subgraphs = SubgraphMiner(graphs, 3 / 9, max_edges=3).mine()
        subgraph_keys = {repr(s.key) for s in subgraphs}
        from repro.graph import canonical_certificate

        for tree in trees:
            assert repr(canonical_certificate(tree.tree)) in subgraph_keys

    def test_connectivity_invariant(self, ring_db):
        graphs = dict(ring_db.items())
        for entry in SubgraphMiner(graphs, 1 / 4, max_edges=4).mine():
            assert entry.graph.is_connected()

    def test_empty_database(self):
        assert SubgraphMiner({}, 0.5).mine() == []


class TestFsmCandidates:
    def test_size_window(self, ring_db):
        graphs = dict(ring_db.items())
        candidates = fsm_candidates(graphs, 1 / 4, (2, 3))
        assert candidates
        for candidate in candidates:
            assert 2 <= candidate.num_edges <= 3

    def test_ranked_by_support_and_capped(self, ring_db):
        graphs = dict(ring_db.items())
        all_candidates = fsm_candidates(graphs, 1 / 4, (1, 3))
        capped = fsm_candidates(graphs, 1 / 4, (1, 3), max_candidates=2)
        assert len(capped) == 2
        assert [repr(c.signature()) for c in capped] == [
            repr(c.signature()) for c in all_candidates[:2]
        ]
