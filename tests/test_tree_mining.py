"""Unit tests for repro.trees.mining (frequent/closed subtree mining).

The paper_db fixture mirrors the paper's Figure 3 / Example 3.3 database,
so several expectations here come straight from the paper's worked
examples.
"""

import pytest

from repro.isomorphism import contains, covered_graphs
from repro.trees import (
    TreeMiner,
    canonical_string,
    mine_closed_trees,
    mine_frequent_trees,
)

from .conftest import make_graph


@pytest.fixture
def mined(paper_db):
    graphs = dict(paper_db.items())
    return TreeMiner(graphs, 3 / 9, max_edges=3).mine_frequent()


class TestMiner:
    def test_invalid_support(self, paper_db):
        with pytest.raises(ValueError):
            TreeMiner(dict(paper_db.items()), 0.0)
        with pytest.raises(ValueError):
            TreeMiner(dict(paper_db.items()), 1.5)

    def test_invalid_max_edges(self, paper_db):
        with pytest.raises(ValueError):
            TreeMiner(dict(paper_db.items()), 0.5, max_edges=0)

    def test_supports_are_exact(self, paper_db, mined):
        for tree in mined:
            assert tree.cover == covered_graphs(paper_db, tree.tree)

    def test_all_mined_trees_are_frequent(self, mined):
        for tree in mined:
            assert tree.support_count >= 3

    def test_trees_are_actually_trees(self, mined):
        for tree in mined:
            assert tree.tree.is_tree()

    def test_co_edge_support(self, mined):
        by_string = {canonical_string(t.tree): t for t in mined}
        assert by_string["C $ O"].support_count == 8

    def test_example_3_3_closedness(self, mined):
        """The C-S edge is not closed: its supertree S-C-O has the same
        support (paper, Figure 5)."""
        by_string = {canonical_string(t.tree): t for t in mined}
        assert not by_string["C $ S"].closed
        assert by_string["C $ O S"].closed
        assert by_string["C $ O"].closed

    def test_completeness_against_bruteforce(self, paper_db):
        """Every 1- or 2-edge tree with support >= threshold is mined."""
        graphs = dict(paper_db.items())
        mined = {
            repr(t.key)
            for t in TreeMiner(graphs, 3 / 9, max_edges=2).mine_frequent()
        }
        # Brute force: enumerate all size-<=2 trees over the alphabet.
        from itertools import product

        from repro.trees import tree_certificate

        labels = "CONS"
        candidates = []
        for a, b in product(labels, repeat=2):
            candidates.append(make_graph(a + b, [(0, 1)]))
        for a, b, c in product(labels, repeat=3):
            candidates.append(make_graph(a + b + c, [(0, 1), (1, 2)]))
        seen = set()
        for candidate in candidates:
            key = repr(tree_certificate(candidate))
            if key in seen:
                continue
            seen.add(key)
            support = len(covered_graphs(paper_db, candidate))
            if support >= 3:
                assert key in mined, (
                    f"missed frequent tree {canonical_string(candidate)} "
                    f"(support {support})"
                )

    def test_closed_subset_of_frequent(self, paper_db):
        graphs = dict(paper_db.items())
        frequent = {repr(t.key) for t in mine_frequent_trees(graphs, 3 / 9, 3)}
        closed = {repr(t.key) for t in mine_closed_trees(graphs, 3 / 9, 3)}
        assert closed <= frequent
        assert len(closed) < len(frequent)  # C-S is open

    def test_max_edges_respected(self, paper_db):
        graphs = dict(paper_db.items())
        for tree in mine_frequent_trees(graphs, 2 / 9, max_edges=2):
            assert tree.num_edges <= 2

    def test_closedness_semantics(self, paper_db, mined):
        """A mined tree is closed iff no mined one-edge supertree has
        equal support (exhaustively re-checked)."""
        for tree in mined:
            has_equal_supertree = any(
                other.num_edges == tree.num_edges + 1
                and other.support_count == tree.support_count
                and contains(other.tree, tree.tree)
                for other in mined
            )
            if tree.num_edges < 3:  # frontier trees are reported closed
                assert tree.closed == (not has_equal_supertree)

    def test_empty_database(self):
        assert TreeMiner({}, 0.5).mine_frequent() == []

    def test_mined_tree_tokens(self, mined):
        for tree in mined:
            tokens = tree.tokens()
            assert tokens[0] != "$"
