"""Unit tests for the benchmark harness and shared experiment scaffolding."""

import pytest

from repro.bench import (
    DEFAULT_SCALE,
    ExperimentTable,
    batch_grid,
    dataset,
    default_config,
    scaled,
    series_summary,
)


class TestExperimentTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("t", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_everything(self):
        table = ExperimentTable("My Experiment", ["name", "value"])
        table.add_row("alpha", 0.51239)
        table.add_row("beta", 1234.5)
        table.add_note("a note")
        text = table.render()
        assert "My Experiment" in text
        assert "alpha" in text
        assert "0.5124" in text  # 4-decimal small floats
        assert "1234" in text    # big floats rounded
        assert "a note" in text

    def test_column_values(self):
        table = ExperimentTable("t", ["x", "y"])
        table.add_row(1, "p")
        table.add_row(2, "q")
        assert table.column_values("x") == [1, 2]
        with pytest.raises(ValueError):
            table.column_values("nope")

    def test_show_prints(self, capsys):
        table = ExperimentTable("t", ["x"])
        table.add_row(3)
        table.show()
        assert "t" in capsys.readouterr().out

    def test_series_summary(self):
        text = series_summary("pmt", [1.0, 2.0, 3.0])
        assert "min=1.000" in text and "max=3.000" in text
        assert "(empty)" in series_summary("x", [])


class TestCommon:
    def test_scaled_overrides(self):
        scale = scaled(base_graphs=10)
        assert scale.base_graphs == 10
        assert scale.gamma == DEFAULT_SCALE.gamma

    def test_default_config_from_scale(self):
        scale = scaled(gamma=6, eta_min=3, eta_max=5)
        config = default_config(scale)
        assert config.budget.gamma == 6
        assert config.budget.eta_max == 5

    def test_default_config_override(self):
        config = default_config(DEFAULT_SCALE, epsilon=0.5)
        assert config.epsilon == 0.5

    def test_dataset_profiles(self):
        for name in ("aids", "pubchem", "emol"):
            db = dataset(name, 5, seed=1)
            assert len(db) == 5
        with pytest.raises(KeyError):
            dataset("zinc", 5, seed=1)

    def test_batch_grid_shape(self):
        scale = scaled(base_graphs=20, batch_percent=20.0, family_batch=5)
        db = dataset("aids", 20, seed=2)
        grid = batch_grid(db, scale, "aids")
        names = [name for name, _ in grid]
        assert len(grid) == 4
        assert "family" in names
        insertion_batch = dict(grid)["+20%"]
        assert insertion_batch.num_insertions == 4
        deletion_batch = dict(grid)["-10%"]
        assert deletion_batch.num_deletions == 2
