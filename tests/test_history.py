"""Unit tests for repro.midas.history."""

import pytest

from repro.midas import MaintenanceHistory
from repro.midas.detector import Classification, ModificationType
from repro.midas.maintainer import MaintenanceReport
from repro.midas.swap import SwapOutcome, SwapRecord
from repro.utils.timing import Stopwatch

from .conftest import make_graph


def fake_report(major: bool, swaps: int = 0, pmt: float = 1.0) -> MaintenanceReport:
    watch = Stopwatch()
    watch.laps["total"] = pmt
    outcome = None
    if major:
        outcome = SwapOutcome()
        graph = make_graph("CO", [(0, 1)])
        for i in range(swaps):
            outcome.swaps.append(
                SwapRecord(
                    removed_id=i,
                    removed_graph=graph,
                    added_id=100 + i,
                    added_graph=graph,
                    scan=1,
                )
            )
    return MaintenanceReport(
        classification=Classification(
            ModificationType.MAJOR if major else ModificationType.MINOR,
            distance=0.01 if major else 0.0001,
            epsilon=0.002,
        ),
        swap_outcome=outcome,
        stopwatch=watch,
    )


class TestHistory:
    def test_empty(self):
        history = MaintenanceHistory()
        assert len(history) == 0
        assert history.major_fraction == 0.0
        assert history.summary()["rounds"] == 0.0

    def test_record_and_counters(self):
        history = MaintenanceHistory()
        history.record(fake_report(True, swaps=2), "family")
        history.record(fake_report(False), "trickle")
        history.record(fake_report(True, swaps=1), "growth")
        assert len(history) == 3
        assert history.major_fraction == pytest.approx(2 / 3)
        assert history.total_swaps == 3
        assert len(history.major_rounds()) == 2

    def test_labels_autonumbered(self):
        history = MaintenanceHistory()
        entry = history.record(fake_report(False))
        assert entry.label == "round 0"
        named = history.record(fake_report(False), "named")
        assert named.label == "named"

    def test_timing_aggregates(self):
        history = MaintenanceHistory()
        history.record(fake_report(False, pmt=1.0))
        history.record(fake_report(False, pmt=3.0))
        assert history.total_maintenance_seconds == pytest.approx(4.0)
        assert history.average_pmt() == pytest.approx(2.0)

    def test_quality_series_and_trend(self):
        history = MaintenanceHistory()
        history.record(fake_report(False), quality={"scov": 0.5})
        history.record(fake_report(False), quality={"scov": 0.7})
        history.record(fake_report(False), quality={})
        assert history.quality_series("scov") == [0.5, 0.7]
        assert history.quality_trend("scov") == pytest.approx(0.2)
        assert history.quality_trend("div") == 0.0

    def test_summary_keys(self):
        history = MaintenanceHistory()
        history.record(fake_report(True, swaps=1))
        summary = history.summary()
        assert set(summary) == {
            "rounds",
            "major_fraction",
            "total_swaps",
            "avg_pmt_seconds",
            "total_pmt_seconds",
        }
