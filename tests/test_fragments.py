"""The shared sub-pattern match network: the differential-test wall.

The load-bearing properties:

* **Decomposition canonicality** — a pattern's fragment chain is a
  nested sequence of connected prefixes whose certificates are
  invariant under vertex-ID permutation, so isomorphic patterns share
  network nodes by construction.
* **Decompose-then-reassemble** — intersecting the materialized
  fragment views top-down yields exactly the AND of each fragment's
  direct (brute-force) match set, and that mask never excludes a true
  cover member: the engine's answers are identical with the network on
  or off.
* **Incremental ≡ rebuild** — after any add/remove batch sequence the
  incrementally maintained views are bit-identical to views rebuilt
  from scratch over the final database.
* **Budget** — the greedy selector never lets actual view residency
  (as reported by the substrate's ``nbytes``) exceed the configured
  byte budget; a zero budget degrades to the plain engine, never to a
  wrong answer.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.cache import graph_key
from repro.check import load_artifact, permuted_copy
from repro.check.fuzz import random_connected_pattern, random_labeled_graph
from repro.check.invariants import check_fragment_network
from repro.check.oracles import ORACLES, get_oracle
from repro.check.workload import workload_from_dict
from repro.covindex import (
    CoverageEngine,
    DEFAULT_FRAGMENT_BUDGET,
    MIN_FRAGMENT_EDGES,
    current_fragment_budget,
    decompose,
    fragments_enabled,
    use_fragments,
)
from repro.execution import ExecutionConfig
from repro.graph.canonical import canonical_certificate
from repro.isomorphism import contains

from .conftest import make_graph

ARTIFACT = (
    Path(__file__).parent / "artifacts" / "permuted_isomorphic_pattern.json"
)


def _drain(engine: CoverageEngine, key: tuple) -> None:
    """Verify a tracked pattern's full pending delta (the oracle loop)."""
    for graph_id in engine.pending(key):
        engine.commit(
            key,
            graph_id,
            contains(engine.graphs[graph_id], engine.pattern(key)),
        )


def _direct_match_bits(graphs: dict, pattern) -> int:
    return sum(
        1 << graph_id
        for graph_id, graph in graphs.items()
        if contains(graph, pattern)
    )


# ----------------------------------------------------------------------
# decomposition
# ----------------------------------------------------------------------
class TestDecompose:
    def test_small_patterns_have_no_fragments(self):
        # At or below MIN_FRAGMENT_EDGES the posting filter already
        # reproduces any view the network could build.
        assert decompose(make_graph("CO", [(0, 1)])) == []
        assert decompose(make_graph("CNO", [(0, 1), (1, 2)])) == []
        assert (
            decompose(make_graph("CNOC", [(0, 1), (1, 2), (2, 3)])) == []
        )

    def test_disconnected_patterns_have_no_fragments(self):
        pattern = make_graph(
            "CNOCNO", [(0, 1), (1, 2), (3, 4), (4, 5)]
        )
        assert decompose(pattern) == []

    def test_chain_is_nested_connected_prefixes(self):
        pattern = make_graph(
            "CNCNCNC", [(i, i + 1) for i in range(6)]
        )
        fragments = decompose(pattern)
        assert [f.num_edges for f in fragments] == [3, 4, 5]
        for fragment in fragments:
            assert fragment.is_connected()
        for small, big in zip(fragments, fragments[1:]):
            assert set(small.edges()) < set(big.edges())

    def test_permuted_twins_decompose_identically(self):
        rng = random.Random(11)
        for seed in range(12):
            pattern = random_connected_pattern(
                rng, min_edges=MIN_FRAGMENT_EDGES + 1, max_edges=8
            )
            twin = permuted_copy(pattern, seed=seed)
            certificates = [
                canonical_certificate(f) for f in decompose(pattern)
            ]
            twin_certificates = [
                canonical_certificate(f) for f in decompose(twin)
            ]
            assert certificates == twin_certificates

    def test_shared_core_shares_fragments(self):
        # Two decorations of the same 6-edge core must grow through the
        # core itself (decoration labels sort after the core's), so all
        # their proper fragments up to the core coincide.
        core_edges = [(i, i + 1) for i in range(6)]
        left = make_graph("CNCNCNCS", core_edges + [(0, 7)])
        right = make_graph("CNCNCNCS", core_edges + [(1, 7)])
        assert graph_key(left) != graph_key(right)
        left_certs = [canonical_certificate(f) for f in decompose(left)]
        right_certs = [canonical_certificate(f) for f in decompose(right)]
        core_cert = canonical_certificate(
            make_graph("CNCNCNC", core_edges)
        )
        # Both patterns have 7 edges, so the largest (6-edge) fragment
        # IS the core and the full chains coincide fragment for
        # fragment — one network node each, refcount 2.
        assert left_certs == right_certs
        assert left_certs[-1] == core_cert


# ----------------------------------------------------------------------
# decompose-then-reassemble (property a)
# ----------------------------------------------------------------------
class TestReassembly:
    def test_mask_is_the_and_of_direct_fragment_matches(self):
        rng = random.Random(7)
        cases_with_mask = 0
        for _ in range(10):
            graphs = {
                graph_id: random_labeled_graph(rng, max_vertices=8)
                for graph_id in range(10)
            }
            pattern = random_connected_pattern(
                rng, min_edges=MIN_FRAGMENT_EDGES + 1, max_edges=7
            )
            engine = CoverageEngine(graphs, fragments=True)
            key = graph_key(pattern)
            engine.register(key, pattern)
            network = engine.network
            mask = network.pattern_mask(key)
            assert mask is not None  # default budget fits every chain
            cases_with_mask += 1
            expected = None
            for fragment_key in network.chain(key):
                state = network.fragment(fragment_key)
                if not state.materialized:
                    continue
                bits = _direct_match_bits(graphs, state.graph)
                expected = bits if expected is None else expected & bits
            assert mask == expected
            # Soundness: the mask never drops a true cover member.
            cover_bits = _direct_match_bits(graphs, pattern)
            assert cover_bits & ~mask == 0
        assert cases_with_mask == 10

    def test_engine_answers_identical_network_on_or_off(self):
        rng = random.Random(19)
        for _ in range(6):
            graphs = {
                graph_id: random_labeled_graph(rng, max_vertices=8)
                for graph_id in range(8)
            }
            patterns = [
                random_connected_pattern(rng, min_edges=2, max_edges=7)
                for _ in range(4)
            ]
            with_network = CoverageEngine(graphs, fragments=True)
            without = CoverageEngine(graphs)
            for pattern in patterns:
                key = graph_key(pattern)
                with_network.register(key, pattern)
                without.register(key, pattern)
                # The masked pending delta is a subset of the unmasked.
                masked = set(with_network.pending(key))
                unmasked = set(without.pending(key))
                assert masked <= unmasked
                _drain(with_network, key)
                _drain(without, key)
                assert with_network.cover_ids(key) == without.cover_ids(
                    key
                )
                assert with_network.cover_ids(key) == frozenset(
                    graph_id
                    for graph_id, graph in graphs.items()
                    if contains(graph, pattern)
                )


# ----------------------------------------------------------------------
# incremental ≡ rebuild (property b)
# ----------------------------------------------------------------------
class TestIncremental:
    def test_views_after_batches_equal_rebuild(self):
        rng = random.Random(21)
        for _ in range(5):
            graphs = {
                graph_id: random_labeled_graph(rng, max_vertices=8)
                for graph_id in range(8)
            }
            patterns = [
                random_connected_pattern(
                    rng, min_edges=MIN_FRAGMENT_EDGES + 1, max_edges=7
                )
                for _ in range(3)
            ]
            engine = CoverageEngine(graphs, fragments=True)
            keys = []
            for pattern in patterns:
                key = graph_key(pattern)
                keys.append(key)
                engine.register(key, pattern)
                _drain(engine, key)
            next_id = 100
            for _ in range(3):
                added = {
                    next_id + offset: random_labeled_graph(
                        rng, max_vertices=8
                    )
                    for offset in range(rng.randint(0, 3))
                }
                next_id += 10
                live = sorted(engine.graph_ids())
                removed = rng.sample(
                    live, k=min(len(live), rng.randint(0, 2))
                )
                engine.apply_update(added, removed)
                for key in keys:
                    _drain(engine, key)
            for key in keys:
                engine.network.pattern_mask(key)

            fresh = CoverageEngine(dict(engine.graphs), fragments=True)
            for key, pattern in zip(keys, patterns):
                fresh.register(key, pattern)
                fresh.network.pattern_mask(key)

            assert set(engine.network.fragment_keys()) == set(
                fresh.network.fragment_keys()
            )
            for fragment_key in engine.network.fragment_keys():
                state = engine.network.fragment(fragment_key)
                rebuilt = fresh.network.fragment(fragment_key)
                assert state.materialized == rebuilt.materialized
                if state.materialized:
                    assert state.match_bits == rebuilt.match_bits
                    assert state.seen_bits == rebuilt.seen_bits
            # And the engine's covers track ground truth throughout.
            for key, pattern in zip(keys, patterns):
                expected = {
                    graph_id
                    for graph_id, graph in engine.graphs.items()
                    if contains(graph, pattern)
                }
                assert set(engine.cover_ids(key)) == expected

    def test_inplace_replacement_clears_fragment_verdicts(self):
        host = make_graph("CNCNCNC", [(i, i + 1) for i in range(6)])
        pattern = make_graph("CNCNC", [(i, i + 1) for i in range(4)])
        engine = CoverageEngine({0: host}, fragments=True)
        key = graph_key(pattern)
        engine.register(key, pattern)
        _drain(engine, key)
        assert engine.cover_ids(key) == frozenset({0})
        # Replace graph 0 in place with a host that lacks the pattern.
        engine.apply_update({0: make_graph("SS", [(0, 1)])}, [])
        _drain(engine, key)
        assert engine.cover_ids(key) == frozenset()
        for fragment_key in engine.network.chain(key):
            state = engine.network.fragment(fragment_key)
            if state.materialized:
                assert state.match_bits == 0


# ----------------------------------------------------------------------
# budget (property c)
# ----------------------------------------------------------------------
class TestBudget:
    @pytest.mark.parametrize("budget", [0, 1, 64, 256, 10_000])
    def test_residency_never_exceeds_budget(self, budget):
        rng = random.Random(3 + budget)
        graphs = {
            graph_id: random_labeled_graph(rng, max_vertices=8)
            for graph_id in range(12)
        }
        engine = CoverageEngine(
            graphs, fragments=True, fragment_budget=budget
        )
        for _ in range(5):
            pattern = random_connected_pattern(
                rng, min_edges=MIN_FRAGMENT_EDGES + 1, max_edges=8
            )
            key = graph_key(pattern)
            engine.register(key, pattern)
            engine.network.pattern_mask(key)
            _drain(engine, key)
            # Actual residency (substrate-reported bytes), not estimate.
            assert engine.network.view_bytes() <= budget
            check_fragment_network(engine.network)

    def test_zero_budget_degrades_to_plain_engine(self):
        rng = random.Random(5)
        graphs = {
            graph_id: random_labeled_graph(rng, max_vertices=8)
            for graph_id in range(8)
        }
        engine = CoverageEngine(graphs, fragments=True, fragment_budget=0)
        plain = CoverageEngine(graphs)
        pattern = random_connected_pattern(
            rng, min_edges=MIN_FRAGMENT_EDGES + 1, max_edges=7
        )
        key = graph_key(pattern)
        engine.register(key, pattern)
        plain.register(key, pattern)
        assert engine.network.stats()["materialized"] == 0
        assert engine.network.pattern_mask(key) is None
        assert engine.pending(key) == plain.pending(key)
        _drain(engine, key)
        _drain(plain, key)
        assert engine.cover_ids(key) == plain.cover_ids(key)

    def test_eviction_on_budget_pressure_keeps_shared_fragments(self):
        # Room for exactly two views: the fragment shared by both
        # chains must win the selector over the chain-private ones.
        graphs = {0: make_graph("CNCNCNCS", [(i, i + 1) for i in range(6)] + [(0, 7)])}
        engine = CoverageEngine(graphs, fragments=True)
        per_view = engine.network._estimated_view_bytes()
        engine.network.budget_bytes = 2 * per_view
        core_edges = [(i, i + 1) for i in range(6)]
        left = make_graph("CNCNCNCS", core_edges + [(0, 7)])
        right = make_graph("CNCNCNCS", core_edges + [(1, 7)])
        engine.register(graph_key(left), left)
        engine.register(graph_key(right), right)
        network = engine.network
        materialized = [
            network.fragment(fragment_key)
            for fragment_key in network.fragment_keys()
            if network.fragment(fragment_key).materialized
        ]
        assert len(materialized) == 2
        assert all(state.refcount == 2 for state in materialized)


# ----------------------------------------------------------------------
# toggles and wiring
# ----------------------------------------------------------------------
class TestToggle:
    def test_use_fragments_scoping_restores_flag_and_budget(self):
        assert not fragments_enabled()
        before = current_fragment_budget()
        with use_fragments(True, budget_bytes=123):
            assert fragments_enabled()
            assert current_fragment_budget() == 123
            with use_fragments(False):
                assert not fragments_enabled()
            assert fragments_enabled()
        assert not fragments_enabled()
        assert current_fragment_budget() == before == DEFAULT_FRAGMENT_BUDGET

    def test_engine_attaches_network_only_when_enabled(self):
        graphs = {0: make_graph("CO", [(0, 1)])}
        assert CoverageEngine(graphs).network is None
        with use_fragments(True):
            assert CoverageEngine(graphs).network is not None
        assert CoverageEngine(graphs, fragments=True).network is not None
        with use_fragments(True):
            assert CoverageEngine(graphs, fragments=False).network is None

    def test_execution_config_installs_toggle(self):
        assert not fragments_enabled()
        with ExecutionConfig(fragments=True).apply():
            assert fragments_enabled()
        assert not fragments_enabled()

    def test_discard_drops_orphan_fragments(self):
        pattern = make_graph("CNCNC", [(i, i + 1) for i in range(4)])
        engine = CoverageEngine(
            {0: make_graph("CNCNC", [(i, i + 1) for i in range(4)])},
            fragments=True,
        )
        key = graph_key(pattern)
        engine.register(key, pattern)
        assert engine.network.fragment_keys()
        engine.discard(key)
        assert engine.network.fragment_keys() == []
        assert not engine.network.tracked(key)


# ----------------------------------------------------------------------
# the differential wall
# ----------------------------------------------------------------------
class TestOracle:
    def test_fragments_oracle_is_registered(self):
        assert "fragments" in ORACLES
        oracle = get_oracle("fragments")
        assert oracle.name == "fragments"

    def test_permuted_twin_artifact_passes_through_fragment_path(self):
        """The PR-4 regression workload (permuted twin patterns + a
        delta insertion) replayed against the *fragments* oracle: the
        network-on engine must reproduce the fix, not resurrect the
        stale-pattern bug through its own verification path."""
        artifact = load_artifact(ARTIFACT)
        workload = workload_from_dict(artifact["workload"])
        assert get_oracle("fragments")(workload) is None
