"""Integration-level tests for the MIDAS maintainer (Algorithm 1)."""

import pytest

from repro.datasets import (
    aids_like,
    family_injection,
    random_deletions,
    random_insertions,
)
from repro.graph import BatchUpdate
from repro.midas import Midas, MidasConfig
from repro.patterns import PatternBudget, PatternSet, pattern_set_quality


@pytest.fixture(scope="module")
def config():
    return MidasConfig(
        budget=PatternBudget(3, 7, 8),
        sup_min=0.5,
        num_clusters=4,
        sample_cap=80,
        seed=3,
        epsilon=0.002,
    )


@pytest.fixture(scope="module")
def base_db():
    return aids_like(80, seed=9)


@pytest.fixture
def midas(base_db, config):
    return Midas.bootstrap(base_db, config)


class TestBootstrap:
    def test_initial_state(self, midas, base_db, config):
        assert 0 < len(midas.patterns) <= config.budget.gamma
        assert len(midas.database) == len(base_db)
        assert midas.index_pair is not None
        assert len(midas.clusters) > 0
        assert len(midas.csgs) == len(midas.clusters)

    def test_bootstrap_does_not_mutate_input(self, base_db, config):
        before = len(base_db)
        Midas.bootstrap(base_db, config)
        assert len(base_db) == before


class TestMinorModification:
    def test_small_batch_is_minor(self, midas):
        update = random_insertions(midas.database, 3, seed=1)
        report = midas.apply_update(update)
        assert not report.is_major
        assert report.swap_outcome is None
        assert report.num_swaps == 0

    def test_minor_still_maintains_structures(self, midas):
        patterns_before = [p.pattern_id for p in midas.patterns]
        update = random_insertions(midas.database, 3, seed=2)
        report = midas.apply_update(update)
        # Patterns untouched...
        assert [p.pattern_id for p in midas.patterns] == patterns_before
        # ...but clusters / database / FCT advanced.
        assert len(midas.database) == 80 + report.inserted_ids.__len__()
        for gid in report.inserted_ids:
            assert midas.clusters.cluster_of(gid) >= 0
        assert midas.fct_set.db_size == len(midas.database)


class TestMajorModification:
    def test_family_injection_is_major(self, midas):
        report = midas.apply_update(family_injection(30, seed=4))
        assert report.is_major
        assert report.candidates_generated >= 0
        assert report.swap_outcome is not None

    def test_progressive_gain(self, midas):
        stale = [p.graph for p in midas.patterns]
        midas.apply_update(family_injection(30, seed=4))
        stale_set = PatternSet()
        for graph in stale:
            stale_set.add(graph, "stale")
        q_stale = pattern_set_quality(stale_set, midas.oracle)
        q_new = pattern_set_quality(midas.patterns, midas.oracle)
        assert q_new["scov"] >= q_stale["scov"] - 1e-12
        assert q_new["div"] >= q_stale["div"] - 1e-12
        assert q_new["cog"] <= q_stale["cog"] + 1e-12
        assert q_new["lcov"] >= q_stale["lcov"] - 1e-12

    def test_gamma_preserved_across_updates(self, midas, config):
        gamma = len(midas.patterns)
        midas.apply_update(family_injection(30, seed=4))
        assert len(midas.patterns) == gamma

    def test_pattern_sizes_stay_in_budget(self, midas, config):
        midas.apply_update(family_injection(30, seed=4))
        for pattern in midas.patterns:
            assert config.budget.admits_size(pattern.num_edges)


class TestStructuralConsistency:
    def test_clusters_partition_database(self, midas):
        midas.apply_update(family_injection(25, seed=5))
        clustered = set()
        for cid in midas.clusters.cluster_ids():
            members = midas.clusters.members(cid)
            assert not (members & clustered)
            clustered |= members
        assert clustered == set(midas.database.ids())

    def test_csgs_match_clusters(self, midas):
        midas.apply_update(family_injection(25, seed=5))
        for cid in midas.clusters.cluster_ids():
            assert midas.csgs.summary(cid).member_ids == (
                midas.clusters.members(cid)
            )

    def test_deletion_batch(self, midas):
        update = random_deletions(midas.database, 15, seed=6)
        report = midas.apply_update(update)
        assert len(midas.database) == 80 - len(report.deleted_ids)
        for gid in report.deleted_ids:
            assert gid not in midas.database

    def test_mixed_batch(self, midas):
        from repro.datasets import mixed_update

        update = mixed_update(midas.database, 10, 10, seed=7)
        report = midas.apply_update(update)
        assert report.inserted_ids and report.deleted_ids
        # FCT pool still mirrors the database.
        assert midas.fct_set.db_size == len(midas.database)

    def test_sequential_updates(self, midas):
        for seed in range(3):
            update = random_insertions(midas.database, 8, seed=seed)
            midas.apply_update(update)
        assert midas.fct_set.db_size == len(midas.database)
        clustered = set()
        for cid in midas.clusters.cluster_ids():
            clustered |= midas.clusters.members(cid)
        assert clustered == set(midas.database.ids())

    def test_empty_update_rejected(self, midas):
        # Empty batches are rejected at the boundary (a no-op round
        # would silently skip index/sample maintenance callers expect).
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="empty batch"):
            midas.apply_update(BatchUpdate())

    def test_report_timings_populated(self, midas):
        report = midas.apply_update(family_injection(20, seed=8))
        assert report.pattern_maintenance_seconds > 0
        assert report.cluster_maintenance_seconds >= 0
        if report.is_major:
            assert report.pattern_generation_seconds >= 0


class TestSmallPatternTray:
    def test_tray_disabled_by_default(self, midas):
        assert midas.small_tray is None

    def test_tray_maintained_alongside(self, base_db, config):
        from dataclasses import replace

        tray_config = replace(config, tray_edges=3, tray_paths=2)
        midas = Midas.bootstrap(base_db, tray_config)
        assert midas.small_tray is not None
        assert midas.small_tray.db_size == len(base_db)
        midas.apply_update(family_injection(25, seed=10))
        assert midas.small_tray.db_size == len(midas.database)
        tray = midas.small_tray.refresh()
        assert len(tray) == 5
        # The tray matches rebuilding counters from scratch.
        from repro.midas import SmallPatternTray

        scratch = SmallPatternTray(
            dict(midas.database.items()), num_edges=3, num_paths=2
        )
        assert midas.small_tray.top_edges() == scratch.top_edges()
        assert midas.small_tray.top_paths() == scratch.top_paths()
