"""Property-based tests (hypothesis) for core invariants.

Strategies draw a seed and feed it to the deterministic generators of
``repro.check.fuzz`` (the same ones the differential fuzzer uses — one
source of random graphs, no private copies); properties cover the
substrate invariants everything else relies on:

* canonical certificates are isomorphism invariants,
* VF2 monomorphism is reflexive and respects subgraph construction,
* GED bounds sandwich the exact distance and satisfy metric-ish axioms,
* graphlet counting agrees with brute force,
* the sparse matrix behaves like a dict of dicts,
* mining supports are exact and anti-monotone.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.fuzz import random_labeled_graph, random_labeled_tree
from repro.check.workload import permuted_copy as permuted
from repro.ged import (
    ged_bipartite_upper_bound,
    ged_exact,
    ged_label_lower_bound,
    ged_tight_lower_bound,
)
from repro.graph import canonical_certificate
from repro.graphlets import count_graphlets, count_graphlets_bruteforce
from repro.index import SparseCountMatrix
from repro.isomorphism import contains, count_embeddings
from repro.trees import tree_certificate, canonical_tokens, tree_from_tokens

LABELS = "CNOS"

#: hypothesis explores the generators' seed space; the graphs themselves
#: come from repro.check.fuzz, exactly as in ``python -m repro check``.
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def labeled_graphs(max_vertices: int = 7):
    return SEEDS.map(
        lambda seed: random_labeled_graph(
            random.Random(seed), max_vertices=max_vertices
        )
    )


def labeled_trees(max_vertices: int = 8):
    return SEEDS.map(
        lambda seed: random_labeled_tree(
            random.Random(seed), max_vertices=max_vertices
        )
    )


class TestCanonicalProperties:
    @given(labeled_graphs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_certificate_permutation_invariant(self, graph, seed):
        assert canonical_certificate(graph) == canonical_certificate(
            permuted(graph, seed)
        )

    @given(labeled_trees(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_tree_certificate_permutation_invariant(self, tree, seed):
        assert tree_certificate(tree) == tree_certificate(permuted(tree, seed))

    @given(labeled_trees())
    @settings(max_examples=60, deadline=None)
    def test_tree_token_round_trip(self, tree):
        rebuilt = tree_from_tokens(canonical_tokens(tree))
        assert tree_certificate(rebuilt) == tree_certificate(tree)


class TestIsomorphismProperties:
    @given(labeled_graphs())
    @settings(max_examples=50, deadline=None)
    def test_self_containment(self, graph):
        assert contains(graph, graph)

    @given(labeled_graphs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_contains_permuted_self(self, graph, seed):
        assert contains(graph, permuted(graph, seed))

    @given(labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_edge_subgraph_contained(self, graph):
        edges = list(graph.edges())
        if not edges:
            return
        sub = graph.edge_subgraph(edges[: max(1, len(edges) // 2)])
        assert contains(graph, sub)

    @given(labeled_graphs())
    @settings(max_examples=30, deadline=None)
    def test_embedding_count_at_least_one_for_self(self, graph):
        assert count_embeddings(graph, graph, limit=4) >= 1


class TestGedProperties:
    @given(labeled_graphs(max_vertices=5), labeled_graphs(max_vertices=5))
    @settings(max_examples=40, deadline=None)
    def test_bounds_sandwich(self, g1, g2):
        exact = ged_exact(g1, g2)
        assert ged_label_lower_bound(g1, g2) <= exact
        assert ged_tight_lower_bound(g1, g2) <= exact
        assert exact <= ged_bipartite_upper_bound(g1, g2)

    @given(labeled_graphs(max_vertices=5))
    @settings(max_examples=30, deadline=None)
    def test_identity(self, graph):
        assert ged_exact(graph, graph.copy()) == 0
        assert ged_tight_lower_bound(graph, graph.copy()) == 0

    @given(
        labeled_graphs(max_vertices=5),
        labeled_graphs(max_vertices=5),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_isomorphic_pair_distance_zero(self, g1, g2, seed):
        twin = permuted(g1, seed)
        assert ged_exact(g1, twin) == 0
        _ = g2


class TestGraphletProperties:
    @given(labeled_graphs(max_vertices=8))
    @settings(max_examples=50, deadline=None)
    def test_fast_equals_bruteforce(self, graph):
        fast = count_graphlets(graph)
        slow = count_graphlets_bruteforce(graph)
        assert (fast == slow).all()

    @given(labeled_graphs(max_vertices=8))
    @settings(max_examples=50, deadline=None)
    def test_counts_nonnegative(self, graph):
        assert (count_graphlets(graph) >= 0).all()


class TestSparseMatrixProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 5),
                st.integers(0, 9),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_behaves_like_dict(self, operations):
        matrix = SparseCountMatrix()
        model: dict[tuple[int, int], int] = {}
        for row, col, value in operations:
            matrix.set(row, col, value)
            if value == 0:
                model.pop((row, col), None)
            else:
                model[(row, col)] = value
        for (row, col), value in model.items():
            assert matrix.get(row, col) == value
        assert matrix.nnz() == len(model)
        assert set(matrix.triplets()) == {
            (r, c, v) for (r, c), v in model.items()
        }


class TestMiningProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_support_antimonotone(self, seed):
        """Every mined tree's support is <= the support of each of its
        single edges (anti-monotonicity of transactional support)."""
        from repro.datasets import MoleculeGenerator
        from repro.graph import GraphDatabase
        from repro.isomorphism import covered_graphs
        from repro.trees import TreeMiner

        db = GraphDatabase(MoleculeGenerator(seed=seed).generate_many(8))
        graphs = dict(db.items())
        mined = TreeMiner(graphs, 0.25, max_edges=3).mine_frequent()
        for tree in mined:
            assert tree.cover == covered_graphs(db, tree.tree)
            for u, v in tree.tree.edges():
                edge = tree.tree.edge_subgraph([(u, v)])
                assert len(covered_graphs(db, edge)) >= tree.support_count
