"""Unit tests for repro.clustering.mccs."""

import pytest

from repro.clustering import mccs_edge_count, mccs_mapping, mccs_similarity
from repro.graph import LabeledGraph

from .conftest import make_graph


class TestMapping:
    def test_identical_graphs_full_mapping(self):
        g = make_graph("CONS", [(0, 1), (1, 2), (2, 3)])
        mapping = mccs_mapping(g, g.copy())
        assert len(mapping) == 4
        assert mccs_edge_count(g, g.copy()) == 3

    def test_empty_graphs(self):
        assert mccs_mapping(LabeledGraph(), LabeledGraph()) == {}
        assert mccs_edge_count(LabeledGraph(), make_graph("CO", [(0, 1)])) == 0

    def test_mapping_respects_labels(self):
        g1 = make_graph("CO", [(0, 1)])
        g2 = make_graph("CN", [(0, 1)])
        mapping = mccs_mapping(g1, g2)
        for u, v in mapping.items():
            assert g1.label(u) == g2.label(v)

    def test_mapping_is_injective(self):
        g1 = make_graph("CCC", [(0, 1), (1, 2)])
        g2 = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        mapping = mccs_mapping(g1, g2)
        assert len(set(mapping.values())) == len(mapping)

    def test_exact_on_unique_label_trees(self):
        g1 = make_graph("CONS", [(0, 1), (1, 2), (2, 3)])
        g2 = make_graph("CONSP", [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert mccs_edge_count(g1, g2) == 3  # entire g1 is common

    def test_disjoint_labels_no_common(self):
        g1 = make_graph("CC", [(0, 1)])
        g2 = make_graph("NN", [(0, 1)])
        assert mccs_edge_count(g1, g2) == 0


class TestSimilarity:
    def test_identical_similarity_one(self):
        g = make_graph("COCN", [(0, 1), (1, 2), (2, 3)])
        assert mccs_similarity(g, g.copy()) == pytest.approx(1.0)

    def test_range(self):
        g1 = make_graph("CCO", [(0, 1), (1, 2)])
        g2 = make_graph("CCN", [(0, 1), (1, 2)])
        value = mccs_similarity(g1, g2)
        assert 0.0 <= value <= 1.0

    def test_edgeless_graph(self):
        g1 = make_graph("C", [])
        g2 = make_graph("CC", [(0, 1)])
        assert mccs_similarity(g1, g2) == 0.0

    def test_symmetry_on_shared_core(self):
        core = [(0, 1), (1, 2), (2, 3), (3, 0)]
        g1 = make_graph("CCCC", core)
        g2 = make_graph("CCCCO", core + [(0, 4)])
        s12 = mccs_similarity(g1, g2)
        s21 = mccs_similarity(g2, g1)
        assert s12 == pytest.approx(s21)
        assert s12 == pytest.approx(1.0)  # g1 fully common

    def test_more_similar_pair_scores_higher(self):
        base = make_graph("CCON", [(0, 1), (1, 2), (1, 3)])
        near = make_graph("CCON", [(0, 1), (1, 2), (1, 3)])
        far = make_graph("SSSP", [(0, 1), (1, 2), (2, 3)])
        assert mccs_similarity(base, near) > mccs_similarity(base, far)
