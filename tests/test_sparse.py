"""Unit tests for repro.index.sparse."""

import pytest

from repro.index import SparseCountMatrix


@pytest.fixture
def matrix():
    m = SparseCountMatrix()
    m.set("f1", 0, 2)
    m.set("f1", 1, 1)
    m.set("f2", 1, 3)
    return m


class TestElementAccess:
    def test_get_set(self, matrix):
        assert matrix.get("f1", 0) == 2
        assert matrix.get("f1", 99) == 0
        assert matrix.get("nope", 0) == 0

    def test_set_zero_removes(self, matrix):
        matrix.set("f1", 0, 0)
        assert matrix.get("f1", 0) == 0
        assert 0 not in matrix.row("f1")

    def test_negative_rejected(self, matrix):
        with pytest.raises(ValueError):
            matrix.set("f1", 0, -1)

    def test_increment(self, matrix):
        assert matrix.increment("f1", 0) == 3
        assert matrix.increment("f3", 7, 5) == 5

    def test_increment_to_zero_removes(self, matrix):
        matrix.increment("f1", 1, -1)
        assert not matrix.row("f1").get(1)

    def test_discard_idempotent(self, matrix):
        matrix.discard("f1", 0)
        matrix.discard("f1", 0)
        assert matrix.get("f1", 0) == 0


class TestRowsAndColumns:
    def test_row_and_column_views(self, matrix):
        assert matrix.row("f1") == {0: 2, 1: 1}
        assert matrix.column(1) == {"f1": 1, "f2": 3}

    def test_views_are_copies(self, matrix):
        row = matrix.row("f1")
        row[0] = 999
        assert matrix.get("f1", 0) == 2

    def test_keys(self, matrix):
        assert matrix.row_keys() == ["f1", "f2"]
        assert matrix.column_keys() == [0, 1]

    def test_remove_row(self, matrix):
        matrix.remove_row("f1")
        assert not matrix.has_row("f1")
        assert matrix.column(0) == {}
        assert matrix.column(1) == {"f2": 3}

    def test_remove_column(self, matrix):
        matrix.remove_column(1)
        assert not matrix.has_column(1)
        assert matrix.row("f1") == {0: 2}
        assert not matrix.has_row("f2")  # became empty

    def test_remove_missing_is_noop(self, matrix):
        matrix.remove_row("ghost")
        matrix.remove_column(42)
        assert matrix.nnz() == 3


class TestAggregates:
    def test_nnz(self, matrix):
        assert matrix.nnz() == 3

    def test_triplets_match_entries(self, matrix):
        triplets = set(matrix.triplets())
        assert triplets == {("f1", 0, 2), ("f1", 1, 1), ("f2", 1, 3)}

    def test_memory_positive(self, matrix):
        assert matrix.memory_bytes() > 0

    def test_empty_matrix(self):
        m = SparseCountMatrix()
        assert m.nnz() == 0
        assert list(m.triplets()) == []
