"""Unit tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, SCALES, build_parser, main


class TestParser:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        for name in FIGURES:
            assert name in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bench_requires_target(self, capsys):
        assert main(["bench"]) == 2

    def test_bench_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--figure", "fig99"])

    def test_scales_defined(self):
        assert set(SCALES) == {"small", "medium", "large"}


class TestDatasetCommand:
    def test_writes_database(self, tmp_path, capsys):
        out = tmp_path / "db.json"
        code = main(
            [
                "dataset",
                "--profile",
                "emol",
                "--count",
                "12",
                "--seed",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        from repro.graph.io import read_database

        database = read_database(out)
        assert len(database) == 12


class TestBenchCommand:
    def test_runs_cheap_ablation(self, capsys):
        code = main(["bench", "--figure", "abl3", "--scale", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ablation 3" in out
        assert "completed in" in out
