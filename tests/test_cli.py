"""Unit tests for the command-line interface."""

import re

import pytest

from repro.cli import FIGURES, SCALES, build_parser, main


class TestParser:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        for name in FIGURES:
            assert name in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bench_requires_target(self, capsys):
        assert main(["bench"]) == 2

    def test_bench_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--figure", "fig99"])

    def test_scales_defined(self):
        assert set(SCALES) == {"small", "medium", "large"}


class TestExecutionFlagHelp:
    """Only the canonical ExecutionConfig spellings appear in --help;
    the pre-rename aliases keep parsing but stay hidden."""

    @pytest.fixture(scope="class")
    def demo_help(self):
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            with pytest.raises(SystemExit):
                main(["demo", "--help"])
        return buffer.getvalue()

    def test_canonical_flags_are_documented(self, demo_help):
        for flag in (
            "--deadline-ms",
            "--workers",
            "--cache",
            "--covindex",
            "--check",
            "--degrade",
        ):
            assert flag in demo_help

    def test_alias_spellings_are_hidden(self, demo_help):
        assert "--jobs" not in demo_help
        assert "--caching" not in demo_help
        # "--deadline" only ever appears as part of "--deadline-ms"
        assert re.search(r"--deadline(?!-ms)", demo_help) is None

    def test_aliases_still_parse_to_canonical_dests(self):
        args = build_parser().parse_args(
            ["demo", "--jobs", "4", "--caching", "on", "--deadline", "1500"]
        )
        assert args.workers == 4
        assert args.cache == "on"
        assert args.deadline_ms == 1500.0

    def test_canonical_defaults_survive_alias_registration(self):
        args = build_parser().parse_args(["demo"])
        assert args.workers == 1
        assert args.cache == "off"
        assert args.deadline_ms is None


class TestServeCommands:
    def test_serve_registered_with_defaults(self):
        args = build_parser().parse_args(["serve", "--smoke"])
        assert args.func.__name__ == "cmd_serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8373
        assert args.smoke is True

    def test_serve_bench_registered_with_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.func.__name__ == "cmd_serve_bench"
        assert args.duration == 5.0
        assert args.clients == 8
        assert args.out == "BENCH_serve.json"


class TestDatasetCommand:
    def test_writes_database(self, tmp_path, capsys):
        out = tmp_path / "db.json"
        code = main(
            [
                "dataset",
                "--profile",
                "emol",
                "--count",
                "12",
                "--seed",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        from repro.graph.io import read_database

        database = read_database(out)
        assert len(database) == 12


class TestBenchCommand:
    def test_runs_cheap_ablation(self, capsys):
        code = main(["bench", "--figure", "abl3", "--scale", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ablation 3" in out
        assert "completed in" in out
