"""Backend conformance for the :class:`repro.store.GraphStore` API.

Every test in the parametrized half runs identically against the
in-memory ``GraphDatabase`` (the reference) and the out-of-core
``SQLiteStore`` — the contract is whatever the reference does.  The
cross-backend half drives both through the same trajectory and demands
byte-identical results.  The file also carries the private-access lint:
nothing outside ``repro.graph`` / ``repro.store`` may poke another
object's ``_graphs`` / ``_next_id``.
"""

import ast
import copy
import pickle
from pathlib import Path

import pytest

from repro.covindex.index import CoverageIndex
from repro.graph import BatchUpdate, DatabaseError, GraphDatabase
from repro.graph.io import graph_to_dict
from repro.store import GraphStore, open_store
from repro.store.base import (
    STORE_SCHEMES,
    default_store_spec,
    use_default_store,
)
from repro.store.sqlite import SQLiteStore

from .conftest import make_graph

BACKENDS = ("memory", "sqlite")


def _make_store(backend: str, tmp_path: Path, name: str = "store.db"):
    if backend == "memory":
        return GraphDatabase()
    return SQLiteStore(tmp_path / name)


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    backend = _make_store(request.param, tmp_path)
    yield backend
    backend.close()


def _seed(store) -> list[int]:
    return [
        store.add(make_graph("CO", [(0, 1)])),
        store.add(make_graph("CN", [(0, 1)])),
        store.add(make_graph("CCO", [(0, 1), (1, 2)])),
    ]


class TestContainerConformance:
    def test_is_graph_store(self, store):
        assert isinstance(store, GraphStore)

    def test_empty(self, store):
        assert len(store) == 0
        assert store.ids() == []
        assert 0 not in store

    def test_add_assigns_sequential_ids(self, store):
        assert _seed(store) == [0, 1, 2]
        assert len(store) == 3
        assert all(gid in store for gid in (0, 1, 2))

    def test_iteration_is_insertion_order(self, store):
        _seed(store)
        store.remove(1)
        store.add(make_graph("CS", [(0, 1)]))
        assert list(store) == [0, 2, 3]
        assert [gid for gid, _ in store.items()] == [0, 2, 3]

    def test_getitem_missing_raises(self, store):
        with pytest.raises(DatabaseError, match="no graph with id 3"):
            store[3]

    def test_graph_names_assigned(self, store):
        store.add(make_graph("CO", [(0, 1)]))
        assert store[0].name == "G0"

    def test_graph_round_trips(self, store):
        graph = make_graph("COS", [(0, 1), (0, 2)])
        expected = graph_to_dict(graph)
        gid = store.add(graph)
        expected["name"] = f"G{gid}"
        assert graph_to_dict(store[gid]) == expected


class TestMutationConformance:
    def test_remove_returns_graph(self, store):
        _seed(store)
        removed = store.remove(1)
        assert removed.vertex_label_set() == {"C", "N"}
        assert 1 not in store
        with pytest.raises(DatabaseError):
            store.remove(1)

    def test_ids_never_reused(self, store):
        _seed(store)
        store.remove(2)
        assert store.add(make_graph("CS", [(0, 1)])) == 3

    def test_apply_batch(self, store):
        _seed(store)
        record = store.apply_batch(
            BatchUpdate.of(
                insertions=[make_graph("CP", [(0, 1)])], deletions=[0]
            )
        )
        assert record.inserted_ids == [3]
        assert record.deleted_ids == [0]
        assert store.ids() == [1, 2, 3]

    def test_apply_missing_deletion_is_atomic(self, store):
        _seed(store)
        update = BatchUpdate.of(
            insertions=[make_graph("CP", [(0, 1)])], deletions=[0, 99]
        )
        with pytest.raises(DatabaseError, match="cannot delete missing"):
            store.apply(update)
        assert store.ids() == [0, 1, 2]
        assert store.next_graph_id() == 3

    def test_updated_does_not_mutate(self, store):
        _seed(store)
        clone = store.updated(BatchUpdate.of(deletions=[0]))
        try:
            assert store.ids() == [0, 1, 2]
            assert clone.ids() == [1, 2]
        finally:
            clone.close()


class TestIdAllocation:
    def test_reserve_through(self, store):
        store.reserve_through(5)
        assert store.next_graph_id() == 5
        store.reserve_through(2)  # never moves backwards
        assert store.next_graph_id() == 5
        assert store.add(make_graph("CO", [(0, 1)])) == 5

    def test_ingest_preserves_ids(self, store):
        source = GraphDatabase()
        source.reserve_through(4)
        source.add(make_graph("CO", [(0, 1)]))
        source.add(make_graph("CN", [(0, 1)]))
        store.ingest(source)
        assert store.ids() == [4, 5]
        assert store.next_graph_id() == 6

    def test_ingest_non_monotonic_raises(self, store):
        store.reserve_through(10)
        with pytest.raises(DatabaseError, match="cannot ingest"):
            store.ingest({4: make_graph("CO", [(0, 1)])})


class TestStatsConformance:
    def test_stats_match_reference(self, store):
        _seed(store)
        reference = GraphDatabase()
        _seed(reference)
        assert store.total_vertices() == reference.total_vertices()
        assert store.total_edges() == reference.total_edges()
        assert (
            store.vertex_label_alphabet()
            == reference.vertex_label_alphabet()
        )
        assert (
            store.edge_label_document_frequency()
            == reference.edge_label_document_frequency()
        )
        assert store.summary() == reference.summary()

    def test_empty_summary(self, store):
        assert store.summary()["graphs"] == 0


class TestCopyAndPickle:
    def test_copy_is_independent(self, store):
        _seed(store)
        clone = store.copy()
        try:
            clone.add(make_graph("CS", [(0, 1)]))
            clone.remove(0)
            assert store.ids() == [0, 1, 2]
            assert clone.ids() == [1, 2, 3]
        finally:
            clone.close()

    def test_pickle_round_trip(self, store):
        _seed(store)
        restored = pickle.loads(pickle.dumps(store))
        try:
            assert restored.ids() == store.ids()
            assert restored.next_graph_id() == store.next_graph_id()
            for gid in store.ids():
                assert graph_to_dict(restored[gid]) == graph_to_dict(
                    store[gid]
                )
        finally:
            restored.close()


class TestRoundHooks:
    def test_commit_round_keeps_state(self, store):
        _seed(store)
        store.begin_round()
        store.apply(BatchUpdate.of(insertions=[make_graph("CS", [(0, 1)])]))
        store.commit_round()
        assert store.ids() == [0, 1, 2, 3]

    def test_hooks_are_reentrant_across_rounds(self, store):
        _seed(store)
        for _ in range(2):
            store.begin_round()
            store.commit_round()
        assert store.ids() == [0, 1, 2]


class TestCrossBackendIdentity:
    def test_identical_trajectories(self, tmp_path):
        stores = [
            _make_store(backend, tmp_path) for backend in BACKENDS
        ]
        try:
            records = []
            for backend in stores:
                _seed(backend)
                first = backend.apply(
                    BatchUpdate.of(
                        insertions=[make_graph("CP", [(0, 1)])],
                        deletions=[1],
                    )
                )
                second = backend.apply(
                    BatchUpdate.of(
                        insertions=[
                            make_graph("OO", [(0, 1)]),
                            make_graph("CCN", [(0, 1), (1, 2)]),
                        ],
                        deletions=[0, 3],
                    )
                )
                records.append(
                    (
                        first.inserted_ids,
                        first.deleted_ids,
                        second.inserted_ids,
                        second.deleted_ids,
                        backend.ids(),
                        backend.next_graph_id(),
                        [graph_to_dict(backend[g]) for g in backend.ids()],
                        backend.summary(),
                    )
                )
            assert records[0] == records[1]
        finally:
            for backend in stores:
                backend.close()

    def test_identical_error_taxonomy(self, tmp_path):
        messages = []
        for backend in BACKENDS:
            with _make_store(backend, tmp_path, f"{backend}.db") as s:
                _seed(s)
                for trigger in (
                    lambda: s[9],
                    lambda: s.remove(9),
                    lambda: s.apply(BatchUpdate.of(deletions=[1, 9])),
                ):
                    with pytest.raises(DatabaseError) as excinfo:
                        trigger()
                    messages.append(str(excinfo.value))
        half = len(messages) // 2
        assert messages[:half] == messages[half:]


class TestSQLiteSpecifics:
    def test_reopen_durability(self, tmp_path):
        path = tmp_path / "store.db"
        with SQLiteStore(path) as s:
            _seed(s)
            s.remove(1)
            expected = [graph_to_dict(s[g]) for g in s.ids()]
        with SQLiteStore(path) as reopened:
            assert reopened.ids() == [0, 2]
            assert reopened.next_graph_id() == 3
            assert [
                graph_to_dict(reopened[g]) for g in reopened.ids()
            ] == expected

    def test_coverage_index_matches_rebuild(self, tmp_path):
        with SQLiteStore(tmp_path / "store.db") as s:
            _seed(s)
            s.apply(
                BatchUpdate.of(
                    insertions=[make_graph("CS", [(0, 1)])], deletions=[1]
                )
            )
            assert s.coverage_index() == CoverageIndex.build(
                dict(s.items())
            )

    def test_verdict_persistence(self, tmp_path):
        path = tmp_path / "store.db"
        with SQLiteStore(path) as s:
            _seed(s)
            s.save_verdicts("pattern-key", 0b101, 0b111)
        with SQLiteStore(path) as reopened:
            assert reopened.verdict_keys() == ["pattern-key"]
            assert reopened.load_verdicts("pattern-key") == (0b101, 0b111)
            assert reopened.load_verdicts("absent") is None

    def test_rollback_round_restores_state(self, tmp_path):
        with SQLiteStore(tmp_path / "store.db") as s:
            _seed(s)
            s.begin_round()
            s.apply(
                BatchUpdate.of(
                    insertions=[make_graph("CS", [(0, 1)])], deletions=[0]
                )
            )
            s.rollback_round()
            assert s.ids() == [0, 1, 2]
            assert s.next_graph_id() == 3
            assert s.coverage_index() == CoverageIndex.build(
                dict(s.items())
            )

    def test_deepcopy_returns_self(self, tmp_path):
        with SQLiteStore(tmp_path / "store.db") as s:
            assert copy.deepcopy(s) is s

    def test_journal_crash_replay(self, tmp_path):
        path = tmp_path / "store.db"
        store = SQLiteStore(path)
        _seed(store)
        # Simulate a crash after the write-ahead record but before the
        # SQL commit: journal a submitted batch by hand, then drop the
        # connection without resolving it.
        graph = make_graph("CS", [(0, 1)])
        store._journal.append(
            {
                "type": "submitted",
                "update_id": store._update_seq + 1,
                "store_batch": {
                    "insertions": [graph_to_dict(graph)],
                    "deletions": [0],
                    "assigned_ids": [3],
                    "next_id_after": 4,
                    "deferred": False,
                },
            }
        )
        store._journal.sync()
        store._connection.close()
        with SQLiteStore(path) as reopened:
            assert reopened.ids() == [1, 2, 3]
            assert reopened.next_graph_id() == 4
            assert reopened.coverage_index() == CoverageIndex.build(
                dict(reopened.items())
            )

    def test_copy_refused_mid_round(self, tmp_path):
        with SQLiteStore(tmp_path / "store.db") as s:
            s.begin_round()
            with pytest.raises(DatabaseError):
                s.copy()
            s.rollback_round()


class TestOpenStore:
    def test_memory_specs(self):
        assert isinstance(open_store(), GraphDatabase)
        assert isinstance(open_store("memory"), GraphDatabase)

    def test_sqlite_specs(self, tmp_path):
        for spec in (
            f"sqlite:{tmp_path / 'a.db'}",
            str(tmp_path / "b.db"),
            str(tmp_path / "c.sqlite"),
        ):
            with open_store(spec) as s:
                assert isinstance(s, SQLiteStore)

    def test_passthrough_and_json(self, tmp_path):
        db = GraphDatabase()
        assert open_store(db) is db
        from repro.graph.io import write_database

        db.add(make_graph("CO", [(0, 1)]))
        dataset = tmp_path / "data.json"
        write_database(dataset, db)
        loaded = open_store(str(dataset))
        assert loaded.ids() == [0]

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unrecognised store spec"):
            open_store("cassandra:nope")

    def test_schemes_constant(self):
        assert STORE_SCHEMES == ("memory", "sqlite")

    def test_default_store_scope(self):
        assert default_store_spec() is None
        with use_default_store("sqlite::memory:"):
            assert default_store_spec() == "sqlite::memory:"
        assert default_store_spec() is None


# ----------------------------------------------------------------------
# the private-access lint
# ----------------------------------------------------------------------
#: Fields of the in-memory store that used to leak through the codebase.
PRIVATE_FIELDS = {"_graphs", "_next_id"}

#: Modules allowed to touch them: the owning layers, plus PatternSet's
#: own allocator (same-class access on a fresh clone in ``copy``).
ALLOWED = ("repro/graph/", "repro/store/", "repro/patterns/pattern.py")


def test_no_private_store_access_outside_storage_layer():
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    violations = []
    for path in sorted(src.rglob("*.py")):
        relative = path.relative_to(src.parent).as_posix()
        if any(allowed in relative for allowed in ALLOWED):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_FIELDS
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                )
            ):
                violations.append(f"{relative}:{node.lineno} .{node.attr}")
    assert not violations, (
        "private store fields accessed outside repro.graph/repro.store "
        f"(use the GraphStore API): {violations}"
    )
