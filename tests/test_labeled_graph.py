"""Unit tests for repro.graph.labeled_graph."""

import pytest

from repro.graph import GraphError, LabeledGraph, edge_key, normalize_edge_label

from .conftest import make_graph


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert len(g) == 0

    def test_add_vertex_and_edge(self):
        g = LabeledGraph()
        g.add_vertex(0, "C")
        g.add_vertex(1, "O")
        g.add_edge(0, 1)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_from_edges_keeps_isolated_vertices(self):
        g = LabeledGraph.from_edges({0: "C", 1: "O", 2: "N"}, [(0, 1)])
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_duplicate_vertex_same_label_is_noop(self):
        g = LabeledGraph()
        g.add_vertex(0, "C")
        g.add_vertex(0, "C")
        assert g.num_vertices == 1

    def test_duplicate_vertex_conflicting_label_raises(self):
        g = LabeledGraph()
        g.add_vertex(0, "C")
        with pytest.raises(GraphError):
            g.add_vertex(0, "O")

    def test_self_loop_rejected(self):
        g = LabeledGraph()
        g.add_vertex(0, "C")
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_edge_to_missing_vertex_rejected(self):
        g = LabeledGraph()
        g.add_vertex(0, "C")
        with pytest.raises(GraphError):
            g.add_edge(0, 99)

    def test_parallel_edge_is_noop(self):
        g = make_graph("CC", [(0, 1)])
        g.add_edge(1, 0)
        assert g.num_edges == 1


class TestMutation:
    def test_remove_edge(self):
        g = make_graph("CCC", [(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        g = make_graph("CC", [(0, 1)])
        with pytest.raises(GraphError):
            g.remove_edge(0, 2)

    def test_remove_vertex_removes_incident_edges(self):
        g = make_graph("CCC", [(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_vertex_raises(self):
        g = LabeledGraph()
        with pytest.raises(GraphError):
            g.remove_vertex(0)

    def test_copy_is_independent(self):
        g = make_graph("CC", [(0, 1)])
        clone = g.copy()
        clone.remove_edge(0, 1)
        assert g.num_edges == 1
        assert clone.num_edges == 0


class TestQueries:
    def test_size_is_edge_count(self):
        g = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        assert g.size == 3

    def test_edge_label_is_normalized(self):
        g = make_graph("OC", [(0, 1)])
        assert g.edge_label(0, 1) == ("C", "O")
        assert g.edge_label(1, 0) == ("C", "O")
        assert normalize_edge_label("O", "C") == ("C", "O")

    def test_edge_label_multiset(self):
        g = make_graph("COO", [(0, 1), (0, 2)])
        assert g.edge_label_multiset() == {("C", "O"): 2}

    def test_vertex_label_multiset(self):
        g = make_graph("CCO", [(0, 1), (1, 2)])
        assert g.vertex_label_multiset() == {"C": 2, "O": 1}

    def test_density_triangle(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_density_small_graphs(self):
        assert LabeledGraph().density() == 0.0
        g = make_graph("C", [])
        assert g.density() == 0.0

    def test_neighbors_missing_vertex_raises(self):
        g = LabeledGraph()
        with pytest.raises(GraphError):
            g.neighbors(5)

    def test_edges_reported_once(self):
        g = make_graph("CCC", [(0, 1), (1, 2), (0, 2)])
        assert len(list(g.edges())) == 3

    def test_edge_key_is_order_independent(self):
        assert edge_key(2, 1) == edge_key(1, 2)

    def test_edge_key_rejects_self_loop(self):
        with pytest.raises(GraphError):
            edge_key(1, 1)


class TestStructure:
    def test_subgraph_induced(self):
        g = make_graph("CCCC", [(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2

    def test_subgraph_missing_vertex_raises(self):
        g = make_graph("CC", [(0, 1)])
        with pytest.raises(GraphError):
            g.subgraph([0, 5])

    def test_edge_subgraph(self):
        g = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        sub = g.edge_subgraph([(0, 1), (1, 2)])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2

    def test_edge_subgraph_missing_edge_raises(self):
        g = make_graph("CC", [(0, 1)])
        with pytest.raises(GraphError):
            g.edge_subgraph([(0, 5)])

    def test_connected_components(self):
        g = LabeledGraph.from_edges(
            {0: "C", 1: "C", 2: "O", 3: "O"}, [(0, 1), (2, 3)]
        )
        components = g.connected_components()
        assert len(components) == 2
        assert {frozenset(c) for c in components} == {
            frozenset({0, 1}),
            frozenset({2, 3}),
        }

    def test_is_connected(self, triangle):
        assert triangle.is_connected()
        assert LabeledGraph().is_connected()  # vacuously

    def test_is_tree(self, path3, triangle):
        assert path3.is_tree()
        assert not triangle.is_tree()
        forest = LabeledGraph.from_edges(
            {0: "C", 1: "C", 2: "C", 3: "C"}, [(0, 1), (2, 3)]
        )
        assert not forest.is_tree()

    def test_relabeled_preserves_structure(self):
        g = LabeledGraph.from_edges(
            {"a": "C", "b": "O", "c": "N"}, [("a", "b"), ("b", "c")]
        )
        relabeled = g.relabeled()
        assert set(relabeled.vertices()) == {0, 1, 2}
        assert relabeled.num_edges == 2
        assert sorted(relabeled.labels().values()) == ["C", "N", "O"]

    def test_signature_isomorphism_invariant(self):
        g1 = make_graph("CON", [(0, 1), (1, 2)])
        g2 = LabeledGraph.from_edges(
            {7: "N", 8: "O", 9: "C"}, [(8, 9), (7, 8)]
        )
        assert g1.signature() == g2.signature()

    def test_signature_distinguishes_sizes(self, triangle, path3):
        assert triangle.signature() != path3.signature()
