"""Unit tests for repro.workload (queries, formulation, user model)."""

import random

import pytest

from repro.graph import BatchUpdate
from repro.isomorphism import contains
from repro.workload import (
    SimulatedUser,
    UserProfile,
    balanced_query_set,
    compare_step_reduction,
    edge_at_a_time_steps,
    edge_mode_result,
    evaluate_patterns,
    generate_queries,
    plan_formulation,
    random_connected_subgraph,
    reduction_ratio,
    run_user_study,
    study_query_sets,
)

from .conftest import make_graph


class TestQueryGeneration:
    def test_random_subgraph_is_connected(self, molecule_db):
        rng = random.Random(0)
        for graph in list(molecule_db.graphs())[:10]:
            query = random_connected_subgraph(graph, 5, rng)
            if query is not None:
                assert query.is_connected()
                assert query.num_edges == 5

    def test_subgraph_of_source(self, molecule_db):
        rng = random.Random(1)
        graph = next(molecule_db.graphs())
        query = random_connected_subgraph(graph, 4, rng)
        assert query is not None
        assert contains(graph, query)

    def test_too_large_returns_none(self):
        g = make_graph("CO", [(0, 1)])
        assert random_connected_subgraph(g, 5, random.Random(0)) is None

    def test_generate_queries_count_and_sizes(self, molecule_db):
        queries = generate_queries(
            dict(molecule_db.items()), 20, size_range=(3, 8), seed=2
        )
        assert len(queries) == 20
        for query in queries:
            assert 3 <= query.num_edges <= 8
            assert query.name.startswith("Q")

    def test_generate_queries_empty_graphs(self):
        assert generate_queries({}, 10) == []

    def test_balanced_query_set_draws_from_delta(self, molecule_db):
        from repro.datasets import family_injection

        update = family_injection(20, seed=3)
        record = molecule_db.apply(update)
        queries = balanced_query_set(
            molecule_db, record.inserted_ids, count=20, size_range=(3, 6), seed=1
        )
        assert len(queries) == 20
        # At least one query should contain the injected boron label.
        assert any("B" in q.vertex_label_set() for q in queries)

    def test_study_query_sets_structure(self, molecule_db):
        from repro.datasets import family_injection

        record = molecule_db.apply(family_injection(15, seed=4))
        sets = study_query_sets(
            molecule_db,
            record.inserted_ids,
            queries_per_set=5,
            size_range=(3, 8),
            seed=0,
        )
        assert set(sets) == {"Qs1", "Qs2", "Qs3"}
        assert all(len(v) == 5 for v in sets.values())
        # Qs3 comes entirely from the injected family graphs.
        new_graphs = [molecule_db[g] for g in record.inserted_ids]
        for query in sets["Qs3"]:
            assert any(contains(g, query) for g in new_graphs)

    def test_study_requires_delta(self, molecule_db):
        with pytest.raises(ValueError):
            study_query_sets(molecule_db, [], 5)


class TestFormulation:
    def test_edge_at_a_time(self, triangle):
        assert edge_at_a_time_steps(triangle) == 6

    def test_no_patterns_equals_edge_mode(self, triangle):
        plan = plan_formulation(triangle, [])
        assert plan.steps == edge_at_a_time_steps(triangle)
        assert not plan.used_patterns

    def test_full_pattern_match_single_step(self, triangle):
        plan = plan_formulation(triangle, [triangle.copy()])
        assert plan.steps == 1
        assert plan.num_pattern_uses == 1
        assert plan.vertices_added == 0 and plan.edges_added == 0

    def test_partial_pattern_plus_edges(self):
        query = make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
        pattern = make_graph("CCC", [(0, 1), (1, 2)])
        plan = plan_formulation(query, [pattern])
        # 1 drag + 1 vertex + 1 edge.
        assert plan.steps == 3

    def test_pattern_never_hurts(self, molecule_db):
        queries = generate_queries(
            dict(molecule_db.items()), 10, size_range=(4, 10), seed=5
        )
        pattern = make_graph("CCC", [(0, 1), (1, 2)])
        for query in queries:
            with_pattern = plan_formulation(query, [pattern]).steps
            without = edge_at_a_time_steps(query)
            assert with_pattern <= without

    def test_disjoint_embeddings(self):
        # Two disjoint C-C-C chains: the pattern is placed twice.
        query = make_graph(
            "CCCCCC", [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        )
        pattern = make_graph("CCC", [(0, 1), (1, 2)])
        plan = plan_formulation(query, [pattern])
        assert plan.num_pattern_uses == 2
        # 2 drags + 1 bridging edge.
        assert plan.steps == 3

    def test_edits_enable_near_matches(self):
        query = make_graph("CCC", [(0, 1), (1, 2)])
        pattern = make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])
        rigid = plan_formulation(query, [pattern], max_edits=0)
        flexible = plan_formulation(query, [pattern], max_edits=1)
        assert not rigid.used_patterns
        assert flexible.used_patterns
        assert flexible.num_deletions == 1
        assert flexible.steps == 2  # drag + delete

    def test_reduction_ratio(self):
        assert reduction_ratio(10, 5) == pytest.approx(0.5)
        assert reduction_ratio(10, 10) == 0.0
        assert reduction_ratio(0, 5) == 0.0
        assert reduction_ratio(5, 10) == pytest.approx(-1.0)


class TestUserModel:
    def test_latencies_deterministic_per_seed(self, triangle):
        triangle.name = "Qx"
        user = SimulatedUser(seed=1)
        a = user.formulate(triangle, [triangle.copy()])
        b = SimulatedUser(seed=1).formulate(triangle, [triangle.copy()])
        assert a.qft_seconds == pytest.approx(b.qft_seconds)
        assert a.vmt_seconds == pytest.approx(b.vmt_seconds)

    def test_vmt_zero_without_patterns(self, triangle):
        triangle.name = "Qy"
        outcome = SimulatedUser(seed=0).formulate(triangle, [])
        assert outcome.vmt_seconds == 0.0
        assert outcome.qft_seconds > 0

    def test_edge_mode_control(self, triangle):
        triangle.name = "Qz"
        outcome = SimulatedUser(seed=0).formulate_edge_at_a_time(triangle)
        assert outcome.steps == 6
        assert outcome.vmt_seconds == 0.0

    def test_noise_free_profile(self, triangle):
        triangle.name = "Qn"
        profile = UserProfile(noise_sigma=0.0)
        user = SimulatedUser(profile=profile, seed=0)
        outcome = user.formulate_edge_at_a_time(triangle)
        expected = 3 * profile.vertex_add + 3 * profile.edge_add
        assert outcome.qft_seconds == pytest.approx(expected)

    def test_pattern_mode_faster_for_big_query(self):
        chain = make_graph(
            "C" * 12, [(i, i + 1) for i in range(11)]
        )
        chain.name = "Qbig"
        pattern = make_graph("CCCCCC", [(i, i + 1) for i in range(5)])
        user = SimulatedUser(seed=2)
        with_patterns = user.formulate(chain, [pattern])
        without = user.formulate_edge_at_a_time(chain)
        assert with_patterns.qft_seconds < without.qft_seconds


class TestEvaluation:
    def test_evaluate_patterns_mp(self, molecule_db):
        queries = generate_queries(
            dict(molecule_db.items()), 15, size_range=(3, 8), seed=6
        )
        useless = [make_graph("PPP", [(0, 1), (1, 2)])]
        result = evaluate_patterns("useless", useless, queries)
        assert result.missed_percentage == 100.0
        useful = [make_graph("CCC", [(0, 1), (1, 2)])]
        result2 = evaluate_patterns("useful", useful, queries)
        assert result2.missed_percentage < 100.0

    def test_evaluate_empty_queries(self):
        result = evaluate_patterns("x", [], [])
        assert result.missed_percentage == 0.0

    def test_compare_step_reduction_sign(self, molecule_db):
        queries = generate_queries(
            dict(molecule_db.items()), 10, size_range=(3, 8), seed=7
        )
        good = [make_graph("CCC", [(0, 1), (1, 2)])]
        baseline = edge_mode_result(queries)
        subject = evaluate_patterns("good", good, queries)
        assert compare_step_reduction(baseline, subject) >= 0.0

    def test_run_user_study_shape(self, molecule_db):
        queries = generate_queries(
            dict(molecule_db.items()), 5, size_range=(3, 8), seed=8
        )
        study = run_user_study(
            {"a": [make_graph("CCC", [(0, 1), (1, 2)])], "b": []},
            queries,
            trials_per_query=2,
        )
        assert set(study) == {"a", "b"}
        for metrics in study.values():
            assert set(metrics) == {"qft", "steps", "vmt"}
        assert study["b"]["vmt"] == 0.0
