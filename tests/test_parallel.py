"""The deterministic kernel pool: identity, fallbacks, budgets, faults.

The contract under test (docs/PERFORMANCE.md): ``KernelPool.map`` is
byte-identical to the serial loop at every worker count and chunking,
the ambient budget keeps firing inside workers, and fault-injection
plans inherited over ``fork`` still trip at kernel sites.  Tests that
fan out to real processes construct pools with ``force=True`` (the pool
otherwise degrades to the serial path under pytest by design).
"""

from __future__ import annotations

import pytest

from repro.datasets import pubchem_like
from repro.exceptions import BudgetExhausted
from repro.obs import get_registry
from repro.parallel import (
    MIN_PARALLEL_ITEMS,
    KernelPool,
    current_pool,
    pairwise_ged_matrix,
    use_pool,
)
from repro.resilience import (
    Budget,
    Fault,
    FaultInjected,
    budget_check,
    current_budget,
    inject_faults,
    use_budget,
)

from .conftest import make_graph


def square_kernel(payload, chunk):
    """Toy kernel: payload is an offset, one squared value per item."""
    return [payload + item * item for item in chunk]


def short_kernel(payload, chunk):
    """A broken kernel that drops results (violates the contract)."""
    return [item for item in chunk][:-1]


def spending_kernel(payload, chunk):
    """Spends one budget state per item (exercises worker budgets)."""
    results = []
    for item in chunk:
        budget = current_budget()
        if budget is not None:
            budget.spend(1)
        budget_check("test.spending_kernel")
        results.append(item)
    return results


@pytest.fixture
def graphs():
    return [
        make_graph("COS", [(0, 1), (0, 2)]),
        make_graph("CON", [(0, 1), (0, 2)]),
        make_graph("CO", [(0, 1)]),
        make_graph("COO", [(0, 1), (0, 2)]),
        make_graph("CN", [(0, 1)]),
        make_graph("COOS", [(0, 1), (0, 2), (0, 3)]),
    ]


class TestSerialPath:
    def test_pool_falls_back_to_serial_under_pytest(self):
        pool = KernelPool(workers=4)
        assert not pool.is_parallel
        before = get_registry().counter("parallel.serial_fallbacks").value
        assert pool.map(square_kernel, [1, 2, 3], payload=10) == [11, 14, 19]
        after = get_registry().counter("parallel.serial_fallbacks").value
        assert after == before + 1

    def test_single_worker_pool_is_serial_without_fallback_counter(self):
        before = get_registry().counter("parallel.serial_fallbacks").value
        assert KernelPool(workers=1).map(square_kernel, [2], payload=0) == [4]
        assert (
            get_registry().counter("parallel.serial_fallbacks").value == before
        )

    def test_empty_items(self):
        assert KernelPool(workers=1).map(square_kernel, []) == []

    def test_result_length_is_validated(self):
        with pytest.raises(RuntimeError, match="short_kernel"):
            KernelPool(workers=1).map(short_kernel, [1, 2, 3])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KernelPool(workers=0)
        with pytest.raises(ValueError):
            KernelPool(workers=2, chunk_size=0)

    def test_worth_parallelizing_thresholds(self):
        serial = KernelPool(workers=1)
        assert not serial.worth_parallelizing(10_000)
        forced = KernelPool(workers=2, force=True)
        if forced.is_parallel:
            assert forced.worth_parallelizing(1)  # force bypasses the floor
        unforced_floor = MIN_PARALLEL_ITEMS
        assert unforced_floor >= 1

    def test_ambient_pool_default_and_override(self):
        assert current_pool().workers == 1
        pool = KernelPool(workers=3)
        with use_pool(pool):
            assert current_pool() is pool
        assert current_pool().workers == 1


needs_fork = pytest.mark.skipif(
    not KernelPool(workers=2, force=True).is_parallel,
    reason="fork start method unavailable",
)


@needs_fork
class TestParallelDeterminism:
    def test_map_matches_serial_at_every_worker_count(self):
        items = list(range(40))
        expected = square_kernel(7, items)
        for workers in (2, 4):
            with KernelPool(workers=workers, force=True) as pool:
                assert pool.map(square_kernel, items, payload=7) == expected

    def test_map_is_chunking_invariant(self):
        items = list(range(23))
        expected = square_kernel(0, items)
        for chunk_size in (1, 3, 23):
            with KernelPool(2, chunk_size=chunk_size, force=True) as pool:
                assert pool.map(square_kernel, items, payload=0) == expected

    def test_ged_matrix_identical_across_worker_counts(self, graphs):
        serial = pairwise_ged_matrix(graphs, method="tight_lower")
        assert len(serial) == len(graphs) * (len(graphs) - 1) // 2
        for workers in (2, 4):
            with KernelPool(workers, force=True) as pool:
                parallel = pairwise_ged_matrix(
                    graphs, method="tight_lower", pool=pool
                )
            assert parallel == serial

    def test_ged_matrix_on_generated_molecules(self):
        molecules = list(dict(pubchem_like(10, seed=3).items()).values())
        serial = pairwise_ged_matrix(molecules, method="lower")
        with KernelPool(2, force=True) as pool:
            assert (
                pairwise_ged_matrix(molecules, method="lower", pool=pool)
                == serial
            )

    def test_fanout_counters(self):
        registry = get_registry()
        fanouts = registry.counter("parallel.fanouts").value
        with KernelPool(2, force=True) as pool:
            pool.map(square_kernel, list(range(16)), payload=0)
        assert registry.counter("parallel.fanouts").value == fanouts + 1


@needs_fork
class TestWorkerBudgets:
    def test_state_budget_fires_inside_worker(self):
        # One oversized chunk: the worker's re-materialised budget sees
        # 5 remaining states and the kernel spends 20.
        budget = Budget(max_states=5)
        with use_budget(budget):
            with KernelPool(2, chunk_size=20, force=True) as pool:
                with pytest.raises(BudgetExhausted):
                    pool.map(spending_kernel, list(range(20)))

    def test_parent_spends_shrink_worker_allowance(self):
        budget = Budget(max_states=30)
        budget.spend(26)  # 4 left: workers inherit the remainder
        with use_budget(budget):
            with KernelPool(2, chunk_size=20, force=True) as pool:
                with pytest.raises(BudgetExhausted):
                    pool.map(spending_kernel, list(range(20)))

    def test_roomy_budget_passes_through(self):
        with use_budget(Budget(max_states=1000)):
            with KernelPool(2, force=True) as pool:
                assert pool.map(spending_kernel, list(range(16))) == list(
                    range(16)
                )

    def test_no_budget_means_unbounded(self):
        assert current_budget() is None
        with KernelPool(2, force=True) as pool:
            assert pool.map(spending_kernel, list(range(16))) == list(
                range(16)
            )


def tripping_kernel(payload, chunk):
    """Hits the ``test.parallel.site`` fault site once per item."""
    from repro.resilience import trip

    results = []
    for item in chunk:
        trip("test.parallel.site")
        results.append(item)
    return results


@needs_fork
class TestFaultsUnderPool:
    def test_fault_plan_fires_inside_forked_worker(self):
        plan = {"test.parallel.site": Fault(kind="error")}
        with inject_faults(plan):
            # The pool forks lazily on first map, so the workers inherit
            # the active plan and the fault trips worker-side.
            with KernelPool(2, force=True) as pool:
                with pytest.raises(FaultInjected):
                    pool.map(tripping_kernel, list(range(16)))

    def test_no_plan_no_fault(self):
        with KernelPool(2, force=True) as pool:
            assert pool.map(tripping_kernel, list(range(16))) == list(
                range(16)
            )


class TestPoolLifecycle:
    def test_shutdown_is_idempotent(self):
        pool = KernelPool(workers=2, force=True)
        if pool.is_parallel:
            pool.map(square_kernel, list(range(4)), payload=0)
        pool.shutdown()
        pool.shutdown()

    def test_context_manager_shuts_down(self):
        with KernelPool(workers=2, force=True) as pool:
            pass
        assert pool._executor is None
