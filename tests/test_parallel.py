"""The deterministic kernel pool: identity, fallbacks, budgets, faults.

The contract under test (docs/PERFORMANCE.md): ``KernelPool.map`` is
byte-identical to the serial loop at every worker count and chunking,
the ambient budget keeps firing inside workers, and fault-injection
plans inherited over ``fork`` still trip at kernel sites.  Tests that
fan out to real processes construct pools with ``force=True`` (the pool
otherwise degrades to the serial path under pytest by design).
"""

from __future__ import annotations

import warnings

import pytest

from repro.datasets import pubchem_like
from repro.exceptions import BudgetExhausted
from repro.obs import get_registry
from repro.parallel import (
    MIN_PARALLEL_ITEMS,
    KernelPool,
    contains_kernel,
    contains_view_kernel,
    current_pool,
    get_view,
    pairwise_ged_matrix,
    publish_view,
    resolve_view,
    retire_view,
    use_pool,
    view_epoch,
)
from repro.resilience import (
    Budget,
    Fault,
    FaultInjected,
    budget_check,
    current_budget,
    inject_faults,
    use_budget,
)

from .conftest import make_graph


def square_kernel(payload, chunk):
    """Toy kernel: payload is an offset, one squared value per item."""
    return [payload + item * item for item in chunk]


def short_kernel(payload, chunk):
    """A broken kernel that drops results (violates the contract)."""
    return [item for item in chunk][:-1]


def spending_kernel(payload, chunk):
    """Spends one budget state per item (exercises worker budgets)."""
    results = []
    for item in chunk:
        budget = current_budget()
        if budget is not None:
            budget.spend(1)
        budget_check("test.spending_kernel")
        results.append(item)
    return results


@pytest.fixture
def graphs():
    return [
        make_graph("COS", [(0, 1), (0, 2)]),
        make_graph("CON", [(0, 1), (0, 2)]),
        make_graph("CO", [(0, 1)]),
        make_graph("COO", [(0, 1), (0, 2)]),
        make_graph("CN", [(0, 1)]),
        make_graph("COOS", [(0, 1), (0, 2), (0, 3)]),
    ]


class TestSerialPath:
    def test_pool_falls_back_to_serial_under_pytest(self):
        pool = KernelPool(workers=4)
        assert not pool.is_parallel
        before = get_registry().counter("parallel.serial_fallbacks").value
        assert pool.map(square_kernel, [1, 2, 3], payload=10) == [11, 14, 19]
        after = get_registry().counter("parallel.serial_fallbacks").value
        assert after == before + 1

    def test_single_worker_pool_is_serial_without_fallback_counter(self):
        before = get_registry().counter("parallel.serial_fallbacks").value
        assert KernelPool(workers=1).map(square_kernel, [2], payload=0) == [4]
        assert (
            get_registry().counter("parallel.serial_fallbacks").value == before
        )

    def test_empty_items(self):
        assert KernelPool(workers=1).map(square_kernel, []) == []

    def test_result_length_is_validated(self):
        with pytest.raises(RuntimeError, match="short_kernel"):
            KernelPool(workers=1).map(short_kernel, [1, 2, 3])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KernelPool(workers=0)
        with pytest.raises(ValueError):
            KernelPool(workers=2, chunk_size=0)

    def test_worth_parallelizing_thresholds(self):
        serial = KernelPool(workers=1)
        assert not serial.worth_parallelizing(10_000)
        forced = KernelPool(workers=2, force=True)
        if forced.is_parallel:
            assert forced.worth_parallelizing(1)  # force bypasses the floor
        unforced_floor = MIN_PARALLEL_ITEMS
        assert unforced_floor >= 1

    def test_ambient_pool_default_and_override(self):
        assert current_pool().workers == 1
        pool = KernelPool(workers=3)
        with use_pool(pool):
            assert current_pool() is pool
        assert current_pool().workers == 1


needs_fork = pytest.mark.skipif(
    not KernelPool(workers=2, force=True).is_parallel,
    reason="fork start method unavailable",
)


@needs_fork
class TestParallelDeterminism:
    def test_map_matches_serial_at_every_worker_count(self):
        items = list(range(40))
        expected = square_kernel(7, items)
        for workers in (2, 4):
            with KernelPool(workers=workers, force=True) as pool:
                assert pool.map(square_kernel, items, payload=7) == expected

    def test_map_is_chunking_invariant(self):
        items = list(range(23))
        expected = square_kernel(0, items)
        for chunk_size in (1, 3, 23):
            with KernelPool(2, chunk_size=chunk_size, force=True) as pool:
                assert pool.map(square_kernel, items, payload=0) == expected

    def test_ged_matrix_identical_across_worker_counts(self, graphs):
        serial = pairwise_ged_matrix(graphs, method="tight_lower")
        assert len(serial) == len(graphs) * (len(graphs) - 1) // 2
        for workers in (2, 4):
            with KernelPool(workers, force=True) as pool:
                parallel = pairwise_ged_matrix(
                    graphs, method="tight_lower", pool=pool
                )
            assert parallel == serial

    def test_ged_matrix_on_generated_molecules(self):
        molecules = list(dict(pubchem_like(10, seed=3).items()).values())
        serial = pairwise_ged_matrix(molecules, method="lower")
        with KernelPool(2, force=True) as pool:
            assert (
                pairwise_ged_matrix(molecules, method="lower", pool=pool)
                == serial
            )

    def test_fanout_counters(self):
        registry = get_registry()
        fanouts = registry.counter("parallel.fanouts").value
        with KernelPool(2, force=True) as pool:
            pool.map(square_kernel, list(range(16)), payload=0)
        assert registry.counter("parallel.fanouts").value == fanouts + 1


@needs_fork
class TestWorkerBudgets:
    def test_state_budget_fires_inside_worker(self):
        # One oversized chunk: the worker's re-materialised budget sees
        # 5 remaining states and the kernel spends 20.
        budget = Budget(max_states=5)
        with use_budget(budget):
            with KernelPool(2, chunk_size=20, force=True) as pool:
                with pytest.raises(BudgetExhausted):
                    pool.map(spending_kernel, list(range(20)))

    def test_parent_spends_shrink_worker_allowance(self):
        budget = Budget(max_states=30)
        budget.spend(26)  # 4 left: workers inherit the remainder
        with use_budget(budget):
            with KernelPool(2, chunk_size=20, force=True) as pool:
                with pytest.raises(BudgetExhausted):
                    pool.map(spending_kernel, list(range(20)))

    def test_roomy_budget_passes_through(self):
        with use_budget(Budget(max_states=1000)):
            with KernelPool(2, force=True) as pool:
                assert pool.map(spending_kernel, list(range(16))) == list(
                    range(16)
                )

    def test_no_budget_means_unbounded(self):
        assert current_budget() is None
        with KernelPool(2, force=True) as pool:
            assert pool.map(spending_kernel, list(range(16))) == list(
                range(16)
            )


def tripping_kernel(payload, chunk):
    """Hits the ``test.parallel.site`` fault site once per item."""
    from repro.resilience import trip

    results = []
    for item in chunk:
        trip("test.parallel.site")
        results.append(item)
    return results


@needs_fork
class TestFaultsUnderPool:
    def test_fault_plan_fires_inside_forked_worker(self):
        plan = {"test.parallel.site": Fault(kind="error")}
        with inject_faults(plan):
            # The pool forks lazily on first map, so the workers inherit
            # the active plan and the fault trips worker-side.
            with KernelPool(2, force=True) as pool:
                with pytest.raises(FaultInjected):
                    pool.map(tripping_kernel, list(range(16)))

    def test_no_plan_no_fault(self):
        with KernelPool(2, force=True) as pool:
            assert pool.map(tripping_kernel, list(range(16))) == list(
                range(16)
            )


class TestPoolLifecycle:
    def test_shutdown_is_idempotent(self):
        pool = KernelPool(workers=2, force=True)
        if pool.is_parallel:
            pool.map(square_kernel, list(range(4)), payload=0)
        pool.shutdown()
        pool.shutdown()

    def test_context_manager_shuts_down(self):
        with KernelPool(workers=2, force=True) as pool:
            pass
        assert pool._executor is None


class TestNoForkDegradation:
    def test_no_fork_counts_and_warns_once(self, monkeypatch):
        """Platforms without ``fork``: serial degradation bumps
        ``parallel.fallback`` every time but warns exactly once."""
        import multiprocessing

        from repro.parallel import pool as pool_module

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        monkeypatch.setattr(pool_module, "_warned_no_fork", False)
        pool = KernelPool(workers=2, force=True)
        assert not pool.is_parallel
        registry = get_registry()
        before = registry.counter("parallel.fallback").value
        items = list(range(MIN_PARALLEL_ITEMS + 2))
        with pytest.warns(RuntimeWarning, match="fork"):
            assert pool.map(square_kernel, items, payload=3) == square_kernel(
                3, items
            )
        assert registry.counter("parallel.fallback").value == before + 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool.map(square_kernel, items, payload=3)
        assert registry.counter("parallel.fallback").value == before + 2

    def test_fork_platforms_never_touch_fallback_counter(self):
        registry = get_registry()
        before = registry.counter("parallel.fallback").value
        KernelPool(workers=4).map(square_kernel, [1, 2], payload=0)
        assert registry.counter("parallel.fallback").value == before


class TestHostViews:
    def test_resolve_view_validates_generation(self):
        view = publish_view({0: make_graph("C", [])})
        try:
            assert resolve_view(view.view_id, view.generation) is view
            with pytest.raises(RuntimeError, match="generation"):
                resolve_view(view.view_id, view.generation + 1)
        finally:
            retire_view(view.view_id)
        with pytest.raises(RuntimeError, match="not present"):
            resolve_view(view.view_id, view.generation)

    def test_republish_bumps_generation_and_epoch(self):
        view = publish_view({0: make_graph("C", [])})
        try:
            epoch = view_epoch()
            fresh = publish_view(
                {0: make_graph("N", [])}, view_id=view.view_id
            )
            assert fresh.view_id == view.view_id
            assert fresh.generation > view.generation
            assert view_epoch() == epoch + 1
            assert get_view(view.view_id) is fresh
        finally:
            retire_view(view.view_id)

    def test_retire_is_idempotent(self):
        view = publish_view({0: make_graph("C", [])})
        retire_view(view.view_id)
        retire_view(view.view_id)
        assert get_view(view.view_id) is None


@needs_fork
class TestPersistentViewWorkers:
    @pytest.fixture
    def hosts(self):
        return dict(pubchem_like(24, seed=5).items())

    def test_view_kernel_matches_legacy_and_ships_fewer_bytes(self, hosts):
        pattern = make_graph("CC", [(0, 1)])
        ids = sorted(hosts)
        registry = get_registry()
        view = publish_view(hosts)
        try:
            with KernelPool(2, force=True) as pool:
                before = registry.counter("parallel.bytes_pickled").value
                view_verdicts = pool.map(
                    contains_view_kernel,
                    [(graph_id, None) for graph_id in ids],
                    payload=(view.view_id, view.generation, pattern),
                )
                view_bytes = (
                    registry.counter("parallel.bytes_pickled").value - before
                )
                before = registry.counter("parallel.bytes_pickled").value
                legacy_verdicts = pool.map(
                    contains_kernel,
                    [hosts[graph_id] for graph_id in ids],
                    payload=pattern,
                )
                legacy_bytes = (
                    registry.counter("parallel.bytes_pickled").value - before
                )
        finally:
            retire_view(view.view_id)
        assert view_verdicts == legacy_verdicts
        assert 0 < view_bytes < legacy_bytes

    def test_workers_restart_once_per_republish(self, hosts):
        pattern = make_graph("CC", [(0, 1)])
        items = [(graph_id, None) for graph_id in sorted(hosts)]
        registry = get_registry()
        view = publish_view(hosts)
        try:
            with KernelPool(2, force=True) as pool:
                payload = (view.view_id, view.generation, pattern)
                first = pool.map(contains_view_kernel, items, payload=payload)
                restarts = registry.counter("parallel.worker_restarts").value
                # Same epoch: the executor is reused, no restart.
                assert (
                    pool.map(contains_view_kernel, items, payload=payload)
                    == first
                )
                assert (
                    registry.counter("parallel.worker_restarts").value
                    == restarts
                )
                view = publish_view(hosts, view_id=view.view_id)
                payload = (view.view_id, view.generation, pattern)
                assert (
                    pool.map(contains_view_kernel, items, payload=payload)
                    == first
                )
                assert (
                    registry.counter("parallel.worker_restarts").value
                    == restarts + 1
                )
        finally:
            retire_view(view.view_id)

    def test_stale_generation_fails_loudly_in_worker(self, hosts):
        pattern = make_graph("CC", [(0, 1)])
        items = [(graph_id, None) for graph_id in sorted(hosts)]
        view = publish_view(hosts)
        try:
            with KernelPool(2, force=True) as pool:
                stale_payload = (view.view_id, view.generation, pattern)
                view = publish_view(hosts, view_id=view.view_id)
                # Workers refork at the new epoch and see the new
                # generation; the stale task must raise, not answer.
                with pytest.raises(RuntimeError, match="generation"):
                    pool.map(
                        contains_view_kernel, items, payload=stale_payload
                    )
        finally:
            retire_view(view.view_id)

    def test_oracle_fanout_restarts_once_per_committed_batch(self):
        """End to end: CoverageOracle publishes its view once, a
        committed batch republishes it, and the next fan-out restarts
        the workers exactly once — with covers matching a fresh serial
        oracle over the final view."""
        from repro.datasets import aids_like
        from repro.patterns.metrics import CoverageOracle

        hosts = dict(aids_like(20, seed=11).items())
        pattern = make_graph("CC", [(0, 1)])
        oracle = CoverageOracle(hosts)
        registry = get_registry()
        with KernelPool(2, force=True) as pool, use_pool(pool):
            first = oracle.cover(pattern)
            restarts = registry.counter("parallel.worker_restarts").value
            extra = dict(aids_like(20, seed=12).items())
            added = {
                max(hosts) + 1 + i: graph
                for i, graph in enumerate(extra.values())
            }
            oracle.apply_update(added, [])
            second = oracle.cover(pattern)
            assert (
                registry.counter("parallel.worker_restarts").value
                == restarts + 1
            )
        final_view = dict(hosts)
        final_view.update(added)
        serial = CoverageOracle(final_view)
        assert second == serial.cover(pattern)
        assert first <= second
