"""Unit tests for repro.patterns (pattern set, budget, metrics)."""

import pytest

from repro.patterns import (
    CannedPattern,
    CoverageOracle,
    PatternBudget,
    PatternSet,
    cognitive_load,
    diversity,
    label_coverage,
    midas_pattern_score,
    pattern_set_quality,
)

from .conftest import make_graph


class TestCannedPattern:
    def test_connected_required(self):
        disconnected = make_graph("CCOO", [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            CannedPattern(0, disconnected)

    def test_key_assigned(self):
        pattern = CannedPattern(0, make_graph("CO", [(0, 1)]))
        assert pattern.key is not None


class TestPatternSet:
    def test_add_and_iterate(self):
        ps = PatternSet()
        first = ps.add(make_graph("CO", [(0, 1)]), "a")
        second = ps.add(make_graph("CN", [(0, 1)]), "b")
        assert len(ps) == 2
        assert [p.pattern_id for p in ps] == [first.pattern_id, second.pattern_id]

    def test_isomorphic_duplicate_rejected(self):
        ps = PatternSet()
        ps.add(make_graph("CO", [(0, 1)]))
        with pytest.raises(ValueError):
            ps.add(make_graph("OC", [(0, 1)]))

    def test_has_isomorphic(self):
        ps = PatternSet()
        ps.add(make_graph("COS", [(0, 1), (0, 2)]))
        assert ps.has_isomorphic(make_graph("SOC", [(2, 1), (2, 0)]))
        assert not ps.has_isomorphic(make_graph("CON", [(0, 1), (0, 2)]))

    def test_remove(self):
        ps = PatternSet()
        pattern = ps.add(make_graph("CO", [(0, 1)]))
        ps.remove(pattern.pattern_id)
        assert len(ps) == 0
        with pytest.raises(KeyError):
            ps.remove(pattern.pattern_id)

    def test_swap_replaces(self):
        ps = PatternSet()
        old = ps.add(make_graph("CO", [(0, 1)]))
        new = ps.swap(old.pattern_id, make_graph("CN", [(0, 1)]), "swapped")
        assert len(ps) == 1
        assert old.pattern_id not in ps
        assert new.pattern_id in ps
        assert ps.get(new.pattern_id).provenance == "swapped"

    def test_swap_rejects_duplicate_of_other(self):
        ps = PatternSet()
        a = ps.add(make_graph("CO", [(0, 1)]))
        ps.add(make_graph("CN", [(0, 1)]))
        with pytest.raises(ValueError):
            ps.swap(a.pattern_id, make_graph("NC", [(0, 1)]))

    def test_swap_missing_raises(self):
        ps = PatternSet()
        with pytest.raises(KeyError):
            ps.swap(0, make_graph("CO", [(0, 1)]))

    def test_copy_independent(self):
        ps = PatternSet()
        ps.add(make_graph("CO", [(0, 1)]))
        clone = ps.copy()
        clone.add(make_graph("CN", [(0, 1)]))
        assert len(ps) == 1
        assert len(clone) == 2

    def test_size_distribution(self):
        ps = PatternSet()
        ps.add(make_graph("COS", [(0, 1), (0, 2)]))
        ps.add(make_graph("CN", [(0, 1)]))
        assert ps.size_distribution() == [1, 2]


class TestBudget:
    def test_defaults_match_paper(self):
        budget = PatternBudget()
        assert (budget.eta_min, budget.eta_max, budget.gamma) == (3, 12, 30)

    def test_eta_min_must_exceed_two(self):
        with pytest.raises(ValueError):
            PatternBudget(eta_min=2)

    def test_eta_order(self):
        with pytest.raises(ValueError):
            PatternBudget(eta_min=5, eta_max=4)

    def test_per_size_cap(self):
        budget = PatternBudget(3, 12, 30)
        assert budget.per_size_cap == 3  # ceil(30 / 10)

    def test_size_quota_sums_to_gamma(self):
        budget = PatternBudget(3, 6, 10)
        quota = budget.size_quota()
        assert sum(quota.values()) == 10
        assert all(v <= budget.per_size_cap for v in quota.values())

    def test_admits_size(self):
        budget = PatternBudget(3, 5, 6)
        assert budget.admits_size(3)
        assert budget.admits_size(5)
        assert not budget.admits_size(6)


class TestMetrics:
    def test_cognitive_load_formula(self, triangle):
        # cog = |E| * density = 3 * 1.0
        assert cognitive_load(triangle) == pytest.approx(3.0)

    def test_cognitive_load_sparse_lower(self, triangle, path3):
        assert cognitive_load(path3) < cognitive_load(triangle)

    def test_diversity_min_distance(self):
        p = make_graph("CO", [(0, 1)])
        near = make_graph("CN", [(0, 1)])
        far = make_graph("SSSS", [(0, 1), (1, 2), (2, 3)])
        assert diversity(p, [near, far]) == diversity(p, [near])

    def test_diversity_no_others_infinite(self, triangle):
        assert diversity(triangle, []) == float("inf")

    def test_label_coverage(self, paper_db):
        graphs = dict(paper_db.items())
        assert label_coverage(make_graph("CO", [(0, 1)]), graphs) == (
            pytest.approx(8 / 9)
        )


class TestCoverageOracle:
    @pytest.fixture
    def oracle(self, paper_db):
        return CoverageOracle(dict(paper_db.items()))

    def test_cover_and_scov(self, oracle):
        p = make_graph("CO", [(0, 1)])
        assert oracle.cover(p) == frozenset({0, 1, 2, 3, 5, 6, 7, 8})
        assert oracle.scov(p) == pytest.approx(8 / 9)

    def test_cover_cached(self, oracle):
        p = make_graph("CO", [(0, 1)])
        oracle.cover(p)
        tests_after_first = oracle.isomorphism_tests
        oracle.cover(p)
        assert oracle.isomorphism_tests == tests_after_first

    def test_union_and_unique_cover(self, oracle):
        co = make_graph("CO", [(0, 1)])
        cn = make_graph("CN", [(0, 1)])
        union = oracle.union_cover([co, cn])
        assert union == oracle.cover(co) | oracle.cover(cn)
        unique_cn = oracle.unique_cover(cn, [co])
        assert unique_cn == oracle.cover(cn) - oracle.cover(co)

    def test_loss_and_benefit(self, oracle):
        co = make_graph("CO", [(0, 1)])
        cn = make_graph("CN", [(0, 1)])
        loss = oracle.loss_score(cn, [co])
        benefit = oracle.benefit_score(cn, [co])
        # With P = {co}: adding cn gains exactly its unique cover.
        assert loss == pytest.approx(benefit)

    def test_set_scov_monotone(self, oracle):
        co = make_graph("CO", [(0, 1)])
        cn = make_graph("CN", [(0, 1)])
        assert oracle.set_scov([co, cn]) >= oracle.set_scov([co])

    def test_graphs_with_edge_label(self, oracle):
        assert oracle.graphs_with_edge_label(("C", "N")) == {1, 4}

    def test_score_zero_for_uncovered(self, oracle):
        alien = make_graph("XYZ", [(0, 1), (1, 2)])
        assert midas_pattern_score(alien, [], oracle) == 0.0

    def test_pattern_set_quality_keys(self, oracle):
        ps = PatternSet()
        ps.add(make_graph("COS", [(0, 1), (0, 2)]))
        ps.add(make_graph("CON", [(0, 1), (0, 2)]))
        quality = pattern_set_quality(ps, oracle)
        assert set(quality) == {"scov", "lcov", "div", "cog", "score"}
        assert 0 <= quality["scov"] <= 1
        assert quality["cog"] > 0

    def test_quality_empty_set(self, oracle):
        assert pattern_set_quality(PatternSet(), oracle)["score"] == 0.0
