"""Unit tests for repro.datasets (generators, motifs, evolution)."""

import pytest

from repro.datasets import (
    MOTIFS,
    EvolutionScenario,
    MoleculeGenerator,
    MoleculeProfile,
    aids_like,
    emol_like,
    family_injection,
    make_molecule_database,
    mixed_update,
    motif,
    pubchem_like,
    random_deletions,
    random_insertions,
)
from repro.isomorphism import contains


class TestMotifs:
    def test_all_motifs_instantiable(self):
        for name, m in MOTIFS.items():
            graph = m.instantiate()
            assert graph.num_vertices == m.num_vertices, name
            assert graph.num_edges == len(m.edges), name

    def test_attachments_valid(self):
        for m in MOTIFS.values():
            for attachment in m.attachments:
                assert 0 <= attachment < m.num_vertices

    def test_boronic_motifs_present(self):
        assert "B" in motif("boronic_acid").labels
        assert "B" in motif("boronic_ester").labels

    def test_unknown_motif(self):
        with pytest.raises(KeyError):
            motif("unobtainium")


class TestGenerator:
    def test_deterministic(self):
        a = MoleculeGenerator(seed=4).generate_many(5)
        b = MoleculeGenerator(seed=4).generate_many(5)
        for g1, g2 in zip(a, b):
            assert g1.labels() == g2.labels()
            assert sorted(g1.edges()) == sorted(g2.edges())

    def test_molecules_connected(self):
        for molecule in MoleculeGenerator(seed=1).generate_many(20):
            assert molecule.is_connected()

    def test_profile_size_bounds(self):
        profile = MoleculeProfile(
            backbone_size=(3, 5),
            motifs_per_molecule=(0, 0),
            hydrogen_probability=0.0,
            ring_closure_probability=0.0,
        )
        for molecule in MoleculeGenerator(profile, seed=2).generate_many(10):
            assert 3 <= molecule.num_vertices <= 5
            assert molecule.is_tree()

    def test_carbon_dominates(self):
        db = make_molecule_database(30, seed=3)
        counts: dict[str, int] = {}
        for graph in db.graphs():
            for label in graph.labels().values():
                counts[label] = counts.get(label, 0) + 1
        assert counts["C"] == max(counts.values())

    def test_dataset_profiles_distinct(self):
        aids = aids_like(20, seed=1)
        emol = emol_like(20, seed=1)
        pubchem = pubchem_like(20, seed=1)
        assert emol.summary()["avg_vertices"] < aids.summary()["avg_vertices"]
        assert pubchem.summary()["graphs"] == 20


class TestEvolution:
    def test_random_insertions_size(self):
        db = aids_like(50, seed=2)
        update = random_insertions(db, 20, seed=1)
        assert update.num_insertions == 10
        assert update.num_deletions == 0

    def test_random_insertions_negative_percent(self):
        db = aids_like(10, seed=2)
        with pytest.raises(ValueError):
            random_insertions(db, -5)

    def test_random_deletions(self):
        db = aids_like(50, seed=2)
        update = random_deletions(db, 10, seed=1)
        assert update.num_deletions == 5
        assert set(update.deletions) <= set(db.ids())

    def test_random_deletions_bounds(self):
        db = aids_like(10, seed=2)
        with pytest.raises(ValueError):
            random_deletions(db, 150)

    def test_mixed_update(self):
        db = aids_like(40, seed=2)
        update = mixed_update(db, 10, 10, seed=1)
        assert update.num_insertions == 4
        assert update.num_deletions == 4

    def test_family_injection_contains_motif(self):
        update = family_injection(8, "boronic_ester", seed=5)
        fragment = motif("boronic_ester").instantiate()
        for molecule in update.insertions:
            assert contains(molecule, fragment)

    def test_family_injection_negative_count(self):
        with pytest.raises(ValueError):
            family_injection(-1)

    def test_scenario_accumulates(self):
        db = aids_like(30, seed=1)
        scenario = (
            EvolutionScenario(db, seed=1)
            .add_percent("grow", 20)
            .delete_percent("shrink", 10)
            .inject_family("family", 5)
        )
        assert [s.name for s in scenario.steps] == ["grow", "shrink", "family"]
        final = scenario.final_database
        assert len(final) == 30 + 6 - 4 + 5

    def test_scenario_does_not_mutate_input(self):
        db = aids_like(20, seed=1)
        EvolutionScenario(db, seed=1).add_percent("grow", 50)
        assert len(db) == 20
