"""Property-based tests for the maintenance-layer invariants.

hypothesis drives random pattern sets, candidate pools and update
sequences through the swap strategy, the CSG closure and the sampler
(graphs come from the shared ``repro.check.fuzz`` generators — the
same ones the differential fuzzer uses), asserting the guarantees the
paper proves:

* multi-scan swap never regresses scov/div/lcov and never raises cog;
* γ is invariant under swapping;
* every member graph stays subgraph-isomorphic to its cluster's CSG
  through arbitrary add/remove sequences;
* the lazy sampler respects its capacity and universe under churn.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.fuzz import random_connected_pattern
from repro.csg import SummaryGraph
from repro.graph import LabeledGraph
from repro.isomorphism import contains
from repro.midas import MultiScanSwapper
from repro.patterns import CoverageOracle, PatternSet, pattern_set_quality
from repro.utils import LazySampler

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def connected_patterns(min_edges: int = 2, max_edges: int = 5):
    """A random connected labelled graph grown edge by edge."""
    return SEEDS.map(
        lambda seed: random_connected_pattern(
            random.Random(seed), min_edges=min_edges, max_edges=max_edges
        )
    )


def host_graphs():
    return connected_patterns(min_edges=3, max_edges=10)


class TestSwapInvariants:
    @given(
        st.lists(connected_patterns(), min_size=2, max_size=4),
        st.lists(connected_patterns(), min_size=1, max_size=4),
        st.lists(host_graphs(), min_size=4, max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_progressive_gain_holds(self, initial, candidates, hosts):
        graphs = dict(enumerate(hosts))
        oracle = CoverageOracle(graphs)
        pattern_set = PatternSet()
        for graph in initial:
            try:
                pattern_set.add(graph, "init")
            except ValueError:
                pass  # isomorphic duplicates
        if len(pattern_set) == 0:
            return
        gamma = len(pattern_set)
        before = pattern_set_quality(pattern_set.copy(), oracle)
        swapper = MultiScanSwapper(oracle, kappa=0.1, lambda_=0.1)
        outcome = swapper.run(pattern_set, list(candidates))
        after = pattern_set_quality(pattern_set, oracle)
        assert len(pattern_set) == gamma
        assert after["scov"] >= before["scov"] - 1e-12
        if outcome.num_swaps:
            assert after["div"] >= before["div"] - 1e-12
            assert after["cog"] <= before["cog"] + 1e-12
            assert after["lcov"] >= before["lcov"] - 1e-12


class TestCsgInvariants:
    @given(
        st.lists(host_graphs(), min_size=1, max_size=6),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_members_always_contained(self, graphs, data):
        summary = SummaryGraph(0)
        members: dict[int, LabeledGraph] = {}
        for index, graph in enumerate(graphs):
            summary.add_graph(index, graph)
            members[index] = graph
        # Random removals.
        if members:
            victims = data.draw(
                st.lists(
                    st.sampled_from(sorted(members)),
                    unique=True,
                    max_size=len(members) - 1,
                )
            )
            for victim in victims:
                summary.remove_graph(victim)
                del members[victim]
        host = summary.as_labeled_graph()
        for graph in members.values():
            assert contains(host, graph)

    @given(st.lists(host_graphs(), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_edge_annotations_partition_members(self, graphs):
        summary = SummaryGraph(0)
        for index, graph in enumerate(graphs):
            summary.add_graph(index, graph)
        # Every annotated ID is a member, and each member annotates at
        # least one edge (members here always have >= 1 edge).
        seen: set[int] = set()
        for u, v in summary.edges():
            ids = summary.edge_graph_ids(u, v)
            assert ids <= summary.member_ids
            seen |= ids
        assert seen == summary.member_ids


class TestSamplerInvariants:
    @given(
        st.integers(1, 30),
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 200)), max_size=40
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_and_universe(self, max_size, operations):
        sampler = LazySampler(range(10), max_size=max_size, seed=1)
        alive = set(range(10))
        for is_add, value in operations:
            if is_add:
                sampler.add_ids([value + 1000])
                alive.add(value + 1000)
            elif alive:
                victim = sorted(alive)[value % len(alive)]
                sampler.remove_ids([victim])
                alive.discard(victim)
        assert sampler.sample_size <= max_size
        assert sampler.sample_ids <= alive
        assert sampler.universe_size == len(alive)
        if len(alive) <= max_size:
            # Below capacity the sample should not starve badly: every
            # removal only shrinks, but additions refill while room.
            assert sampler.sample_size >= 0
