"""End-to-end integration scenario: the whole system working together.

One module-scoped scenario (bootstrap → family batch → maintain) is
shared by all assertions so the expensive pipeline runs once; each test
then checks a different cross-cutting claim of the paper on the same
state.
"""

import pytest

from repro import Midas, MidasConfig, NoMaintainBaseline, PatternBudget
from repro.datasets import aids_like, family_injection
from repro.gui import VisualInterface
from repro.patterns import PatternSet, pattern_set_quality
from repro.workload import (
    balanced_query_set,
    compare_step_reduction,
    evaluate_patterns,
)


@pytest.fixture(scope="module")
def scenario():
    config = MidasConfig(
        budget=PatternBudget(3, 7, 10),
        sup_min=0.5,
        num_clusters=4,
        sample_cap=100,
        seed=13,
        epsilon=0.002,
    )
    base = aids_like(90, seed=13)
    midas = Midas.bootstrap(base, config)
    stale = NoMaintainBaseline(config, base.copy(), midas.patterns.copy())
    update = family_injection(35, seed=14)
    report = midas.apply_update(update)
    stale.apply_update(update)
    queries = balanced_query_set(
        midas.database,
        report.inserted_ids,
        count=60,
        size_range=(4, 16),
        seed=15,
    )
    return {
        "config": config,
        "midas": midas,
        "stale": stale,
        "report": report,
        "queries": queries,
    }


class TestEndToEnd:
    def test_family_batch_is_major(self, scenario):
        assert scenario["report"].is_major

    def test_midas_mp_not_worse(self, scenario):
        midas_eval = evaluate_patterns(
            "midas", scenario["midas"].pattern_graphs(), scenario["queries"]
        )
        stale_eval = evaluate_patterns(
            "stale", scenario["stale"].pattern_graphs(), scenario["queries"]
        )
        assert midas_eval.missed_percentage <= stale_eval.missed_percentage

    def test_mu_non_negative_vs_stale(self, scenario):
        midas_eval = evaluate_patterns(
            "midas", scenario["midas"].pattern_graphs(), scenario["queries"]
        )
        stale_eval = evaluate_patterns(
            "stale", scenario["stale"].pattern_graphs(), scenario["queries"]
        )
        assert compare_step_reduction(stale_eval, midas_eval) >= -1e-9

    def test_quality_dominates_stale(self, scenario):
        stale_set = PatternSet()
        for graph in scenario["stale"].pattern_graphs():
            stale_set.add(graph, "stale")
        oracle = scenario["midas"].oracle
        q_midas = pattern_set_quality(scenario["midas"].patterns, oracle)
        q_stale = pattern_set_quality(stale_set, oracle)
        assert q_midas["scov"] >= q_stale["scov"] - 1e-12
        assert q_midas["div"] >= q_stale["div"] - 1e-12
        assert q_midas["lcov"] >= q_stale["lcov"] - 1e-12
        assert q_midas["cog"] <= q_stale["cog"] + 1e-12

    def test_panel_formulates_queries_on_gui(self, scenario):
        interface = VisualInterface.with_patterns(
            scenario["midas"].patterns
        )
        for query in scenario["queries"][:10]:
            record = interface.formulate(query, max_edits=2)
            assert record.success
        summary = interface.session_summary()
        assert summary["success_rate"] == 1.0

    def test_indices_consistent_after_maintenance(self, scenario):
        """The maintained FCT-Index answers cover queries exactly."""
        midas = scenario["midas"]
        for feature in midas.fct_set.fcts():
            indexed = midas.index_pair.fct.graphs_with_feature(feature.key)
            assert indexed == feature.cover

    def test_sample_tracks_database(self, scenario):
        midas = scenario["midas"]
        assert midas.sampler.universe_size == len(midas.database)
        assert midas.sampler.sample_ids <= set(midas.database.ids())

    def test_budget_respected_after_maintenance(self, scenario):
        config = scenario["config"]
        for pattern in scenario["midas"].patterns:
            assert config.budget.admits_size(pattern.num_edges)
        assert len(scenario["midas"].patterns) <= config.budget.gamma
