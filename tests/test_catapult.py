"""Unit tests for repro.catapult (walks, candidates, selection, pipeline)."""

import random

import pytest

from repro.catapult import (
    CandidateGenerator,
    Catapult,
    CatapultConfig,
    CatapultPlusPlus,
    RandomWalker,
    cluster_coverage,
    csg_edge_weights,
    decay_weights,
    edge_label_document_frequency,
    grow_candidate,
)
from repro.csg import SummaryGraph, build_csg
from repro.graph import edge_key
from repro.patterns import PatternBudget

from .conftest import make_graph


@pytest.fixture
def summary(paper_db):
    graphs = dict(paper_db.items())
    return build_csg(0, list(graphs), graphs), graphs


class TestWeights:
    def test_document_frequency(self, paper_db):
        frequency = edge_label_document_frequency(dict(paper_db.items()))
        assert frequency[("C", "O")] == 8

    def test_weights_in_unit_interval(self, summary):
        csg, graphs = summary
        frequency = edge_label_document_frequency(graphs)
        weights = csg_edge_weights(csg, frequency, len(graphs))
        assert set(weights) == {edge_key(*e) for e in csg.edges()}
        assert all(0.0 <= w <= 1.0 for w in weights.values())

    def test_common_label_weighs_more(self, summary):
        csg, graphs = summary
        frequency = edge_label_document_frequency(graphs)
        weights = csg_edge_weights(csg, frequency, len(graphs))
        by_label: dict[tuple, float] = {}
        for (u, v), w in weights.items():
            by_label.setdefault(csg.edge_label(u, v), w)
        assert by_label[("C", "O")] > by_label[("C", "N")]

    def test_decay(self):
        weights = {(0, 1): 1.0, (1, 2): 1.0}
        decay_weights(weights, {(0, 1)}, decay=0.5)
        assert weights[(0, 1)] == pytest.approx(0.5)
        assert weights[(1, 2)] == 1.0

    def test_decay_invalid(self):
        with pytest.raises(ValueError):
            decay_weights({}, set(), decay=0.0)


class TestRandomWalker:
    def test_counts_cover_edges(self, summary):
        csg, graphs = summary
        frequency = edge_label_document_frequency(graphs)
        weights = csg_edge_weights(csg, frequency, len(graphs))
        walker = RandomWalker(csg, weights, random.Random(0))
        counts = walker.traversal_counts(num_walks=50, walk_length=8)
        assert set(counts) == {edge_key(*e) for e in csg.edges()}
        assert sum(counts.values()) > 0

    def test_empty_summary(self):
        walker = RandomWalker(SummaryGraph(0), {}, random.Random(0))
        assert walker.traversal_counts() == {}

    def test_deterministic_for_seed(self, summary):
        csg, graphs = summary
        frequency = edge_label_document_frequency(graphs)
        weights = csg_edge_weights(csg, frequency, len(graphs))
        c1 = RandomWalker(csg, weights, random.Random(7)).traversal_counts(30, 6)
        c2 = RandomWalker(csg, weights, random.Random(7)).traversal_counts(30, 6)
        assert c1 == c2


class TestGrowCandidate:
    def test_grows_to_target(self, summary):
        csg, _ = summary
        counts = {edge_key(*e): 1 for e in csg.edges()}
        seed = csg.edges()[0]
        grown = grow_candidate(csg, counts, seed, target_size=2)
        assert grown is not None
        edges, score = grown
        assert len(edges) == 2
        assert score >= 0

    def test_gate_vetoes_seed(self, summary):
        csg, _ = summary
        counts = {edge_key(*e): 1 for e in csg.edges()}
        seed = csg.edges()[0]
        assert grow_candidate(
            csg, counts, seed, 2, edge_gate=lambda label: False
        ) is None

    def test_stuck_growth_returns_none(self):
        csg = SummaryGraph(0)
        csg.add_graph(1, make_graph("CO", [(0, 1)]))
        counts = {edge_key(*e): 1 for e in csg.edges()}
        seed = csg.edges()[0]
        assert grow_candidate(csg, counts, seed, 5) is None


class TestCandidateGenerator:
    def test_candidates_per_size(self, summary):
        csg, graphs = summary
        budget = PatternBudget(3, 5, 9)
        generator = CandidateGenerator(graphs, budget, seed=0)
        candidates = generator.generate({0: csg})
        assert candidates
        sizes = {c.num_edges for c in candidates}
        assert sizes <= set(budget.sizes())
        for candidate in candidates:
            assert candidate.graph.is_connected()
            assert candidate.cluster_id == 0

    def test_gate_reduces_candidates(self, summary):
        csg, graphs = summary
        budget = PatternBudget(3, 5, 9)
        generator = CandidateGenerator(graphs, budget, seed=0)
        everything = generator.generate({0: csg})
        nothing = generator.generate({0: csg}, edge_gate=lambda label: False)
        assert len(nothing) == 0
        assert len(everything) > 0

    def test_priority_steers_generation(self, summary):
        """With a priority spike on a rare label, candidates containing
        that label appear; without it they do not."""
        csg, graphs = summary
        budget = PatternBudget(3, 4, 6)
        generator = CandidateGenerator(graphs, budget, seed=0)

        def favour_nitrogen(label):
            return 1.0 if "N" in label else 0.0

        unbiased = generator.generate({0: csg})
        biased = generator.generate({0: csg}, edge_priority=favour_nitrogen)
        biased_has_n = any(
            "N" in c.graph.vertex_label_set() for c in biased
        )
        assert biased_has_n
        # Unbiased generation on this CSG sticks to the dominant labels.
        assert sum(
            "N" in c.graph.vertex_label_set() for c in biased
        ) >= sum("N" in c.graph.vertex_label_set() for c in unbiased)

    def test_fcps_per_size_cap(self, summary):
        csg, graphs = summary
        budget = PatternBudget(3, 5, 9)
        generator = CandidateGenerator(
            graphs, budget, seed=0, fcps_per_size=1
        )
        candidates = generator.generate({0: csg})
        sizes = [c.num_edges for c in candidates]
        for size in set(sizes):
            assert sizes.count(size) <= 1


class TestClusterCoverage:
    def test_weighting(self, paper_db):
        graphs = dict(paper_db.items())
        csg_a = build_csg(0, [0, 3], graphs)   # S-C-O stars
        csg_b = build_csg(1, [4], graphs)      # C-N
        weights = {0: 0.7, 1: 0.3}
        pattern = make_graph("COS", [(0, 1), (0, 2)])
        assert cluster_coverage(pattern, {0: csg_a, 1: csg_b}, weights) == (
            pytest.approx(0.7)
        )


class TestPipelines:
    @pytest.fixture(scope="class")
    def config(self):
        return CatapultConfig(
            budget=PatternBudget(3, 6, 6),
            sup_min=0.5,
            num_clusters=3,
            sample_cap=40,
            seed=1,
        )

    def test_catapult_selects_patterns(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        assert 0 < len(result.patterns) <= 6
        for pattern in result.patterns:
            assert 3 <= pattern.num_edges <= 6
            assert pattern.graph.is_connected()
        assert result.index_pair is None
        assert result.total_seconds > 0

    def test_catapult_plusplus_builds_indices(self, molecule_db, config):
        result = CatapultPlusPlus(config).run(molecule_db)
        assert result.index_pair is not None
        assert len(result.patterns) > 0
        # TP columns synced with the selected patterns.
        for pattern_id in result.patterns.ids():
            assert pattern_id in result.patterns

    def test_per_size_cap_respected(self, molecule_db, config):
        result = Catapult(config).run(molecule_db)
        sizes = [p.num_edges for p in result.patterns]
        cap = config.budget.per_size_cap
        for size in set(sizes):
            assert sizes.count(size) <= cap

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CatapultConfig(sup_min=0.0)
        with pytest.raises(ValueError):
            CatapultConfig(num_clusters=0)
        with pytest.raises(ValueError):
            CatapultConfig(sample_cap=0)
