"""The maintenance → interface hand-off (Section 6.2's single update).

MIDAS swaps patterns on the backend, then the GUI panel is refreshed in
one update.  This test drives the full loop: bootstrap, evolve, refresh
the panel, and confirm users of the *refreshed* panel formulate the new
workload no worse than users of the stale one.
"""

import pytest

from repro import Midas, MidasConfig, PatternBudget
from repro.datasets import family_injection, pubchem_like
from repro.gui import VisualInterface
from repro.workload import balanced_query_set


@pytest.fixture(scope="module")
def evolved():
    config = MidasConfig(
        budget=PatternBudget(3, 7, 8),
        sup_min=0.5,
        num_clusters=4,
        sample_cap=90,
        seed=23,
        epsilon=0.002,
    )
    database = pubchem_like(90, seed=23)
    midas = Midas.bootstrap(database, config)
    stale_panel = midas.patterns.copy()
    report = midas.apply_update(family_injection(35, seed=24))
    queries = balanced_query_set(
        midas.database,
        report.inserted_ids,
        count=30,
        size_range=(4, 14),
        seed=25,
    )
    return midas, stale_panel, report, queries


class TestHandoff:
    def test_refresh_is_single_update(self, evolved):
        midas, stale_panel, _, _ = evolved
        interface = VisualInterface.with_patterns(stale_panel)
        gamma_before = interface.panel.gamma
        interface.refresh_patterns(midas.patterns)
        assert interface.panel.gamma == len(midas.patterns)
        assert interface.panel.gamma == gamma_before  # γ preserved

    def test_both_panels_formulate_everything(self, evolved):
        midas, stale_panel, _, queries = evolved
        fresh = VisualInterface.with_patterns(midas.patterns)
        stale = VisualInterface.with_patterns(stale_panel)
        for query in queries:
            assert fresh.formulate(query, max_edits=2).success
            assert stale.formulate(query, max_edits=2).success

    def test_fresh_panel_steps_not_worse(self, evolved):
        midas, stale_panel, _, queries = evolved
        fresh = VisualInterface.with_patterns(midas.patterns)
        stale = VisualInterface.with_patterns(stale_panel)
        fresh_steps = sum(
            fresh.formulate(q, max_edits=2).steps for q in queries
        )
        stale_steps = sum(
            stale.formulate(q, max_edits=2).steps for q in queries
        )
        # Maintenance must not make formulation harder overall.
        assert fresh_steps <= stale_steps * 1.02  # 2% tolerance band

    def test_sessions_recorded(self, evolved):
        midas, _, _, queries = evolved
        interface = VisualInterface.with_patterns(midas.patterns)
        for query in queries[:5]:
            interface.formulate(query, max_edits=2)
        summary = interface.session_summary()
        assert summary["sessions"] == 5
        assert summary["success_rate"] == 1.0
