"""The filter-then-verify coverage engine: soundness, delta, identity.

The load-bearing properties:

* **Filter soundness** — every posting-list key is a necessary condition
  for a monomorphism, so the candidate set always contains the true
  cover set; enabling the engine can never change a cover, only skip
  verifications.
* **Domain soundness** — VF2 seeded with the engine's vertex domains
  returns the same verdicts and embedding counts as unseeded VF2.
* **Incremental ≡ rebuild** — after any batch sequence the incrementally
  maintained index is structurally equal to one built from scratch.
* **Oracle identity** — maintenance trajectories with the engine on and
  off produce identical observable traces (the property test at the
  bottom mirrors the cache-identity test).
"""

from __future__ import annotations

import copy
import random

import pytest

from repro.covindex import (
    CoverageEngine,
    CoverageIndex,
    available_substrates,
    bits_of,
    count,
    covindex_enabled,
    current_substrate,
    graph_posting_keys,
    ids_of,
    make_ops,
    pattern_query_keys,
    resolve_substrate,
    set_covindex,
    use_covindex,
    use_substrate,
)
from repro.datasets import (
    aids_like,
    family_injection,
    mixed_update,
    random_deletions,
    random_insertions,
)
from repro.execution import ExecutionConfig
from repro.graph import BatchUpdate
from repro.cache import graph_key
from repro.isomorphism import contains, count_embeddings
from repro.midas import Midas, MidasConfig
from repro.patterns import CoverageOracle, PatternBudget
from repro.workload import generate_queries

from .conftest import make_graph


# ----------------------------------------------------------------------
# bitsets
# ----------------------------------------------------------------------
class TestBitset:
    def test_roundtrip(self):
        ids = {0, 3, 17, 64, 1000}
        bits = bits_of(ids)
        assert set(ids_of(bits)) == ids
        assert count(bits) == len(ids)

    def test_empty(self):
        assert bits_of([]) == 0
        assert list(ids_of(0)) == []
        assert count(0) == 0

    def test_ids_ascending(self):
        assert list(ids_of(bits_of([9, 2, 5]))) == [2, 5, 9]

    def test_set_algebra(self):
        a, b = bits_of({1, 2, 3}), bits_of({2, 3, 4})
        assert set(ids_of(a & b)) == {2, 3}
        assert set(ids_of(a | b)) == {1, 2, 3, 4}
        assert set(ids_of(a & ~b)) == {1}

    def test_sparse_high_ids(self):
        """ids_of skips zero runs instead of walking every bit position."""
        ids = {2, 100_000, 1_000_000}
        assert list(ids_of(bits_of(ids))) == sorted(ids)


# ----------------------------------------------------------------------
# the index: filter soundness and incremental maintenance
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def molecule_graphs():
    return dict(aids_like(40, seed=11).items())


@pytest.fixture(scope="module")
def query_patterns(molecule_graphs):
    return generate_queries(molecule_graphs, 10, size_range=(2, 6), seed=7)


class TestCoverageIndex:
    def test_pattern_keys_subset_of_own_graph_keys(self, molecule_graphs):
        """A graph always satisfies its own query keys (reflexivity)."""
        for graph in molecule_graphs.values():
            assert pattern_query_keys(graph) <= graph_posting_keys(graph)

    def test_filter_sound(self, molecule_graphs, query_patterns):
        """No true container is ever filtered out."""
        index = CoverageIndex.build(molecule_graphs)
        for pattern in query_patterns:
            truth = {
                gid
                for gid, graph in molecule_graphs.items()
                if contains(graph, pattern)
            }
            candidates = set(index.candidate_ids(pattern))
            assert truth <= candidates

    def test_filter_prunes_something(self, molecule_graphs):
        """A pattern with a label absent from most graphs gets pruned."""
        index = CoverageIndex.build(molecule_graphs)
        pattern = make_graph("CCl", [(0, 1)])
        assert len(index.candidate_ids(pattern)) < len(molecule_graphs)

    def test_unindexed_key_collapses_to_empty(self, molecule_graphs):
        index = CoverageIndex.build(molecule_graphs)
        pattern = make_graph("XY", [(0, 1)])  # labels not in the database
        assert index.candidate_ids(pattern) == []

    def test_domains_preserve_verdicts(
        self, molecule_graphs, query_patterns
    ):
        """Seeded VF2 must agree with unseeded VF2 on every pair."""
        index = CoverageIndex.build(molecule_graphs)
        for pattern in query_patterns[:5]:
            for gid, graph in molecule_graphs.items():
                domains = index.vertex_domains(pattern, gid, graph)
                assert contains(graph, pattern, domains=domains) == contains(
                    graph, pattern
                )

    def test_domains_preserve_counts(self, molecule_graphs, query_patterns):
        index = CoverageIndex.build(molecule_graphs)
        pattern = query_patterns[0]
        for gid in sorted(molecule_graphs)[:8]:
            graph = molecule_graphs[gid]
            # Count through matcher construction with domains by routing
            # the domain-restricted search past the same cap.
            from repro.isomorphism import VF2Matcher

            seeded = VF2Matcher(
                pattern,
                graph,
                domains=index.vertex_domains(pattern, gid, graph),
            ).count_matches(limit=64)
            assert seeded == count_embeddings(graph, pattern, limit=64)

    def test_add_remove_roundtrip(self, molecule_graphs):
        """add_graph then remove_graph restores the exact prior state."""
        index = CoverageIndex.build(molecule_graphs)
        before = index.snapshot()
        extra = make_graph("COSN", [(0, 1), (1, 2), (2, 3)])
        index.add_graph(999, extra)
        assert 999 in index
        index.remove_graph(999)
        assert index.snapshot() == before

    def test_incremental_equals_rebuild_random_batches(self):
        """Random add/remove sequences: maintained index == fresh build."""
        rng = random.Random(23)
        graphs = dict(aids_like(25, seed=4).items())
        index = CoverageIndex.build(graphs)
        next_id = max(graphs) + 1
        fresh_pool = dict(aids_like(30, seed=5).items())
        pool_iter = iter(sorted(fresh_pool))
        for _ in range(12):
            if graphs and rng.random() < 0.5:
                victim = rng.choice(sorted(graphs))
                del graphs[victim]
                index.remove_graph(victim)
            else:
                source = next(pool_iter, None)
                if source is None:
                    continue
                graphs[next_id] = fresh_pool[source]
                index.add_graph(next_id, fresh_pool[source])
                next_id += 1
            assert index == CoverageIndex.build(graphs)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class TestCoverageEngine:
    def test_cover_matches_direct_scan(
        self, molecule_graphs, query_patterns
    ):
        engine = CoverageEngine(molecule_graphs)
        for pattern in query_patterns:
            key = graph_key(pattern)
            engine.register(key, pattern)
            for gid in engine.pending(key):
                engine.commit(
                    key, gid, contains(molecule_graphs[gid], pattern)
                )
            truth = frozenset(
                gid
                for gid, graph in molecule_graphs.items()
                if contains(graph, pattern)
            )
            assert engine.cover_ids(key) == truth

    def test_pending_is_delta_after_update(self, molecule_graphs):
        """After a batch only unverified (new) graphs are pending."""
        engine = CoverageEngine(molecule_graphs)
        pattern = make_graph("CO", [(0, 1)])
        key = graph_key(pattern)
        engine.register(key, pattern)
        for gid in engine.pending(key):
            engine.commit(key, gid, contains(molecule_graphs[gid], pattern))
        assert engine.pending(key) == []
        added_graph = make_graph("CO", [(0, 1)])
        removed = sorted(molecule_graphs)[:2]
        engine.apply_update({5000: added_graph}, removed)
        pending = engine.pending(key)
        assert set(pending) <= {5000}
        for gid in pending:
            engine.commit(key, gid, True)
        assert 5000 in engine.cover_ids(key)
        assert not set(removed) & engine.cover_ids(key)

    def test_removed_graphs_leave_cover(self, molecule_graphs):
        engine = CoverageEngine(molecule_graphs)
        pattern = make_graph("CC", [(0, 1)])
        key = graph_key(pattern)
        engine.register(key, pattern)
        for gid in engine.pending(key):
            engine.commit(key, gid, contains(molecule_graphs[gid], pattern))
        covered = sorted(engine.cover_ids(key))
        assert covered
        engine.apply_update({}, covered[:1])
        assert covered[0] not in engine.cover_ids(key)

    def test_tracked_pattern_bound(self):
        from repro.covindex.engine import MAX_TRACKED_PATTERNS

        graphs = {0: make_graph("CO", [(0, 1)])}
        engine = CoverageEngine(graphs)
        for i in range(MAX_TRACKED_PATTERNS + 5):
            engine.register(("k", i), make_graph("CO", [(0, 1)]))
        assert (
            sum(engine.tracked(("k", i)) for i in range(MAX_TRACKED_PATTERNS + 5))
            == MAX_TRACKED_PATTERNS
        )

    def test_eviction_is_lru_not_fifo(self):
        """A queried pattern survives eviction pressure; an idle one
        registered later is evicted first (register alone is not recency)."""
        from repro.covindex.engine import MAX_TRACKED_PATTERNS

        graphs = {0: make_graph("CO", [(0, 1)])}
        engine = CoverageEngine(graphs)
        for i in range(MAX_TRACKED_PATTERNS):
            engine.register(("k", i), make_graph("CO", [(0, 1)]))
        engine.pending(("k", 0))  # touch the oldest registration
        engine.register(("k", MAX_TRACKED_PATTERNS), make_graph("CO", [(0, 1)]))
        assert engine.tracked(("k", 0))
        assert not engine.tracked(("k", 1))

    def test_replacing_added_graph_clears_stale_verdicts(self):
        """Re-adding an existing graph_id is remove+add: old match/seen
        bits must not survive into the replacement graph's verdict."""
        engine = CoverageEngine({0: make_graph("CO", [(0, 1)])})
        pattern = make_graph("CO", [(0, 1)])
        key = graph_key(pattern)
        engine.register(key, pattern)
        for gid in engine.pending(key):
            engine.commit(key, gid, True)
        assert engine.cover_ids(key) == {0}
        engine.apply_update({0: make_graph("NN", [(0, 1)])}, [])
        remaining = engine.pending(key)
        for gid in remaining:
            engine.commit(
                key, gid, contains(engine.graphs[gid], pattern)
            )
        assert 0 not in engine.cover_ids(key)

    def test_engine_is_deepcopyable(self, molecule_graphs):
        """Midas transactional rounds deep-copy the oracle (and with it
        the engine); the copy must be independent of the original."""
        engine = CoverageEngine(molecule_graphs)
        pattern = make_graph("CO", [(0, 1)])
        key = graph_key(pattern)
        engine.register(key, pattern)
        clone = copy.deepcopy(engine)
        clone.apply_update({}, sorted(molecule_graphs)[:3])
        assert len(engine) == len(molecule_graphs)
        assert len(clone) == len(molecule_graphs) - 3


# ----------------------------------------------------------------------
# the toggle
# ----------------------------------------------------------------------
class TestToggle:
    def test_default_off(self):
        assert not covindex_enabled()

    def test_use_covindex_scopes(self):
        assert not covindex_enabled()
        with use_covindex(True):
            assert covindex_enabled()
            with use_covindex(False):
                assert not covindex_enabled()
            assert covindex_enabled()
        assert not covindex_enabled()

    def test_set_covindex(self):
        set_covindex(True)
        try:
            assert covindex_enabled()
        finally:
            set_covindex(False)
        assert not covindex_enabled()

    def test_execution_config_installs_engine(self):
        with ExecutionConfig(covindex=True).apply():
            assert covindex_enabled()
        assert not covindex_enabled()

    def test_execution_config_default_is_additive(self):
        """covindex=False must not clear an enclosing enable."""
        with use_covindex(True):
            with ExecutionConfig().apply():
                assert covindex_enabled()


# ----------------------------------------------------------------------
# oracle integration
# ----------------------------------------------------------------------
class TestOracleEngine:
    def test_cover_identical_on_off(self, molecule_graphs, query_patterns):
        plain = CoverageOracle(molecule_graphs)
        with use_covindex(True):
            fast = CoverageOracle(molecule_graphs)
        assert fast.delta_capable and not plain.delta_capable
        for pattern in query_patterns:
            assert plain.cover(pattern) == fast.cover(pattern)

    def test_engine_skips_verifications(
        self, molecule_graphs, query_patterns
    ):
        plain = CoverageOracle(molecule_graphs)
        with use_covindex(True):
            fast = CoverageOracle(molecule_graphs)
        for pattern in query_patterns:
            plain.cover(pattern)
            fast.cover(pattern)
        assert fast.isomorphism_tests < plain.isomorphism_tests

    def test_oracle_staleness_regression(self, molecule_graphs):
        """Deleting a covered graph must drop scov (the memoised cover
        set was silently served stale before ``apply_update`` existed)."""
        oracle = CoverageOracle(molecule_graphs)
        pattern = make_graph("CC", [(0, 1)])
        covered = oracle.cover(pattern)
        assert covered
        scov_before = oracle.scov(pattern)
        victim = sorted(covered)[0]
        oracle.apply_update({}, [victim])
        assert victim not in oracle.cover(pattern)
        assert oracle.scov(pattern) < scov_before or (
            len(covered) == len(molecule_graphs)
        )
        assert victim not in oracle.graph_ids()

    def test_oracle_staleness_regression_with_engine(self, molecule_graphs):
        with use_covindex(True):
            oracle = CoverageOracle(molecule_graphs)
        pattern = make_graph("CC", [(0, 1)])
        covered = oracle.cover(pattern)
        victim = sorted(covered)[0]
        tests_before = oracle.isomorphism_tests
        oracle.apply_update({}, [victim])
        assert victim not in oracle.cover(pattern)
        # The delta path re-verifies nothing for a pure deletion.
        assert oracle.isomorphism_tests == tests_before

    def test_label_cover_not_stale_after_update(self, molecule_graphs):
        oracle = CoverageOracle(molecule_graphs)
        pattern = make_graph("CO", [(0, 1)])
        lcov_cover = oracle.label_cover(pattern)
        assert lcov_cover
        victim = sorted(lcov_cover)[0]
        oracle.apply_update({}, [victim])
        assert victim not in oracle.label_cover(pattern)

    def test_insertion_joins_cover_incrementally(self, molecule_graphs):
        with use_covindex(True):
            oracle = CoverageOracle(molecule_graphs)
        pattern = make_graph("CO", [(0, 1)])
        oracle.cover(pattern)
        newcomer = make_graph("CO", [(0, 1)])
        oracle.apply_update({7777: newcomer}, [])
        assert 7777 in oracle.cover(pattern)

    def test_permuted_isomorphic_pattern_after_update(self):
        """Isomorphic patterns share the canonical key but may permute
        vertex-ID→label assignments; verification must use the engine's
        stored pattern or the seeded domains exclude valid hosts
        (regression: false-negative containment on the delta path)."""
        pattern_a = make_graph("CO", [(0, 1)])  # vertex 0 is C
        pattern_b = make_graph("OC", [(0, 1)])  # vertex 0 is O
        assert graph_key(pattern_a) == graph_key(pattern_b)
        graphs = {0: make_graph("COS", [(0, 1), (1, 2)])}
        with use_covindex(True):
            oracle = CoverageOracle(graphs)
        assert oracle.cover(pattern_a) == {0}
        oracle.apply_update({1: make_graph("NCO", [(0, 1), (1, 2)])}, [])
        # Cover queried through the permuted twin must still see the
        # newly inserted host.
        assert oracle.cover(pattern_b) == {0, 1}
        plain = CoverageOracle(
            {0: graphs[0], 1: make_graph("NCO", [(0, 1), (1, 2)])}
        )
        assert oracle.cover(pattern_b) == plain.cover(pattern_b)

    def test_reregistration_refreshes_stored_pattern(self):
        """Re-registering a tracked key with a permuted twin replaces
        the stored pattern and recompiles its query: verdict bits
        survive (they are isomorphism-invariant) but :meth:`pattern` /
        :meth:`vertex_domains` must speak the vertex IDs of the latest
        registration (regression: the old code kept the first copy
        forever, so delta-path verification after a twin swap seeded
        VF2 with the wrong vertex-ID→label assignment)."""
        pattern_a = make_graph("CO", [(0, 1)])  # vertex 0 is C
        pattern_b = make_graph("OC", [(0, 1)])  # vertex 0 is O
        key = graph_key(pattern_a)
        assert key == graph_key(pattern_b)
        host = make_graph("COS", [(0, 1), (1, 2)])
        engine = CoverageEngine({0: host})
        engine.register(key, pattern_a)
        for gid in engine.pending(key):
            engine.commit(key, gid, contains(host, engine.pattern(key)))
        assert engine.cover_ids(key) == frozenset({0})
        engine.register(key, pattern_b)
        stored = engine.pattern(key)
        assert stored.labels() == pattern_b.labels()
        # Verdicts survived the refresh — nothing to re-verify ...
        assert engine.cover_ids(key) == frozenset({0})
        assert engine.pending(key) == []
        # ... and the compiled domains follow the new assignment:
        # pattern vertex 0 is O now, matching only host vertex 1.
        domains = engine.vertex_domains(key, 0)
        assert domains[0] == {1}
        assert domains[1] == {0}

    def test_reregistration_same_object_is_cheap_no_refresh(self):
        """Registering the identical copy again only touches recency —
        no recompile, no refresh counter bump."""
        from repro.obs import get_registry

        pattern = make_graph("CO", [(0, 1)])
        key = graph_key(pattern)
        engine = CoverageEngine({0: make_graph("CO", [(0, 1)])})
        engine.register(key, pattern)
        before = get_registry().counter("covindex.pattern_refreshes").value
        engine.register(key, make_graph("CO", [(0, 1)]))
        after = get_registry().counter("covindex.pattern_refreshes").value
        assert after == before


# ----------------------------------------------------------------------
# full-trajectory identity (mirrors the cache identity property test)
# ----------------------------------------------------------------------
def _maintenance_trace(covindex: bool, rounds: int = 3):
    """Bootstrap + *rounds* random updates; returns an observable trace.

    Both invocations draw the same update sequence from the same seeded
    generator, so any divergence between the engine-on and engine-off
    traces would prove the filter changed a result.
    """
    config = MidasConfig(
        budget=PatternBudget(3, 6, 8),
        num_clusters=3,
        sample_cap=50,
        seed=5,
        execution=ExecutionConfig(covindex=covindex),
    )
    midas = Midas.bootstrap(aids_like(30, seed=9), config)
    rng = random.Random(13)
    trace = []
    for _ in range(rounds):
        kind = rng.choice(("insert", "delete", "mixed", "family"))
        seed = rng.randrange(10_000)
        if kind == "insert":
            update = random_insertions(midas.database, 10, seed=seed)
        elif kind == "delete":
            update = random_deletions(midas.database, 8, seed=seed)
        elif kind == "mixed":
            update = mixed_update(midas.database, 8, 8, seed=seed)
        else:
            update = family_injection(10, seed=seed)
        report = midas.apply_update(update)
        trace.append(
            (
                kind,
                report.is_major,
                sorted(midas.database.ids()),
                sorted(graph_key(g) for g in midas.pattern_graphs()),
            )
        )
    return trace


class TestMaintenanceIdentity:
    def test_single_round_identical(self):
        config = MidasConfig(
            budget=PatternBudget(3, 6, 8),
            num_clusters=3,
            sample_cap=50,
            seed=5,
        )
        baseline = Midas.bootstrap(aids_like(25, seed=2), config)
        engine_cfg = MidasConfig(
            budget=PatternBudget(3, 6, 8),
            num_clusters=3,
            sample_cap=50,
            seed=5,
            execution=ExecutionConfig(covindex=True),
        )
        maintained = Midas.bootstrap(aids_like(25, seed=2), engine_cfg)
        update = BatchUpdate.of(
            insertions=[make_graph("COS", [(0, 1), (1, 2)])],
            deletions=[sorted(baseline.database.ids())[0]],
        )
        r1 = baseline.apply_update(update)
        r2 = maintained.apply_update(copy.deepcopy(update))
        assert r1.is_major == r2.is_major
        assert sorted(baseline.database.ids()) == sorted(
            maintained.database.ids()
        )
        assert sorted(
            graph_key(g) for g in baseline.pattern_graphs()
        ) == sorted(graph_key(g) for g in maintained.pattern_graphs())

    @pytest.mark.slow
    def test_maintenance_identical_with_engine(self):
        """Full rounds over random batches: engine on == engine off."""
        baseline = _maintenance_trace(covindex=False)
        with_engine = _maintenance_trace(covindex=True)
        assert with_engine == baseline


# ----------------------------------------------------------------------
# substrate equivalence (int reference vs numpy word arrays)
# ----------------------------------------------------------------------
numpy_available = "numpy" in available_substrates()
needs_numpy = pytest.mark.skipif(
    not numpy_available, reason="numpy substrate unavailable"
)


@needs_numpy
class TestSubstrateEquivalence:
    def test_ops_algebra_on_random_id_sets(self):
        """Property test: every BitsetOps operation agrees between
        substrates on random ID sets, including IDs above 64·k word
        boundaries and the empty/all-set edges."""
        rng = random.Random(41)
        int_ops = make_ops("int")
        np_ops = make_ops("numpy")
        universes = [
            [],
            [0],
            [63], [64], [127], [128],  # word boundaries
            list(range(200)),  # all-set prefix
        ]
        for _ in range(30):
            size = rng.randrange(0, 60)
            high = rng.choice((64, 130, 1000, 5000))
            universes.append(
                sorted(rng.sample(range(high), min(size, high)))
            )
        for ids_a in universes:
            ids_b = rng.sample(
                range(max(ids_a, default=0) + 70),
                min(len(ids_a) + 5, max(ids_a, default=0) + 70),
            )
            a_int, a_np = int_ops.from_ids(ids_a), np_ops.from_ids(ids_a)
            b_int, b_np = int_ops.from_ids(ids_b), np_ops.from_ids(ids_b)
            assert np_ops.to_int(a_np) == a_int
            assert np_ops.ids(a_np) == int_ops.ids(a_int) == sorted(
                set(ids_a)
            )
            assert np_ops.popcount(a_np) == int_ops.popcount(a_int)
            assert np_ops.is_empty(a_np) == int_ops.is_empty(a_int)
            for op in ("union", "intersect", "subtract"):
                got = np_ops.to_int(getattr(np_ops, op)(a_np, b_np))
                want = getattr(int_ops, op)(a_int, b_int)
                assert got == want, (op, ids_a, ids_b)
            probe = rng.randrange(0, 5000)
            assert np_ops.test(a_np, probe) == int_ops.test(a_int, probe)
            assert np_ops.to_int(
                np_ops.set_bit(np_ops.copy(a_np), probe)
            ) == int_ops.set_bit(a_int, probe)
            assert np_ops.to_int(
                np_ops.clear_bit(np_ops.copy(a_np), probe)
            ) == int_ops.clear_bit(a_int, probe)
            assert np_ops.to_int(
                np_ops.from_int(a_int)
            ) == a_int  # int round-trip

    def test_index_snapshots_identical(self, molecule_graphs):
        int_index = CoverageIndex.build(molecule_graphs, substrate="int")
        np_index = CoverageIndex.build(molecule_graphs, substrate="numpy")
        assert int_index.snapshot() == np_index.snapshot()
        assert int_index == np_index

    def test_candidates_identical(self, molecule_graphs, query_patterns):
        int_index = CoverageIndex.build(molecule_graphs, substrate="int")
        np_index = CoverageIndex.build(molecule_graphs, substrate="numpy")
        for pattern in query_patterns:
            assert int_index.candidate_ids(pattern) == np_index.candidate_ids(
                pattern
            )

    def test_incremental_maintenance_identical(self):
        """Random add/remove churn keeps the substrates in lock-step,
        including IDs crossing word boundaries."""
        rng = random.Random(77)
        graphs = dict(aids_like(20, seed=3).items())
        int_index = CoverageIndex.build(graphs, substrate="int")
        np_index = CoverageIndex.build(graphs, substrate="numpy")
        pool = dict(aids_like(25, seed=6).items())
        pool_iter = iter(sorted(pool))
        next_id = 60  # jump past the first word boundary quickly
        for _ in range(15):
            if graphs and rng.random() < 0.4:
                victim = rng.choice(sorted(graphs))
                del graphs[victim]
                int_index.remove_graph(victim)
                np_index.remove_graph(victim)
            else:
                source = next(pool_iter, None)
                if source is None:
                    continue
                graphs[next_id] = pool[source]
                int_index.add_graph(next_id, pool[source])
                np_index.add_graph(next_id, pool[source])
                next_id += rng.choice((1, 7, 63))
            assert int_index.snapshot() == np_index.snapshot()

    def test_engine_verdicts_identical(
        self, molecule_graphs, query_patterns
    ):
        """Both engines, same call sequence: identical exported verdicts."""
        engines = {
            sub: CoverageEngine(molecule_graphs, substrate=sub)
            for sub in ("int", "numpy")
        }
        for pattern in query_patterns[:5]:
            key = graph_key(pattern)
            covers = {}
            for sub, engine in engines.items():
                engine.register(key, pattern)
                for gid in engine.pending(key):
                    engine.commit(
                        key,
                        gid,
                        contains(molecule_graphs[gid], pattern),
                    )
                covers[sub] = engine.cover_ids(key)
            assert covers["int"] == covers["numpy"]
        assert (
            engines["int"].export_verdicts()
            == engines["numpy"].export_verdicts()
        )

    def test_sqlite_posting_roundtrip_across_substrates(
        self, molecule_graphs, tmp_path
    ):
        """Persisted postings are substrate-independent ints: a SQLite
        store written on any substrate reassembles the same index on
        both."""
        from repro.store.sqlite import SQLiteStore

        store = SQLiteStore(str(tmp_path / "postings.db"))
        try:
            store.ingest(molecule_graphs)
            persisted = store.coverage_index()
            for substrate in ("int", "numpy"):
                rebuilt = CoverageIndex.build(
                    molecule_graphs, substrate=substrate
                )
                assert rebuilt.snapshot() == persisted.snapshot()
        finally:
            store.close()

    def test_ambient_substrate_toggle(self):
        assert resolve_substrate(None) in ("int", "numpy")
        with use_substrate("int"):
            assert current_substrate() == "int"
            assert CoverageIndex.build({}).substrate == "int"
        with use_substrate("numpy"):
            assert CoverageIndex.build({}).substrate == "numpy"

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError):
            make_ops("bogus")
        with pytest.raises(ValueError):
            ExecutionConfig(substrate="bogus")
