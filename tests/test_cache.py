"""Canonical-form result caches: bounds, fidelity, invalidation, identity.

The load-bearing property (docs/PERFORMANCE.md): cache keys are
canonical-form certificates, so a hit is byte-identical to recomputing —
enabling the cache can never change a result, only skip work.  The
property test at the bottom drives full maintenance rounds over random
batch-update sequences with caching on and off and requires identical
traces.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache import (
    CacheManager,
    EmbeddingCache,
    GedCache,
    GraphletCache,
    LRUStore,
    cached_ged_value,
    caching_enabled,
    get_caches,
    graph_key,
    use_caching,
)
from repro.datasets import (
    aids_like,
    family_injection,
    mixed_update,
    random_deletions,
    random_insertions,
)
from repro.execution import ExecutionConfig
from repro.ged import ged
from repro.graph import BatchUpdate
from repro.midas import Midas, MidasConfig
from repro.obs import get_registry
from repro.patterns import PatternBudget
from repro.resilience import resilient_count, resilient_ged

from .conftest import make_graph


def counter(name: str) -> int:
    return get_registry().counter(name).value


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts and ends with empty process-wide caches."""
    get_caches().clear()
    yield
    get_caches().clear()


@pytest.fixture
def pair():
    return (
        make_graph("COS", [(0, 1), (0, 2)]),
        make_graph("CON", [(0, 1), (0, 2)]),
    )


class TestGraphKey:
    def test_isomorphic_graphs_share_a_key(self):
        first = make_graph("COS", [(0, 1), (0, 2)])
        relabeled = make_graph("SCO", [(1, 0), (1, 2)])
        assert graph_key(first) == graph_key(relabeled)

    def test_distinct_graphs_differ(self, pair):
        assert graph_key(pair[0]) != graph_key(pair[1])


class TestLRUStore:
    def test_bound_evicts_least_recently_used(self):
        store = LRUStore(
            "cache.ged.hits",
            "cache.ged.misses",
            "cache.ged.evictions",
            max_entries=3,
        )
        for key in "abc":
            store.put(key, key.upper())
        store.get("a")  # refresh: "b" is now the oldest
        evictions = counter("cache.ged.evictions")
        store.put("d", "D")
        assert counter("cache.ged.evictions") == evictions + 1
        assert len(store) == 3
        assert "b" not in store
        assert store.peek("a") == "A"

    def test_hit_and_miss_counters(self):
        store = LRUStore(
            "cache.embed.hits", "cache.embed.misses", "cache.embed.evictions"
        )
        hits, misses = counter("cache.embed.hits"), counter("cache.embed.misses")
        assert store.get("nope") is None
        store.put("k", 1)
        assert store.get("k") == 1
        assert counter("cache.embed.hits") == hits + 1
        assert counter("cache.embed.misses") == misses + 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            LRUStore("a", "b", "c", max_entries=0)


class TestGedCacheFidelity:
    def test_round_trip(self, pair):
        cache = GedCache()
        cache.put(*pair, "beam", 3, fidelity="beam")
        assert cache.get(*pair, "beam") == (3, "beam")
        # symmetric: the key sorts the certificate pair
        assert cache.get(pair[1], pair[0], "beam") == (3, "beam")

    def test_methods_do_not_collide(self, pair):
        cache = GedCache()
        cache.put(*pair, "lower", 1, fidelity="lower")
        assert cache.get(*pair, "beam") is None

    def test_upgrades_never_downgrade(self, pair):
        cache = GedCache()
        cache.put(*pair, "exact", 4, fidelity="tight_lower")
        cache.put(*pair, "exact", 3, fidelity="exact")  # upgrade sticks
        assert cache.get(*pair, "exact") == (3, "exact")
        cache.put(*pair, "exact", 9, fidelity="bipartite")  # refused
        assert cache.get(*pair, "exact") == (3, "exact")

    def test_resilient_ged_serves_only_full_fidelity(self, pair):
        with use_caching(True):
            get_caches().ged.put(*pair, "beam", 999, fidelity="tight_lower")
            result = resilient_ged(*pair, method="beam")
            # the degraded entry is ignored and the real value computed
            assert result.value == ged(*pair, method="beam")
            assert result.fidelity == "beam"
            # ...which upgrades the entry in place
            assert get_caches().ged.get(*pair, "beam") == (result.value, "beam")

    def test_resilient_ged_hit_is_identical_to_recompute(self, pair):
        plain = resilient_ged(*pair, method="bipartite")
        with use_caching(True):
            first = resilient_ged(*pair, method="bipartite")
            hits = counter("cache.ged.hits")
            second = resilient_ged(*pair, method="bipartite")
            assert counter("cache.ged.hits") == hits + 1
        assert plain.value == first.value == second.value

    def test_cached_ged_value_matches_plain_ged(self, pair):
        expected = ged(*pair, method="tight_lower")
        assert cached_ged_value(*pair, "tight_lower") == expected  # cache off
        with use_caching(True):
            assert cached_ged_value(*pair, "tight_lower") == expected
            assert cached_ged_value(*pair, "tight_lower") == expected


class TestEmbeddingCache:
    def test_contains_round_trip(self, pair, triangle):
        cache = EmbeddingCache()
        cache.put_contains(pair[0], triangle, False)
        assert cache.get_contains(pair[0], triangle) is False
        assert cache.get_contains(pair[1], triangle) is None

    def test_count_fidelity_upgrade_only(self, pair, triangle):
        cache = EmbeddingCache()
        cache.put_count(pair[0], triangle, None, 2, fidelity="capped")
        cache.put_count(pair[0], triangle, None, 5, fidelity="full")
        assert cache.get_count(pair[0], triangle, None) == (5, "full")
        cache.put_count(pair[0], triangle, None, 1, fidelity="capped")
        assert cache.get_count(pair[0], triangle, None) == (5, "full")

    def test_limits_are_part_of_the_key(self, pair, triangle):
        cache = EmbeddingCache()
        cache.put_count(pair[0], triangle, 10, 7, fidelity="full")
        assert cache.get_count(pair[0], triangle, None) is None

    def test_resilient_count_serves_full_only(self, path3, triangle):
        with use_caching(True):
            first = resilient_count(path3, triangle)
            assert first.fidelity == "full"
            second = resilient_count(path3, triangle)
            assert second == first

    def test_invalidate_ids_evicts_bound_entries(self, pair, triangle):
        cache = EmbeddingCache()
        cache.put_contains(pair[0], triangle, True)
        cache.put_count(pair[0], triangle, None, 3, fidelity="full")
        cache.bind(7, triangle)
        assert cache.invalidate_ids([7]) == 2
        assert cache.get_contains(pair[0], triangle) is None
        assert cache.invalidate_ids([7]) == 0  # idempotent


class TestGraphletCache:
    def test_round_trip_returns_copies(self, triangle):
        cache = GraphletCache()
        counts = np.arange(4, dtype=np.float64)
        cache.put(triangle, counts, graph_id=3)
        out = cache.get(triangle)
        assert np.array_equal(out, counts)
        out[0] = 99.0
        assert cache.get(triangle)[0] == 0.0  # the stored vector is safe

    def test_invalidate_by_bound_id(self, triangle):
        cache = GraphletCache()
        cache.put(triangle, np.ones(2), graph_id=3)
        assert cache.invalidate_ids([3]) == 1
        assert cache.get(triangle) is None


class TestCacheManager:
    def test_invalidate_every_batch_shape(self, pair, triangle):
        manager = CacheManager()

        def prime():
            manager.clear()
            manager.embeddings.put_contains(pair[0], triangle, True)
            manager.embeddings.bind(42, triangle)
            manager.graphlets.put(triangle, np.ones(2), graph_id=42)

        # insert-only: fresh IDs have no entries, nothing to evict
        prime()
        assert manager.invalidate(inserted_ids=(100, 101)) == 0
        assert manager.embeddings.get_contains(pair[0], triangle) is True
        # delete-only: exactly the bound entries go
        prime()
        assert manager.invalidate(deleted_ids=(42,)) == 2
        assert manager.embeddings.get_contains(pair[0], triangle) is None
        # mixed: inserted IDs are ignored, deleted IDs evict
        prime()
        assert manager.invalidate(inserted_ids=(100,), deleted_ids=(42,)) == 2
        # deleting an unbound ID is a no-op
        prime()
        assert manager.invalidate(deleted_ids=(777,)) == 0

    def test_invalidation_counter(self):
        before = counter("cache.invalidations")
        CacheManager().invalidate(deleted_ids=(1,))
        assert counter("cache.invalidations") == before + 1

    def test_stats(self, pair, triangle):
        manager = CacheManager()
        manager.graphlets.put(triangle, np.ones(2))
        stats = manager.stats()
        assert stats["graphlet_entries"] == 1
        assert stats["ged_entries"] == 0


class TestAmbientToggle:
    def test_off_by_default_and_restored(self):
        assert not caching_enabled()
        with use_caching(True):
            assert caching_enabled()
            with use_caching(False):
                assert not caching_enabled()
            assert caching_enabled()
        assert not caching_enabled()


# ----------------------------------------------------------------------
# property test: random BatchUpdate sequences, cache on vs off
# ----------------------------------------------------------------------
def _maintenance_trace(cache: bool, rounds: int = 3):
    """Bootstrap + *rounds* random updates; returns an observable trace.

    Both invocations draw the same update sequence from the same seeded
    generator, so any divergence between the cache-on and cache-off
    traces would prove a stale cached value was observed.
    """
    get_caches().clear()
    config = MidasConfig(
        budget=PatternBudget(3, 6, 8),
        num_clusters=3,
        sample_cap=50,
        seed=5,
        execution=ExecutionConfig(cache=cache),
    )
    midas = Midas.bootstrap(aids_like(30, seed=9), config)
    rng = random.Random(13)
    trace = []
    for _ in range(rounds):
        kind = rng.choice(("insert", "delete", "mixed", "family"))
        seed = rng.randrange(10_000)
        if kind == "insert":
            update = random_insertions(midas.database, 10, seed=seed)
        elif kind == "delete":
            update = random_deletions(midas.database, 8, seed=seed)
        elif kind == "mixed":
            update = mixed_update(midas.database, 8, 8, seed=seed)
        else:
            update = family_injection(10, seed=seed)
        report = midas.apply_update(update)
        trace.append(
            (
                kind,
                report.is_major,
                sorted(midas.database.ids()),
                sorted(graph_key(g) for g in midas.pattern_graphs()),
            )
        )
    return trace


class TestCacheNeverChangesResults:
    @pytest.mark.slow
    def test_random_batch_sequences_cache_on_equals_cache_off(self):
        baseline = _maintenance_trace(cache=False)
        cached = _maintenance_trace(cache=True)
        assert cached == baseline
