"""Unit tests for repro.midas.query_log (Section 3.5 extension)."""

import pytest

from repro.midas import LogWeightedSwapper, QueryLog
from repro.patterns import CoverageOracle, PatternSet

from .conftest import make_graph


class TestQueryLog:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)

    def test_fifo_bounded(self):
        log = QueryLog(capacity=3)
        for i in range(5):
            query = make_graph("CC", [(0, 1)])
            query.name = f"Q{i}"
            log.record(query)
        assert len(log) == 3
        assert [q.name for q in log.queries()] == ["Q2", "Q3", "Q4"]

    def test_usage_fraction(self):
        log = QueryLog()
        log.record(make_graph("CCO", [(0, 1), (1, 2)]))
        log.record(make_graph("CNN", [(0, 1), (1, 2)]))
        cc = make_graph("CC", [(0, 1)])
        assert log.usage_fraction(cc) == pytest.approx(0.5)
        assert log.usage_fraction(make_graph("SS", [(0, 1)])) == 0.0

    def test_empty_log_fraction_zero(self):
        assert QueryLog().usage_fraction(make_graph("CC", [(0, 1)])) == 0.0

    def test_pattern_weight_smoothing(self):
        log = QueryLog()
        log.record(make_graph("CCO", [(0, 1), (1, 2)]))
        cc = make_graph("CC", [(0, 1)])
        assert log.pattern_weight(cc) == pytest.approx(2.0)  # 1 + 1.0
        with pytest.raises(ValueError):
            log.pattern_weight(cc, smoothing=-1)


class TestLogWeightedSwapper:
    def test_logged_pattern_protected(self, paper_db):
        """A displayed pattern heavily used in the log is shielded from
        being swapped out even when a slightly better-scoring candidate
        arrives."""
        oracle = CoverageOracle(dict(paper_db.items()))
        protected = make_graph("CON", [(0, 1), (0, 2)])
        filler = make_graph("CSS", [(0, 1), (0, 2)])
        pattern_set = PatternSet()
        pattern_set.add(protected, "p")
        pattern_set.add(filler, "p")
        candidate = make_graph("COO", [(0, 1), (0, 2)])

        log = QueryLog()
        for _ in range(10):
            log.record(make_graph("CONC", [(0, 1), (0, 2), (1, 3)]))

        swapper = LogWeightedSwapper(
            oracle, log, kappa=0.0, lambda_=0.0
        )
        outcome = swapper.run(pattern_set, [candidate])
        # The filler (unlogged, zero coverage) is the victim, never the
        # heavily used N-C-O pattern.
        assert pattern_set.has_isomorphic(protected)
        if outcome.num_swaps:
            assert not pattern_set.has_isomorphic(filler)

    def test_weight_cached(self, paper_db):
        oracle = CoverageOracle(dict(paper_db.items()))
        log = QueryLog()
        log.record(make_graph("CCO", [(0, 1), (1, 2)]))
        swapper = LogWeightedSwapper(oracle, log)
        pattern = make_graph("CC", [(0, 1)])
        first = swapper._weight(pattern)
        log.record(make_graph("SSS", [(0, 1), (1, 2)]))  # would change it
        assert swapper._weight(pattern) == first  # cached


class TestSerialization:
    def test_pattern_set_round_trip(self, tmp_path):
        from repro.patterns import read_pattern_set, write_pattern_set

        patterns = PatternSet()
        patterns.add(make_graph("COS", [(0, 1), (0, 2)]), "catapult")
        patterns.add(make_graph("CN", [(0, 1)]), "midas")
        patterns.remove(patterns.ids()[0])  # create an ID gap
        patterns.add(make_graph("CCC", [(0, 1), (1, 2)]), "midas")
        path = tmp_path / "panel.json"
        write_pattern_set(path, patterns)
        restored = read_pattern_set(path)
        assert restored.ids() == patterns.ids()
        for pattern_id in patterns.ids():
            assert restored.get(pattern_id).provenance == (
                patterns.get(pattern_id).provenance
            )
            assert restored.get(pattern_id).key == (
                patterns.get(pattern_id).key
            )

    def test_bad_format_rejected(self):
        from repro.graph.io import FormatError
        from repro.patterns import loads_pattern_set

        with pytest.raises(FormatError):
            loads_pattern_set('{"format": "other", "patterns": []}')
