"""Unit tests for repro.midas.detector and repro.midas.config."""

import pytest

from repro.midas import MidasConfig, ModificationDetector, ModificationType
from repro.patterns import PatternBudget

from .conftest import make_graph


class TestConfig:
    def test_defaults(self):
        config = MidasConfig()
        assert config.kappa == config.lambda_ == 0.1
        assert config.ged_method == "tight_lower"

    def test_validation(self):
        with pytest.raises(ValueError):
            MidasConfig(epsilon=-0.1)
        with pytest.raises(ValueError):
            MidasConfig(kappa=1.5)
        with pytest.raises(ValueError):
            MidasConfig(lambda_=-0.2)
        with pytest.raises(ValueError):
            MidasConfig(ks_alpha=0.0)
        with pytest.raises(ValueError):
            MidasConfig(max_scans=0)

    def test_inherits_catapult_validation(self):
        with pytest.raises(ValueError):
            MidasConfig(sup_min=2.0)

    def test_budget_override(self):
        config = MidasConfig(budget=PatternBudget(3, 5, 8))
        assert config.budget.gamma == 8


class TestDetector:
    @pytest.fixture
    def detector(self, paper_db):
        return ModificationDetector(
            dict(paper_db.items()), epsilon=0.01
        )

    def test_empty_batch_is_minor(self, detector):
        result = detector.classify({}, set())
        assert result.kind is ModificationType.MINOR
        assert result.distance == pytest.approx(0.0)
        assert not result.is_major

    def test_epsilon_validation(self, paper_db):
        with pytest.raises(ValueError):
            ModificationDetector(dict(paper_db.items()), epsilon=-1)

    def test_structural_shift_detected(self, detector):
        # Flood the database with triangles: the GFD shifts sharply.
        added = {
            100 + i: make_graph("CCC", [(0, 1), (1, 2), (0, 2)])
            for i in range(20)
        }
        result = detector.classify(added, set(), commit=False)
        assert result.is_major
        assert result.distance >= 0.01

    def test_commit_advances_state(self, detector):
        added = {
            100 + i: make_graph("CCC", [(0, 1), (1, 2), (0, 2)])
            for i in range(20)
        }
        detector.classify(added, set(), commit=True)
        # Re-classifying the same content as removed reverses the shift.
        result = detector.classify({}, set(added), commit=False)
        assert result.distance > 0

    def test_dry_run_does_not_advance(self, detector):
        added = {200: make_graph("CCC", [(0, 1), (1, 2), (0, 2)])}
        before = detector.distribution.frequencies().copy()
        detector.classify(added, set(), commit=False)
        assert (detector.distribution.frequencies() == before).all()

    def test_deletion_shift(self, paper_db):
        detector = ModificationDetector(
            dict(paper_db.items()), epsilon=0.05
        )
        # Deleting all the star graphs shifts the path/star balance.
        result = detector.classify({}, {0, 1, 3, 5, 7, 8}, commit=False)
        assert result.distance > 0

    def test_alternative_measure(self, paper_db):
        detector = ModificationDetector(
            dict(paper_db.items()), epsilon=0.01, measure="manhattan"
        )
        added = {300: make_graph("CCC", [(0, 1), (1, 2), (0, 2)])}
        assert detector.classify(added, set()).distance >= 0
