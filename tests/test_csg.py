"""Unit tests for repro.csg (summary graphs and their maintenance)."""

import pytest

from repro.clustering import ClusterSet
from repro.csg import CSGSet, SummaryGraph, build_csg
from repro.isomorphism import contains
from repro.trees import FCTSet, FeatureSpace

from .conftest import make_graph


class TestSummaryGraph:
    def test_single_graph_integration(self):
        summary = SummaryGraph(0)
        g = make_graph("COS", [(0, 1), (0, 2)])
        summary.add_graph(7, g)
        assert summary.num_vertices == 3
        assert summary.num_edges == 2
        assert summary.member_ids == {7}
        for u, v in summary.edges():
            assert summary.edge_graph_ids(u, v) == {7}

    def test_identical_graphs_overlap_fully(self):
        summary = SummaryGraph(0)
        g = make_graph("COS", [(0, 1), (0, 2)])
        summary.add_graph(1, g)
        summary.add_graph(2, g.copy())
        assert summary.num_vertices == 3
        assert summary.num_edges == 2
        for u, v in summary.edges():
            assert summary.edge_graph_ids(u, v) == {1, 2}

    def test_disjoint_labels_do_not_collapse(self):
        summary = SummaryGraph(0)
        summary.add_graph(1, make_graph("CO", [(0, 1)]))
        summary.add_graph(2, make_graph("NS", [(0, 1)]))
        assert summary.num_vertices == 4
        assert summary.num_edges == 2

    def test_duplicate_member_rejected(self):
        summary = SummaryGraph(0)
        summary.add_graph(1, make_graph("CO", [(0, 1)]))
        with pytest.raises(ValueError):
            summary.add_graph(1, make_graph("CO", [(0, 1)]))

    def test_partial_overlap(self):
        summary = SummaryGraph(0)
        summary.add_graph(1, make_graph("COS", [(0, 1), (0, 2)]))
        summary.add_graph(2, make_graph("CON", [(0, 1), (0, 2)]))
        # C and O align; S and N are separate leaves.
        assert summary.num_vertices == 4
        assert summary.num_edges == 3

    def test_remove_graph_reverts(self):
        summary = SummaryGraph(0)
        g1 = make_graph("COS", [(0, 1), (0, 2)])
        g2 = make_graph("CON", [(0, 1), (0, 2)])
        summary.add_graph(1, g1)
        summary.add_graph(2, g2)
        summary.remove_graph(2)
        assert summary.member_ids == {1}
        assert summary.num_vertices == 3
        assert summary.num_edges == 2

    def test_remove_unknown_member_rejected(self):
        summary = SummaryGraph(0)
        with pytest.raises(ValueError):
            summary.remove_graph(5)

    def test_edge_support_counts_members(self):
        summary = SummaryGraph(0)
        summary.add_graph(1, make_graph("CO", [(0, 1)]))
        summary.add_graph(2, make_graph("CO", [(0, 1)]))
        summary.add_graph(3, make_graph("CN", [(0, 1)]))
        co_edges = [
            e for e in summary.edges() if summary.edge_label(*e) == ("C", "O")
        ]
        assert sum(summary.edge_support(*e) for e in co_edges) == 2

    def test_as_labeled_graph_contains_members(self, paper_db):
        graphs = dict(paper_db.items())
        summary = build_csg(0, [0, 1, 3], graphs)
        host = summary.as_labeled_graph()
        for gid in (0, 1, 3):
            assert contains(host, graphs[gid])

    def test_build_csg_members(self, paper_db):
        graphs = dict(paper_db.items())
        summary = build_csg(9, [2, 6], graphs)
        assert summary.cluster_id == 9
        assert summary.member_ids == {2, 6}
        # Two identical C-O graphs integrate into a single edge.
        assert summary.num_edges == 1


@pytest.fixture
def cluster_setup(paper_db):
    graphs = dict(paper_db.items())
    fct_set = FCTSet(graphs, sup_min=3 / 9, max_edges=3)
    space = FeatureSpace(fct_set.fcts())
    clusters = ClusterSet.build(graphs, space, 3, seed=0, max_cluster_size=5)
    csgs = CSGSet.build(clusters, graphs)
    return graphs, clusters, csgs


class TestCSGSet:
    def test_build_covers_all_clusters(self, cluster_setup):
        _, clusters, csgs = cluster_setup
        assert set(csgs.summaries()) == set(clusters.cluster_ids())

    def test_members_match_clusters(self, cluster_setup):
        _, clusters, csgs = cluster_setup
        for cid in clusters.cluster_ids():
            assert csgs.summary(cid).member_ids == clusters.members(cid)

    def test_integrate_marks_touched(self, cluster_setup):
        graphs, clusters, csgs = cluster_setup
        cid = clusters.cluster_ids()[0]
        g = make_graph("CO", [(0, 1)])
        csgs.integrate(cid, 500, g)
        assert cid in csgs.touched
        assert 500 in csgs.summary(cid).member_ids

    def test_detach_removes_and_marks(self, cluster_setup):
        _, clusters, csgs = cluster_setup
        cid = clusters.cluster_ids()[0]
        member = next(iter(clusters.members(cid)))
        csgs.detach(cid, member)
        assert cid in csgs.touched

    def test_detach_last_member_drops_summary(self, cluster_setup):
        _, clusters, csgs = cluster_setup
        cid = clusters.cluster_ids()[0]
        for member in list(clusters.members(cid)):
            csgs.detach(cid, member)
        assert cid not in csgs

    def test_sync_rebuilds_mismatches(self, cluster_setup):
        graphs, clusters, csgs = cluster_setup
        new_graph = make_graph("COO", [(0, 1), (0, 2)])
        graphs[300] = new_graph
        cid = clusters.assign(300, new_graph, graphs)
        csgs.sync_with_clusters(clusters, graphs)
        assert csgs.summary(cid).member_ids == clusters.members(cid)

    def test_sync_drops_stale_clusters(self, cluster_setup):
        graphs, clusters, csgs = cluster_setup
        cid = clusters.cluster_ids()[0]
        for member in list(clusters.members(cid)):
            clusters.remove(member)
        csgs.sync_with_clusters(clusters, graphs)
        assert cid not in csgs

    def test_sync_leaves_matching_untouched(self, cluster_setup):
        graphs, clusters, csgs = cluster_setup
        before = {cid: csgs.summary(cid) for cid in clusters.cluster_ids()}
        csgs.reset_touched()
        csgs.sync_with_clusters(clusters, graphs)
        assert csgs.touched == set()
        for cid, summary in before.items():
            assert csgs.summary(cid) is summary
