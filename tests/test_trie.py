"""Unit tests for repro.index.trie."""

from repro.index import TokenTrie


class TestInsertLookup:
    def test_insert_and_lookup(self):
        trie = TokenTrie()
        trie.insert(["C", "$", "O", "S"], "k1")
        assert trie.lookup(["C", "$", "O", "S"]) == "k1"
        assert ["C", "$", "O", "S"] in trie

    def test_missing_lookup(self):
        trie = TokenTrie()
        trie.insert(["C", "$", "O"], "k1")
        assert trie.lookup(["C"]) is None      # prefix, not terminal
        assert trie.lookup(["C", "$", "N"]) is None

    def test_prefix_sharing(self):
        trie = TokenTrie()
        trie.insert(["C", "$", "O"], "a")
        trie.insert(["C", "$", "O", "S"], "b")
        assert trie.lookup(["C", "$", "O"]) == "a"
        assert trie.lookup(["C", "$", "O", "S"]) == "b"
        assert len(trie) == 2

    def test_reinsert_updates_payload(self):
        trie = TokenTrie()
        trie.insert(["C"], "old")
        trie.insert(["C"], "new")
        assert trie.lookup(["C"]) == "new"
        assert len(trie) == 1

    def test_from_items(self):
        trie = TokenTrie.from_items([(["A"], 1), (["B"], 2)])
        assert len(trie) == 2


class TestDelete:
    def test_delete_leaf(self):
        trie = TokenTrie()
        trie.insert(["C", "$", "O"], "a")
        assert trie.delete(["C", "$", "O"])
        assert len(trie) == 0
        assert trie.node_count() == 0  # fully pruned

    def test_delete_keeps_shared_prefix(self):
        trie = TokenTrie()
        trie.insert(["C", "$", "O"], "a")
        trie.insert(["C", "$", "N"], "b")
        assert trie.delete(["C", "$", "O"])
        assert trie.lookup(["C", "$", "N"]) == "b"

    def test_delete_inner_terminal_keeps_children(self):
        trie = TokenTrie()
        trie.insert(["C"], "a")
        trie.insert(["C", "O"], "b")
        assert trie.delete(["C"])
        assert trie.lookup(["C", "O"]) == "b"

    def test_delete_missing_returns_false(self):
        trie = TokenTrie()
        trie.insert(["C"], "a")
        assert not trie.delete(["X"])
        assert not trie.delete(["C", "O"])


class TestStatistics:
    def test_node_count_and_depth(self):
        trie = TokenTrie()
        trie.insert(["C", "$", "O"], "a")
        trie.insert(["C", "$", "N"], "b")
        assert trie.node_count() == 4  # C, $, O, N
        assert trie.max_depth() == 3

    def test_payloads(self):
        trie = TokenTrie()
        trie.insert(["A"], "x")
        trie.insert(["B"], "y")
        assert trie.payloads() == ["x", "y"]

    def test_empty(self):
        trie = TokenTrie()
        assert len(trie) == 0
        assert trie.max_depth() == 0
        assert trie.payloads() == []
