"""Cross-checks: TreeNat vs the level-wise miner; clustering quality;
the beam GED bound."""

import random

import pytest

from repro.clustering import (
    ClusterSet,
    mccs_contrast,
    silhouette_score,
)
from repro.ged import ged, ged_beam_upper_bound, ged_exact
from repro.graph import LabeledGraph
from repro.trees import FCTSet, FeatureSpace, TreeMiner, TreeNatMiner

from .conftest import make_graph


class TestTreeNatCrossCheck:
    def test_invalid_parameters(self, paper_db):
        with pytest.raises(ValueError):
            TreeNatMiner(dict(paper_db.items()), 0.0)
        with pytest.raises(ValueError):
            TreeNatMiner(dict(paper_db.items()), 0.5, max_edges=0)

    def test_agrees_with_levelwise_on_paper_db(self, paper_db):
        graphs = dict(paper_db.items())
        recursive = TreeNatMiner(graphs, 3 / 9, max_edges=3).mine_closed()
        levelwise = TreeMiner(graphs, 3 / 9, max_edges=3).mine_closed()
        rec = {(repr(t.key), t.support_count) for t in recursive}
        lev = {(repr(t.key), t.support_count) for t in levelwise}
        assert rec == lev

    @pytest.mark.parametrize("seed", [3, 11])
    def test_agrees_on_random_molecules(self, seed):
        from repro.datasets import MoleculeGenerator

        graphs = {
            i: g
            for i, g in enumerate(
                MoleculeGenerator(seed=seed).generate_many(8)
            )
        }
        recursive = TreeNatMiner(graphs, 0.5, max_edges=3).mine_closed()
        levelwise = TreeMiner(graphs, 0.5, max_edges=3).mine_closed()
        rec = {(repr(t.key), t.support_count) for t in recursive}
        lev = {(repr(t.key), t.support_count) for t in levelwise}
        assert rec == lev

    def test_empty_database(self):
        assert TreeNatMiner({}, 0.5).mine_closed() == []


class TestBeamGed:
    def test_registered_in_dispatcher(self, triangle, path3):
        assert ged(triangle, path3, method="beam") >= ged_exact(
            triangle, path3
        )

    def test_invalid_width(self, triangle, path3):
        with pytest.raises(ValueError):
            ged_beam_upper_bound(triangle, path3, beam_width=0)

    def test_identity(self, triangle):
        assert ged_beam_upper_bound(triangle, triangle.copy()) == 0

    def test_empty_cases(self, triangle):
        assert ged_beam_upper_bound(LabeledGraph(), triangle) == 6
        assert ged_beam_upper_bound(triangle, LabeledGraph()) == 6

    @pytest.mark.parametrize("seed", range(10))
    def test_upper_bound_property(self, seed):
        rng = random.Random(seed)

        def rg(n, p):
            g = LabeledGraph()
            for v in range(n):
                g.add_vertex(v, rng.choice("CNO"))
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < p:
                        g.add_edge(i, j)
            return g

        g1, g2 = rg(rng.randint(1, 5), 0.5), rg(rng.randint(1, 5), 0.5)
        assert ged_beam_upper_bound(g1, g2) >= ged_exact(g1, g2)

    def test_wider_beam_not_worse(self):
        g1 = make_graph("CCONS", [(0, 1), (1, 2), (2, 3), (3, 4)])
        g2 = make_graph("CCOSN", [(0, 1), (1, 2), (1, 3), (3, 4)])
        narrow = ged_beam_upper_bound(g1, g2, beam_width=1)
        wide = ged_beam_upper_bound(g1, g2, beam_width=16)
        assert wide <= narrow


class TestClusteringQuality:
    @pytest.fixture
    def clusters(self, paper_db):
        graphs = dict(paper_db.items())
        fct = FCTSet(graphs, 3 / 9, max_edges=3)
        space = FeatureSpace(fct.fcts())
        return (
            ClusterSet.build(graphs, space, 3, seed=0, max_cluster_size=5),
            graphs,
        )

    def test_silhouette_range(self, clusters):
        cluster_set, _ = clusters
        score = silhouette_score(cluster_set)
        assert -1.0 <= score <= 1.0

    def test_silhouette_single_cluster_zero(self, paper_db):
        graphs = dict(paper_db.items())
        fct = FCTSet(graphs, 3 / 9, max_edges=3)
        space = FeatureSpace(fct.fcts())
        single = ClusterSet.build(
            graphs, space, 1, seed=0, max_cluster_size=100
        )
        assert silhouette_score(single) == 0.0

    def test_mccs_contrast(self, clusters):
        cluster_set, graphs = clusters
        intra, inter = mccs_contrast(cluster_set, graphs)
        assert 0.0 <= inter <= 1.0
        assert 0.0 <= intra <= 1.0
