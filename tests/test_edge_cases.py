"""Edge-case and failure-injection tests across the stack.

Degenerate databases (tiny, homogeneous, label-poor), extreme
configurations and hostile update sequences — the places incremental
maintenance logic typically breaks.
"""

import pytest

from repro import Midas, MidasConfig, PatternBudget
from repro.catapult import Catapult, CatapultConfig
from repro.graph import BatchUpdate, GraphDatabase
from repro.trees import FCTSet

from .conftest import make_graph


def tiny_db(count: int = 3) -> GraphDatabase:
    graphs = [
        make_graph("CCCO", [(0, 1), (1, 2), (2, 3)]) for _ in range(count)
    ]
    return GraphDatabase(graphs)


class TestDegenerateDatabases:
    def test_catapult_on_two_graphs(self):
        config = CatapultConfig(
            budget=PatternBudget(3, 4, 2),
            sup_min=0.5,
            num_clusters=1,
            sample_cap=5,
        )
        result = Catapult(config).run(tiny_db(2))
        # Selection succeeds (may select fewer than γ patterns).
        assert len(result.patterns) <= 2

    def test_catapult_on_identical_graphs(self):
        config = CatapultConfig(
            budget=PatternBudget(3, 3, 3),
            sup_min=0.5,
            num_clusters=2,
            sample_cap=5,
        )
        result = Catapult(config).run(tiny_db(6))
        # All graphs identical: at most one distinct size-3 pattern.
        assert len(result.patterns) <= 3

    def test_midas_bootstrap_tiny(self):
        config = MidasConfig(
            budget=PatternBudget(3, 4, 2),
            sup_min=0.5,
            num_clusters=1,
            sample_cap=5,
            epsilon=0.01,
        )
        midas = Midas.bootstrap(tiny_db(3), config)
        report = midas.apply_update(
            BatchUpdate.of(insertions=[make_graph("CCCO", [(0, 1), (1, 2), (2, 3)])])
        )
        assert midas.fct_set.db_size == 4
        assert report.pattern_maintenance_seconds >= 0

    def test_delete_everything_then_regrow(self):
        config = MidasConfig(
            budget=PatternBudget(3, 4, 2),
            sup_min=0.5,
            num_clusters=1,
            sample_cap=5,
            epsilon=1e9,  # force minor: no pattern machinery on empties
        )
        midas = Midas.bootstrap(tiny_db(3), config)
        midas.apply_update(BatchUpdate.of(deletions=[0, 1, 2]))
        assert len(midas.database) == 0
        assert midas.clusters.total_graphs() == 0
        midas.apply_update(
            BatchUpdate.of(
                insertions=[
                    make_graph("CCN", [(0, 1), (1, 2)]) for _ in range(3)
                ]
            )
        )
        assert len(midas.database) == 3
        assert midas.clusters.total_graphs() == 3

    def test_single_label_database(self):
        graphs = [
            make_graph("CCCC", [(0, 1), (1, 2), (2, 3)]) for _ in range(4)
        ]
        fct = FCTSet(dict(GraphDatabase(graphs).items()), sup_min=0.5)
        assert fct.fcts()  # the C-chain trees are frequent and closed
        assert fct.infrequent_edge_labels() == set()


class TestHostileSequences:
    def test_alternating_add_delete_consistency(self):
        config = MidasConfig(
            budget=PatternBudget(3, 4, 3),
            sup_min=0.5,
            num_clusters=2,
            sample_cap=20,
            epsilon=1e9,
        )
        from repro.datasets import aids_like

        base = aids_like(20, seed=31)
        midas = Midas.bootstrap(base, config)
        for round_number in range(4):
            from repro.datasets import MoleculeGenerator

            new = MoleculeGenerator(seed=round_number).generate_many(3)
            victims = midas.database.ids()[:3]
            midas.apply_update(
                BatchUpdate.of(insertions=new, deletions=victims)
            )
        # Structural invariants survive the churn.
        assert midas.fct_set.db_size == len(midas.database)
        clustered = set()
        for cid in midas.clusters.cluster_ids():
            clustered |= midas.clusters.members(cid)
        assert clustered == set(midas.database.ids())
        for cid in midas.clusters.cluster_ids():
            assert midas.csgs.summary(cid).member_ids == (
                midas.clusters.members(cid)
            )

    def test_same_batch_reapplied_raises(self):
        db = tiny_db(3)
        update = BatchUpdate.of(deletions=[0])
        db.apply(update)
        with pytest.raises(Exception):
            db.apply(update)  # graph 0 no longer exists


class TestExtremeConfigs:
    def test_gamma_one(self):
        config = CatapultConfig(
            budget=PatternBudget(3, 6, 1),
            sup_min=0.5,
            num_clusters=2,
            sample_cap=10,
        )
        from repro.datasets import aids_like

        result = Catapult(config).run(aids_like(15, seed=1))
        assert len(result.patterns) <= 1

    def test_tight_size_window(self):
        config = CatapultConfig(
            budget=PatternBudget(4, 4, 4),
            sup_min=0.5,
            num_clusters=2,
            sample_cap=10,
        )
        from repro.datasets import aids_like

        result = Catapult(config).run(aids_like(15, seed=2))
        for pattern in result.patterns:
            assert pattern.num_edges == 4

    def test_very_high_support_threshold(self):
        fct = FCTSet(dict(tiny_db(4).items()), sup_min=1.0)
        # Identical graphs: everything has support 1.0 and survives.
        assert fct.fcts()

    def test_epsilon_zero_always_major(self):
        config = MidasConfig(
            budget=PatternBudget(3, 4, 2),
            sup_min=0.5,
            num_clusters=1,
            sample_cap=5,
            epsilon=0.0,
        )
        midas = Midas.bootstrap(tiny_db(3), config)
        report = midas.apply_update(
            BatchUpdate.of(
                insertions=[make_graph("NNN", [(0, 1), (1, 2)])]
            )
        )
        assert report.is_major  # distance 0 >= epsilon 0
