"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import GraphDatabase, LabeledGraph


def make_graph(labels: str, edges) -> LabeledGraph:
    """Build a graph from a label string and an edge list.

    ``make_graph("COS", [(0, 1), (0, 2)])`` is the star C(-O)(-S).
    """
    return LabeledGraph.from_edges(dict(enumerate(labels)), edges)


@pytest.fixture
def triangle() -> LabeledGraph:
    return make_graph("CCC", [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path3() -> LabeledGraph:
    return make_graph("CCC", [(0, 1), (1, 2)])


@pytest.fixture
def paper_db() -> GraphDatabase:
    """A database modelled on the paper's Figure 3 sample (G1–G9).

    Small star/chain molecules over the labels C, O, S, N; used by the
    mining and maintenance tests (cf. Examples 3.3 and 4.7).
    """
    graphs = [
        make_graph("COS", [(0, 1), (0, 2)]),          # G0: S-C-O
        make_graph("CON", [(0, 1), (0, 2)]),          # G1: N-C-O
        make_graph("CO", [(0, 1)]),                   # G2: C-O
        make_graph("COS", [(0, 1), (0, 2)]),          # G3: S-C-O
        make_graph("CN", [(0, 1)]),                   # G4: C-N
        make_graph("COOS", [(0, 1), (0, 2), (0, 3)]), # G5: star
        make_graph("CO", [(0, 1)]),                   # G6: C-O
        make_graph("COO", [(0, 1), (0, 2)]),          # G7: O-C-O
        make_graph("COO", [(0, 1), (0, 2)]),          # G8: O-C-O
    ]
    return GraphDatabase(graphs)


@pytest.fixture
def molecule_db() -> GraphDatabase:
    """A small seeded molecule database for integration-ish tests."""
    from repro.datasets import aids_like

    return aids_like(40, seed=11)
