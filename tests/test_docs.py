"""Documentation health: links resolve, catalogued names exist in code.

Four guarantees:

* every intra-repository markdown link in README.md and docs/*.md points
  at a file that exists;
* every metric and span name catalogued in docs/OBSERVABILITY.md appears
  as a string literal somewhere under src/repro — the catalogue cannot
  drift from the instrumentation;
* the reverse, for the execution-layer namespaces: every ``parallel.*``
  / ``cache.*`` / ``covindex.*`` / ``vf2.*`` / ``check.*`` / ``serve.*``
  / ``journal.*`` metric literal under src/repro is catalogued in
  OBSERVABILITY.md — the instrumentation cannot drift from the
  catalogue;
* the invariant catalogue in docs/CORRECTNESS.md matches the guard
  names raised by ``repro.check.invariants``, in both directions;
* every kernel named in docs/PERFORMANCE.md's kernel table is a real
  function in ``repro.parallel``;
* the docs/SERVING.md endpoint table matches ``repro.serve.http.ROUTES``
  exactly, in both directions;
* docs/API.md matches the facade: the table lists exactly
  ``repro.api.__all__``, each row's parameter cell is exactly that
  call's signature, the ExecutionConfig table lists exactly the
  dataclass fields, and the GraphStore method table lists exactly the
  public methods of ``repro.store.GraphStore``.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
MARKDOWN_FILES = [REPO_ROOT / "README.md", *DOCS]

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
TABLE_NAME_PATTERN = re.compile(r"^\|\s*`([^`\s]+)`\s*\|")


def _links(path: Path) -> list[str]:
    targets = []
    for target in LINK_PATTERN.findall(path.read_text()):
        target = target.split("#", 1)[0]  # drop anchors
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        targets.append(target)
    return targets


@pytest.mark.parametrize(
    "markdown", MARKDOWN_FILES, ids=lambda p: p.name
)
def test_intra_repo_links_resolve(markdown):
    missing = [
        target
        for target in _links(markdown)
        if not (markdown.parent / target).exists()
    ]
    assert not missing, f"{markdown.name}: broken links {missing}"


def _catalogue_names(section_heading: str) -> list[str]:
    """First-column backticked names of every table row in a section."""
    text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
    names = []
    in_section = False
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip() == section_heading
            continue
        if in_section:
            match = TABLE_NAME_PATTERN.match(line)
            if match and match.group(1) not in ("Metric", "Span"):
                names.append(match.group(1))
    return names


@pytest.fixture(scope="module")
def source_text():
    return "\n".join(
        path.read_text()
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    )


def test_metric_catalogue_is_nonempty():
    assert len(_catalogue_names("## Metric catalogue")) >= 30


def test_span_catalogue_is_nonempty():
    assert len(_catalogue_names("## Span catalogue")) >= 20


@pytest.mark.parametrize("name", _catalogue_names("## Metric catalogue"))
def test_documented_metric_exists_in_source(name, source_text):
    assert f'"{name}"' in source_text, (
        f"metric {name!r} is documented in OBSERVABILITY.md but no string "
        f"literal emits it under src/repro"
    )


@pytest.mark.parametrize("name", _catalogue_names("## Span catalogue"))
def test_documented_span_exists_in_source(name, source_text):
    assert f'"{name}"' in source_text, (
        f"span {name!r} is documented in OBSERVABILITY.md but no string "
        f"literal opens it under src/repro"
    )


EXECUTION_METRIC_PATTERN = re.compile(
    r'"((?:parallel|cache|covindex|vf2|check|serve|journal|store)\.'
    r'[a-z_][a-z_.]*)"'
)


def _serve_site_names() -> set[str]:
    from repro.resilience.faults import SERVE_SITES

    return set(SERVE_SITES)


# Budget-check and fault-injection site names share the dotted spelling
# but are not metrics; the crash-injection sites on the serving path
# (``SERVE_SITES``) are excluded the same way, as is the default SQLite
# filename literal "store.db".
EXECUTION_SITE_NAMES = {
    "parallel.map",
    "vf2.search",
    "store.db",
} | _serve_site_names()

DOTTED_NAME_PATTERN = re.compile(r'"([a-z_]+(?:\.[a-z_]+)+)"')


def _invariant_names_in_source() -> set[str]:
    """Guard names raised by repro.check.invariants (not metrics).

    Every dotted string literal in the module is either a guard name or
    one of the two ``check.*`` counters it emits.
    """
    text = (
        REPO_ROOT / "src" / "repro" / "check" / "invariants.py"
    ).read_text()
    return set(DOTTED_NAME_PATTERN.findall(text)) - {
        "check.assertions",
        "check.violations",
    }


def _correctness_invariant_names() -> set[str]:
    """First-column names of the CORRECTNESS.md invariant catalogue."""
    text = (REPO_ROOT / "docs" / "CORRECTNESS.md").read_text()
    names = set()
    for line in text.splitlines():
        match = TABLE_NAME_PATTERN.match(line)
        if match and "." in match.group(1):
            names.add(match.group(1))
    return names


def test_execution_metrics_are_catalogued(source_text):
    """Every parallel./cache./covindex./vf2./check. literal is catalogued."""
    emitted = (
        set(EXECUTION_METRIC_PATTERN.findall(source_text))
        - EXECUTION_SITE_NAMES
        - _invariant_names_in_source()
    )
    assert emitted, "expected parallel.*/cache.* metric literals in src/repro"
    documented = set(_catalogue_names("## Metric catalogue"))
    undocumented = sorted(emitted - documented)
    assert not undocumented, (
        f"metrics emitted under src/repro but missing from the "
        f"OBSERVABILITY.md catalogue: {undocumented}"
    )


#: The metrics introduced with the vectorized bitset substrate and the
#: persistent shared-memory workers (docs/PERFORMANCE.md).  Named
#: explicitly — beyond the generic sweep above — so that renaming or
#: dropping any of them breaks this test instead of silently shrinking
#: the catalogue.
SUBSTRATE_METRIC_NAMES = {
    "covindex.filter_ns",
    "covindex.trend.filter_ns_per_round_int",
    "covindex.trend.filter_ns_per_round_numpy",
    "covindex.trend.filter_speedup",
    "parallel.fallback",
    "parallel.bytes_pickled",
    "parallel.worker_restarts",
    "parallel.view_publishes",
    "parallel.views",
    "parallel.trend.ged_serial_seconds",
    "parallel.trend.ged_fanout_seconds",
    "cache.trend.ged_cold_seconds",
    "cache.trend.ged_warm_seconds",
}


def test_substrate_worker_metrics_catalogued_and_emitted(source_text):
    """Substrate/persistent-worker metrics: catalogued AND emitted."""
    documented = set(_catalogue_names("## Metric catalogue"))
    missing = sorted(SUBSTRATE_METRIC_NAMES - documented)
    assert not missing, (
        f"substrate/worker metrics missing from the OBSERVABILITY.md "
        f"catalogue: {missing}"
    )
    unemitted = sorted(
        name
        for name in SUBSTRATE_METRIC_NAMES
        if f'"{name}"' not in source_text
    )
    assert not unemitted, (
        f"substrate/worker metrics catalogued but never emitted as a "
        f"string literal under src/repro: {unemitted}"
    )


def test_invariant_catalogue_matches_source():
    """docs/CORRECTNESS.md and repro.check.invariants agree exactly."""
    in_source = _invariant_names_in_source()
    in_docs = _correctness_invariant_names()
    assert in_source, "expected guard names in repro/check/invariants.py"
    assert in_source == in_docs, (
        f"undocumented guards: {sorted(in_source - in_docs)}; "
        f"documented but not raised: {sorted(in_docs - in_source)}"
    )


def _performance_kernel_names() -> list[str]:
    """First-column backticked names of the PERFORMANCE.md kernel table."""
    text = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
    names = []
    for line in text.splitlines():
        match = TABLE_NAME_PATTERN.match(line)
        if match and match.group(1).endswith("_kernel"):
            names.append(match.group(1))
    return names


def test_performance_kernel_table_is_nonempty():
    assert len(_performance_kernel_names()) >= 4


@pytest.mark.parametrize("name", _performance_kernel_names())
def test_documented_kernel_exists(name):
    import repro.parallel as parallel

    assert callable(getattr(parallel, name, None)), (
        f"kernel {name!r} is documented in PERFORMANCE.md but is not a "
        f"callable exported by repro.parallel"
    )


ENDPOINT_ROW_PATTERN = re.compile(
    r"^\|\s*`((?:GET|POST|PUT|DELETE) /\S+)`\s*\|", re.MULTILINE
)


def _serving_documented_endpoints() -> set[str]:
    """``METHOD /path`` strings from the SERVING.md endpoint table."""
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text()
    return set(ENDPOINT_ROW_PATTERN.findall(text))


def test_serving_endpoint_table_matches_routes():
    """docs/SERVING.md and repro.serve.http.ROUTES agree exactly."""
    from repro.serve.http import endpoints

    served = set(endpoints())
    documented = _serving_documented_endpoints()
    assert served, "expected routes in repro.serve.http.ROUTES"
    assert served == documented, (
        f"endpoints served but undocumented: {sorted(served - documented)}; "
        f"documented but not served: {sorted(documented - served)}"
    )


BACKTICKED_NAME_PATTERN = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def _api_table_rows(section_heading: str) -> dict[str, list[str]]:
    """API.md table rows in a section: first-column name -> row cells."""
    text = (REPO_ROOT / "docs" / "API.md").read_text()
    rows = {}
    in_section = False
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip() == section_heading
            continue
        if in_section:
            match = TABLE_NAME_PATTERN.match(line)
            if match:
                rows[match.group(1)] = line.split("|")[2:-1]
    return rows


def test_api_facade_table_matches_api_module():
    """The API.md facade table lists exactly repro.api.__all__, and each
    row's parameter cell is exactly that call's signature."""
    import inspect

    import repro.api as api

    rows = _api_table_rows("## The facade")
    assert set(rows) == set(api.__all__), (
        f"facade calls undocumented: {sorted(set(api.__all__) - set(rows))}; "
        f"documented but not exported: {sorted(set(rows) - set(api.__all__))}"
    )
    for name, cells in rows.items():
        documented = set(BACKTICKED_NAME_PATTERN.findall(cells[0]))
        actual = set(inspect.signature(getattr(api, name)).parameters)
        assert documented == actual, (
            f"API.md parameters for {name!r} drifted from the signature: "
            f"missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )


def test_api_execution_config_table_matches_dataclass():
    """The API.md ExecutionConfig table lists exactly the fields."""
    import dataclasses

    from repro.execution import ExecutionConfig

    documented = set(_api_table_rows("## ExecutionConfig"))
    actual = {field.name for field in dataclasses.fields(ExecutionConfig)}
    assert documented == actual, (
        f"fields undocumented: {sorted(actual - documented)}; "
        f"documented but not fields: {sorted(documented - actual)}"
    )


def test_api_graph_store_table_matches_class():
    """The API.md GraphStore table lists exactly the public methods."""
    from repro.store import GraphStore

    documented = set(_api_table_rows("## GraphStore"))
    actual = {
        name
        for name, member in vars(GraphStore).items()
        if callable(member) and not name.startswith("_")
    }
    assert documented == actual, (
        f"methods undocumented: {sorted(actual - documented)}; "
        f"documented but not methods: {sorted(documented - actual)}"
    )
