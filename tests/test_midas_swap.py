"""Unit tests for repro.midas.swap (multi-scan swap, sw1-sw5, Lemma 6.3)."""

import pytest

from repro.midas import MultiScanSwapper, kappa_schedule
from repro.patterns import CoverageOracle, PatternSet, pattern_set_quality

from .conftest import make_graph


class TestKappaSchedule:
    def test_lemma_formula(self):
        kappa, sigma = kappa_schedule(0.25)
        assert kappa == pytest.approx(0.5)          # 1 - 2*0.25
        assert sigma == pytest.approx(1 / 3)        # 0.25 / 0.75

    def test_fixed_point(self):
        kappa, sigma = kappa_schedule(0.5)
        assert kappa == 0.0
        assert sigma == 0.5

    def test_sigma_converges_to_half(self):
        # Convergence is harmonic (σ_t ≈ 0.5 − c/t), so allow many steps.
        sigma = 0.25
        for _ in range(500):
            _, sigma = kappa_schedule(sigma)
        assert sigma == pytest.approx(0.5, abs=5e-3)

    def test_sigma_monotone(self):
        sigma = 0.25
        previous = sigma
        for _ in range(10):
            _, sigma = kappa_schedule(sigma)
            assert sigma >= previous
            previous = sigma


@pytest.fixture
def oracle(paper_db):
    return CoverageOracle(dict(paper_db.items()))


def build_set(*graphs):
    pattern_set = PatternSet()
    for graph in graphs:
        pattern_set.add(graph, "initial")
    return pattern_set


class TestMultiScanSwapper:
    def test_empty_candidates_no_swaps(self, oracle):
        swapper = MultiScanSwapper(oracle)
        pattern_set = build_set(make_graph("CO", [(0, 1)]))
        outcome = swapper.run(pattern_set, [])
        assert outcome.num_swaps == 0
        assert outcome.scans == 0

    def test_empty_pattern_set_no_swaps(self, oracle):
        swapper = MultiScanSwapper(oracle)
        outcome = swapper.run(PatternSet(), [make_graph("CO", [(0, 1)])])
        assert outcome.num_swaps == 0

    def test_isomorphic_candidates_skipped(self, oracle):
        swapper = MultiScanSwapper(oracle)
        pattern_set = build_set(make_graph("CO", [(0, 1)]))
        outcome = swapper.run(pattern_set, [make_graph("OC", [(0, 1)])])
        assert outcome.num_swaps == 0

    def test_beneficial_swap_executes(self, oracle):
        # P = {S-C-S (covers nothing), S-C-O}; candidate O-C-O covers
        # G5/G7/G8, two of which P misses, and swapping it for the dead
        # S-C-S pattern preserves diversity, load and label coverage.
        weak = make_graph("CSS", [(0, 1), (0, 2)])    # covers nothing
        keeper = make_graph("COS", [(0, 1), (0, 2)])  # covers G0, G3, G5
        strong = make_graph("COO", [(0, 1), (0, 2)])  # covers G5, G7, G8
        pattern_set = build_set(weak, keeper)
        swapper = MultiScanSwapper(oracle, kappa=0.0, lambda_=0.0)
        outcome = swapper.run(pattern_set, [strong])
        assert outcome.num_swaps == 1
        assert pattern_set.has_isomorphic(strong)
        assert not pattern_set.has_isomorphic(weak)

    def test_progressive_gain_invariant(self, oracle):
        """After any swap run: scov never lower, div/lcov never lower,
        cog never higher (sw1/sw3/sw4/sw5)."""
        initial = build_set(
            make_graph("CSS", [(0, 1), (0, 2)]),
            make_graph("CON", [(0, 1), (0, 2)]),
            make_graph("COS", [(0, 1), (1, 2)]),
        )
        candidates = [
            make_graph("COO", [(0, 1), (0, 2)]),
            make_graph("COS", [(0, 1), (0, 2)]),
            make_graph("CN", [(0, 1)]),
        ]
        before = pattern_set_quality(initial.copy(), oracle)
        swapper = MultiScanSwapper(oracle, kappa=0.1, lambda_=0.1)
        outcome = swapper.run(initial, candidates)
        after = pattern_set_quality(initial, oracle)
        assert after["scov"] >= before["scov"] - 1e-12
        if outcome.num_swaps:
            assert after["div"] >= before["div"] - 1e-12
            assert after["cog"] <= before["cog"] + 1e-12
            assert after["lcov"] >= before["lcov"] - 1e-12

    def test_gamma_preserved(self, oracle):
        pattern_set = build_set(
            make_graph("CSS", [(0, 1), (0, 2)]),
            make_graph("CON", [(0, 1), (0, 2)]),
        )
        swapper = MultiScanSwapper(oracle, kappa=0.0, lambda_=0.0)
        swapper.run(pattern_set, [make_graph("COO", [(0, 1), (0, 2)])])
        assert len(pattern_set) == 2

    def test_adaptive_kappa_runs(self, oracle):
        pattern_set = build_set(
            make_graph("CSS", [(0, 1), (0, 2)]),
            make_graph("CON", [(0, 1), (0, 2)]),
        )
        swapper = MultiScanSwapper(
            oracle, adaptive_kappa=True, sigma_initial=0.25, max_scans=3
        )
        outcome = swapper.run(
            pattern_set, [make_graph("COO", [(0, 1), (0, 2)])]
        )
        assert outcome.scans >= 1

    def test_provenance_recorded(self, oracle):
        pattern_set = build_set(
            make_graph("CSS", [(0, 1), (0, 2)]),
            make_graph("CON", [(0, 1), (0, 2)]),
        )
        swapper = MultiScanSwapper(oracle, kappa=0.0, lambda_=0.0)
        outcome = swapper.run(
            pattern_set,
            [make_graph("COO", [(0, 1), (0, 2)])],
            provenance="test-run",
        )
        if outcome.num_swaps:
            swapped_ids = {record.added_id for record in outcome.swaps}
            for pattern in pattern_set:
                if pattern.pattern_id in swapped_ids:
                    assert pattern.provenance == "test-run"
