"""The ``repro.api`` facade and the keyword-only config redesign."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import api
from repro.catapult import Catapult, CatapultConfig
from repro.catapult.pipeline import CatapultResult
from repro.datasets import aids_like, family_injection
from repro.execution import ExecutionConfig
from repro.midas import Midas, MidasConfig
from repro.midas.maintainer import MaintenanceReport
from repro.patterns import PatternBudget
from repro.resilience import Deadline


@pytest.fixture(scope="module")
def small_db():
    return aids_like(30, seed=11)


@pytest.fixture
def small_config():
    return MidasConfig(
        budget=PatternBudget(3, 6, 8), num_clusters=3, sample_cap=50, seed=5
    )


class TestSelect:
    def test_returns_catapult_result(self, small_db):
        result = api.select(
            small_db, PatternBudget(3, 6, 8), config=CatapultConfig(
                num_clusters=3, sample_cap=50
            )
        )
        assert isinstance(result, CatapultResult)
        assert 0 < len(result.patterns) <= 8
        assert result.index_pair is not None  # plus_plus by default

    def test_plain_catapult_has_no_indices(self, small_db):
        result = api.select(
            small_db,
            PatternBudget(3, 6, 6),
            config=CatapultConfig(num_clusters=3, sample_cap=50),
            plus_plus=False,
        )
        assert result.index_pair is None

    def test_budget_overrides_config(self, small_db):
        config = CatapultConfig(
            budget=PatternBudget(3, 5, 2), num_clusters=3, sample_cap=50
        )
        result = api.select(small_db, PatternBudget(3, 5, 4), config=config)
        assert len(result.patterns) <= 4
        # the caller's config object is not mutated
        assert config.budget.gamma == 2

    def test_execution_override(self, small_db):
        result = api.select(
            small_db,
            PatternBudget(3, 6, 6),
            config=CatapultConfig(num_clusters=3, sample_cap=50),
            execution=ExecutionConfig(cache=True),
        )
        assert isinstance(result, CatapultResult)


class TestBootstrapAndMaintain:
    def test_lifecycle(self, small_db, small_config):
        midas = api.bootstrap(small_db, config=small_config)
        assert isinstance(midas, Midas)
        report = api.maintain(midas, family_injection(10, seed=3))
        assert isinstance(report, MaintenanceReport)
        assert report.inserted_ids

    def test_maintain_execution_override_sticks(self, small_db, small_config):
        midas = api.bootstrap(small_db, config=small_config)
        api.maintain(
            midas,
            family_injection(8, seed=4),
            execution=ExecutionConfig(cache=True),
        )
        assert midas.config.execution.cache is True

    def test_maintain_config_replaces(self, small_db, small_config):
        midas = api.bootstrap(small_db, config=small_config)
        new_config = MidasConfig(
            budget=PatternBudget(3, 6, 8),
            num_clusters=3,
            sample_cap=50,
            seed=5,
            epsilon=0.5,
        )
        api.maintain(midas, family_injection(8, seed=4), config=new_config)
        assert midas.config.epsilon == 0.5

    def test_facade_exported_from_package_root(self):
        assert repro.api is api
        assert "api" in repro.__all__
        assert "ExecutionConfig" in repro.__all__


class TestKeywordOnlyConfigs:
    def test_positional_construction_is_rejected(self):
        with pytest.raises(TypeError):
            CatapultConfig(PatternBudget(3, 6, 8))  # noqa: positional
        with pytest.raises(TypeError):
            MidasConfig(PatternBudget(3, 6, 8))

    def test_execution_field_defaults(self):
        config = CatapultConfig()
        assert config.execution == ExecutionConfig()
        assert config.execution.workers == 1
        assert config.execution.cache is False


class TestExecutionConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutionConfig(deadline_ms=0)

    def test_apply_is_additive(self):
        from repro.cache import caching_enabled
        from repro.resilience import current_budget

        with ExecutionConfig().apply():
            # defaults install nothing: no budget, no caching
            assert current_budget() is None
            assert not caching_enabled()
        with ExecutionConfig(deadline_ms=60_000, cache=True).apply():
            assert current_budget() is not None
            assert caching_enabled()
        assert current_budget() is None
        assert not caching_enabled()


class TestDeprecationShims:
    def test_run_budget_kwarg_warns_but_works(self, small_db):
        pipeline = Catapult(
            CatapultConfig(
                budget=PatternBudget(3, 6, 6), num_clusters=3, sample_cap=50
            )
        )
        with pytest.warns(DeprecationWarning, match="ExecutionConfig"):
            result = pipeline.run(small_db, Deadline.from_ms(60_000))
        assert isinstance(result, CatapultResult)
        assert len(result.patterns) > 0

    def test_run_without_budget_does_not_warn(self, small_db):
        pipeline = Catapult(
            CatapultConfig(
                budget=PatternBudget(3, 6, 6), num_clusters=3, sample_cap=50
            )
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = pipeline.run(small_db)
        assert isinstance(result, CatapultResult)
