"""The observability layer: registry, spans, Stopwatch shim, wiring."""

import threading

import pytest

from repro.datasets import aids_like, random_insertions
from repro.midas import Midas, MidasConfig
from repro.obs import (
    MetricsRegistry,
    Span,
    Stopwatch,
    Tracer,
    capture,
    get_registry,
    get_tracer,
    metrics_snapshot,
    render_metrics_report,
    reset_all,
    set_registry,
    set_tracer,
    span,
)
from repro.patterns import PatternBudget


@pytest.fixture(autouse=True)
def clean_observability():
    """Each test sees an empty default tracer tree and zeroed metrics."""
    reset_all()
    yield
    reset_all()


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.counter("c").add(3)
        assert registry.counter("c").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_histogram_aggregates(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 16.0
        assert histogram.mean == 4.0
        assert histogram.min == 1.0
        assert histogram.max == 10.0
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 10.0

    def test_histogram_empty_percentile(self):
        assert MetricsRegistry().histogram("h").percentile(50) is None

    def test_counter_is_thread_safe(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(5000):
                registry.counter("threads").add(1)

        workers = [threading.Thread(target=work) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("threads").value == 20000

    def test_counter_deltas(self):
        registry = MetricsRegistry()
        registry.counter("a").add(2)
        before = registry.counter_values()
        registry.counter("a").add(3)
        registry.counter("b").add(1)
        assert registry.counter_deltas(before) == {"a": 3, "b": 1}

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a").add(7)
        registry.reset()
        assert registry.counter("a").value == 0
        assert registry.names() == ["a"]

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.gauge("g").set(2)
        registry.histogram("h").record(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2.0}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_set_registry_swaps_default(self):
        isolated = MetricsRegistry()
        previous = set_registry(isolated)
        try:
            get_registry().counter("x").add(1)
            assert isolated.counter("x").value == 1
            assert previous.get("x") is None
        finally:
            set_registry(previous)


class TestSpans:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = tracer.root.find("outer/inner")
        assert inner is not None
        assert inner.calls == 1
        outer = tracer.root.find("outer")
        assert outer.seconds >= inner.seconds

    def test_reentry_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        assert tracer.root.find("phase").calls == 3
        assert len(tracer.root.children) == 1

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.root.find("boom").calls == 1
        assert tracer.current is tracer.root  # stack restored

    def test_capture_yields_fresh_subtree_and_merges(self):
        tracer = Tracer()
        rounds = []
        for _ in range(2):
            with tracer.capture("round") as fresh:
                with tracer.span("step"):
                    pass
            rounds.append(fresh)
        # Each capture saw only its own entry...
        assert all(r.calls == 1 for r in rounds)
        assert all(r.find("step").calls == 1 for r in rounds)
        assert rounds[0] is not rounds[1]
        # ...while the global tree aggregated both.
        merged = tracer.root.find("round")
        assert merged.calls == 2
        assert merged.find("step").calls == 2

    def test_last_seconds_tracks_most_recent_entry(self):
        tracer = Tracer()
        with tracer.span("timed") as node:
            pass
        assert node.last_seconds >= 0.0
        assert node.last_seconds <= node.seconds

    def test_to_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tree = tracer.to_dict()
        assert tree["name"] == "root"
        assert tree["children"][0]["name"] == "a"
        assert tree["children"][0]["children"][0]["name"] == "b"

    def test_render_shows_counts(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        assert "phase" in tracer.render()
        assert "x1" in tracer.render()

    def test_module_level_span_uses_default_tracer(self):
        with span("toplevel"):
            pass
        assert get_tracer().root.find("toplevel") is not None

    def test_set_tracer_swaps_default(self):
        isolated = Tracer()
        previous = set_tracer(isolated)
        try:
            with span("only-here"):
                pass
            assert isolated.root.find("only-here") is not None
            assert previous.root.find("only-here") is None
        finally:
            set_tracer(previous)

    def test_memory_tracing_records_peak(self):
        tracer = Tracer(trace_memory=True)
        with tracer.span("alloc"):
            _ = [0] * 50_000
        assert tracer.root.find("alloc").memory_peak_bytes > 0


class TestStopwatchShim:
    def test_measure_accumulates_laps(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        with watch.measure("a"):
            pass
        assert watch.get("a") > 0.0
        assert watch.total() == watch.get("a")

    def test_laps_dict_is_mutable(self):
        watch = Stopwatch()
        watch.laps["total"] = 1.5  # tests/bench code writes laps directly
        assert watch.get("total") == 1.5

    def test_from_span_mirrors_direct_children(self):
        root = Span("round")
        root.child("detect").seconds = 0.25
        root.child("swap").seconds = 0.5
        watch = Stopwatch.from_span(root)
        assert watch.laps == {"detect": 0.25, "swap": 0.5}
        assert watch.total() == 0.75

    def test_importable_from_legacy_path(self):
        from repro.utils.timing import Stopwatch as LegacyStopwatch

        assert LegacyStopwatch is Stopwatch


class TestExport:
    def test_snapshot_schema(self):
        with span("something"):
            get_registry().counter("demo.counter").add(1)
        snapshot = metrics_snapshot()
        assert snapshot["schema"] == "repro.obs/1"
        assert snapshot["counters"]["demo.counter"] == 1
        names = [c["name"] for c in snapshot["spans"]["children"]]
        assert "something" in names

    def test_report_renders_all_sections(self):
        get_registry().counter("demo.counter").add(1)
        get_registry().gauge("demo.gauge").set(2)
        get_registry().histogram("demo.histogram").record(3)
        report = render_metrics_report()
        assert "== counters ==" in report
        assert "== gauges ==" in report
        assert "== histograms ==" in report
        assert "demo.counter" in report


class TestMaintainerIntegration:
    @pytest.fixture(scope="class")
    def midas(self):
        config = MidasConfig(
            budget=PatternBudget(3, 7, 8),
            sup_min=0.5,
            num_clusters=3,
            sample_cap=60,
            seed=3,
            epsilon=0.0,  # every batch classifies as major
        )
        return Midas.bootstrap(aids_like(50, seed=9), config)

    def test_apply_update_emits_documented_spans(self, midas):
        update = random_insertions(midas.database, 10, seed=4)
        report = midas.apply_update(update)
        tree = get_tracer().root.find("midas.apply_update")
        assert tree is not None
        phases = {child.name for child in tree.children}
        assert {"detect", "clusters", "fct", "csg", "sample"} <= phases
        assert report.is_major  # epsilon=0 forces the pattern phases
        assert {"candidates", "swap"} <= phases
        nested = {c.name for c in tree.find("candidates").children}
        assert nested == {"generate", "filter"}

    def test_report_metrics_snapshot(self, midas):
        update = random_insertions(midas.database, 10, seed=5)
        report = midas.apply_update(update)
        assert report.metrics["spans"]["name"] == "midas.apply_update"
        counters = report.metrics["counters"]
        assert counters["midas.updates"] == 1
        assert counters["clustering.assignments"] == len(report.inserted_ids)
        assert report.stopwatch.get("detect") > 0.0
        assert (
            report.pattern_maintenance_seconds
            >= report.pattern_generation_seconds
        )
