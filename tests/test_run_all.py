"""Unit tests for the run-all report writer (with stubbed experiments)."""

from unittest import mock

from repro.bench.harness import ExperimentTable
from repro.bench.run_all import main, run_all


def _stub_figures():
    def runner_single(scale):
        table = ExperimentTable("stub single", ["x"])
        table.add_row(1)
        return table

    def runner_pair(scale):
        a = ExperimentTable("stub pair A", ["y"])
        a.add_row(2)
        b = ExperimentTable("stub pair B", ["z"])
        b.add_row(3)
        return a, b

    return {
        "stub1": ("Stub single-table experiment", runner_single),
        "stub2": ("Stub two-table experiment", runner_pair),
    }


class TestRunAll:
    def test_report_structure(self):
        with mock.patch(
            "repro.bench.run_all.FIGURES", _stub_figures()
        ):
            report, total = run_all("small")
        assert "# Experiment report" in report
        assert "## stub1" in report
        assert "## stub2" in report
        assert "stub pair A" in report and "stub pair B" in report
        assert report.count("```text") == 3
        assert total >= 0

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        with mock.patch(
            "repro.bench.run_all.FIGURES", _stub_figures()
        ):
            code = main(["--scale", "small", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "# Experiment report" in out.read_text()

    def test_main_stdout(self, capsys):
        with mock.patch(
            "repro.bench.run_all.FIGURES", _stub_figures()
        ):
            code = main(["--scale", "small"])
        assert code == 0
        assert "# Experiment report" in capsys.readouterr().out
