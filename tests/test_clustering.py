"""Unit tests for fine splitting and cluster maintenance."""

import pytest

from repro.clustering import ClusterSet, fine_split
from repro.trees import FCTSet, FeatureSpace

from .conftest import make_graph


@pytest.fixture
def setup(paper_db):
    graphs = dict(paper_db.items())
    fct_set = FCTSet(graphs, sup_min=3 / 9, max_edges=3)
    space = FeatureSpace(fct_set.fcts())
    clusters = ClusterSet.build(
        graphs, space, num_clusters=3, seed=0, max_cluster_size=5
    )
    return graphs, space, clusters


class TestFineSplit:
    def test_within_bound_unchanged(self, paper_db):
        graphs = dict(paper_db.items())
        parts = fine_split([0, 1, 2], graphs, max_cluster_size=5)
        assert parts == [{0, 1, 2}]

    def test_splits_to_bound(self, paper_db):
        graphs = dict(paper_db.items())
        parts = fine_split(list(graphs), graphs, max_cluster_size=4)
        assert all(len(p) <= 4 for p in parts)
        assert set().union(*parts) == set(graphs)
        assert sum(len(p) for p in parts) == len(graphs)

    def test_invalid_bound(self, paper_db):
        with pytest.raises(ValueError):
            fine_split([0], dict(paper_db.items()), 0)

    def test_similar_graphs_grouped(self, paper_db):
        graphs = dict(paper_db.items())
        # G0 and G3 are identical S-C-O stars; they should co-locate.
        parts = fine_split([0, 3, 4], graphs, max_cluster_size=2)
        together = [p for p in parts if 0 in p]
        assert 3 in together[0]


class TestClusterBuild:
    def test_partition(self, setup, paper_db):
        _, _, clusters = setup
        all_members = set()
        for cid in clusters.cluster_ids():
            members = clusters.members(cid)
            assert not (members & all_members)
            all_members |= members
        assert all_members == set(paper_db.ids())

    def test_max_size_respected(self, setup):
        _, _, clusters = setup
        for cid in clusters.cluster_ids():
            assert len(clusters.members(cid)) <= 5

    def test_cluster_weights_sum_to_one(self, setup):
        _, _, clusters = setup
        assert sum(clusters.cluster_weights().values()) == pytest.approx(1.0)

    def test_membership_lookup(self, setup):
        _, _, clusters = setup
        for cid in clusters.cluster_ids():
            for gid in clusters.members(cid):
                assert clusters.cluster_of(gid) == cid

    def test_empty_build(self, setup):
        _, space, _ = setup
        clusters = ClusterSet.build({}, space, 3)
        assert len(clusters) == 0


class TestClusterMaintenance:
    def test_assign_new_graph(self, setup):
        graphs, _, clusters = setup
        new_graph = make_graph("COO", [(0, 1), (0, 2)])
        graphs[100] = new_graph
        cid = clusters.assign(100, new_graph, graphs)
        assert clusters.cluster_of(100) == cid
        assert 100 in clusters.members(cid)
        assert cid in clusters.touched_added

    def test_assign_duplicate_rejected(self, setup):
        graphs, _, clusters = setup
        with pytest.raises(ValueError):
            clusters.assign(0, graphs[0], graphs)

    def test_assign_goes_to_similar_cluster(self, setup):
        graphs, _, clusters = setup
        # A clone of G7 (O-C-O) should join G7's cluster.
        clone = make_graph("COO", [(0, 1), (0, 2)])
        graphs[101] = clone
        cid = clusters.assign(101, clone, graphs)
        assert clusters.cluster_of(7) == cid

    def test_remove_graph(self, setup):
        _, _, clusters = setup
        cid = clusters.cluster_of(0)
        clusters.remove(0)
        assert 0 not in clusters.members(cid) if cid in clusters.cluster_ids() else True
        assert cid in clusters.touched_removed
        with pytest.raises(ValueError):
            clusters.remove(0)

    def test_remove_last_member_deletes_cluster(self, setup):
        _, _, clusters = setup
        cid = clusters.cluster_of(0)
        for gid in list(clusters.members(cid)):
            clusters.remove(gid)
        assert cid not in clusters.cluster_ids()

    def test_overflow_triggers_split(self, setup):
        graphs, _, clusters = setup
        for i in range(10):
            g = make_graph("COO", [(0, 1), (0, 2)])
            graphs[200 + i] = g
            clusters.assign(200 + i, g, graphs)
        for cid in clusters.cluster_ids():
            assert len(clusters.members(cid)) <= 5

    def test_centroid_is_mean(self, setup):
        import numpy as np

        graphs, space, clusters = setup
        for cid in clusters.cluster_ids():
            members = sorted(clusters.members(cid))
            expected = np.mean(
                [space.vector_for_known(g) for g in members], axis=0
            )
            assert np.allclose(clusters.centroid(cid), expected)

    def test_refresh_feature_space(self, setup, paper_db):
        graphs, _, clusters = setup
        new_fct = FCTSet(dict(paper_db.items()), sup_min=2 / 9, max_edges=3)
        new_space = FeatureSpace(new_fct.fcts())
        memberships = {
            gid: clusters.cluster_of(gid) for gid in paper_db.ids()
        }
        clusters.refresh_feature_space(new_space)
        assert clusters.feature_space is new_space
        for gid, cid in memberships.items():
            assert clusters.cluster_of(gid) == cid

    def test_reset_touched(self, setup):
        graphs, _, clusters = setup
        clusters.remove(0)
        clusters.reset_touched()
        assert clusters.touched_added == set()
        assert clusters.touched_removed == set()
