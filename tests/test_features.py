"""Unit tests for repro.trees.features (clustering feature vectors)."""

import numpy as np
import pytest

from repro.trees import FCTSet, FeatureSpace

from .conftest import make_graph


@pytest.fixture
def space(paper_db):
    fct_set = FCTSet(dict(paper_db.items()), sup_min=3 / 9, max_edges=3)
    return FeatureSpace(fct_set.fcts()), fct_set


class TestFeatureSpace:
    def test_dimensions(self, space):
        feature_space, fct_set = space
        assert len(feature_space) == len(fct_set.fcts())

    def test_duplicate_features_rejected(self, space):
        feature_space, fct_set = space
        features = fct_set.fcts()
        with pytest.raises(ValueError):
            FeatureSpace(features + features[:1])

    def test_vector_for_known_matches_cover(self, space, paper_db):
        feature_space, fct_set = space
        for graph_id in paper_db.ids():
            vector = feature_space.vector_for_known(graph_id)
            for i, feature in enumerate(feature_space.features):
                assert vector[i] == (1.0 if graph_id in feature.cover else 0.0)

    def test_vector_for_graph_agrees_with_known(self, space, paper_db):
        feature_space, _ = space
        for graph_id, graph in paper_db.items():
            known = feature_space.vector_for_known(graph_id)
            computed = feature_space.vector_for_graph(graph)
            assert np.array_equal(known, computed)

    def test_vector_for_unseen_graph(self, space):
        feature_space, _ = space
        stranger = make_graph("PP", [(0, 1)])
        assert feature_space.vector_for_graph(stranger).sum() == 0.0

    def test_matrix_for_known_row_order(self, space, paper_db):
        feature_space, _ = space
        ids = paper_db.ids()
        matrix = feature_space.matrix_for_known(ids)
        assert matrix.shape == (len(ids), len(feature_space))
        for row, graph_id in enumerate(ids):
            assert np.array_equal(
                matrix[row], feature_space.vector_for_known(graph_id)
            )

    def test_matrix_for_graphs_sorted_ids(self, space, paper_db):
        feature_space, _ = space
        graphs = dict(paper_db.items())
        ids, matrix = feature_space.matrix_for_graphs(graphs)
        assert ids == sorted(graphs)
        assert matrix.shape[0] == len(ids)

    def test_empty_feature_space(self):
        space = FeatureSpace([])
        assert len(space) == 0
        assert space.vector_for_graph(make_graph("CO", [(0, 1)])).shape == (0,)
