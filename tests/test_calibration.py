"""Unit tests for ε calibration."""

import pytest

from repro.datasets import aids_like, family_injection, random_insertions
from repro.graph import GraphDatabase
from repro.graphlets import database_distribution, distribution_distance
from repro.midas.calibration import recommend_epsilon

from .conftest import make_graph


class TestRecommendEpsilon:
    @pytest.fixture(scope="class")
    def db(self):
        return aids_like(60, seed=51)

    def test_validation(self, db):
        tiny = GraphDatabase([make_graph("CO", [(0, 1)])])
        with pytest.raises(ValueError):
            recommend_epsilon(tiny)
        with pytest.raises(ValueError):
            recommend_epsilon(db, batch_fraction=0.0)
        with pytest.raises(ValueError):
            recommend_epsilon(db, trials=0)

    def test_deterministic(self, db):
        a = recommend_epsilon(db, trials=20, seed=7)
        b = recommend_epsilon(db, trials=20, seed=7)
        assert a.epsilon == b.epsilon
        assert a.null_distances == b.null_distances

    def test_recommendation_positive_and_bounded(self, db):
        rec = recommend_epsilon(db, trials=30, seed=3)
        assert rec.epsilon >= 0.0
        assert rec.epsilon <= rec.null_max + 1e-12
        assert rec.trials == 30

    def test_routine_churn_classified_minor(self, db):
        """Most random batches of the calibrated size must fall below
        the recommended ε (that is the construction's point)."""
        rec = recommend_epsilon(
            db, batch_fraction=0.1, trials=40, q=95.0, seed=5
        )
        base = database_distribution(dict(db.items()))
        minor = 0
        trials = 10
        for seed in range(trials):
            update = random_insertions(db, 10, seed=100 + seed)
            updated = db.updated(update)
            after = database_distribution(dict(updated.items()))
            if distribution_distance(base, after) < rec.epsilon:
                minor += 1
        assert minor >= trials // 2

    def test_family_batch_classified_major(self, db):
        """A genuine family shift should exceed the calibrated ε."""
        rec = recommend_epsilon(
            db, batch_fraction=0.1, trials=40, q=95.0, seed=5
        )
        base = database_distribution(dict(db.items()))
        update = family_injection(30, seed=9)
        updated = db.updated(update)
        after = database_distribution(dict(updated.items()))
        assert distribution_distance(base, after) >= rec.epsilon

    def test_percentile_monotone(self, db):
        low = recommend_epsilon(db, trials=30, q=50.0, seed=2)
        high = recommend_epsilon(db, trials=30, q=99.0, seed=2)
        assert high.epsilon >= low.epsilon
