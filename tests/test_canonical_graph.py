"""Unit tests for repro.graph.canonical (graph canonical forms)."""

import random

from repro.graph import (
    LabeledGraph,
    are_isomorphic,
    canonical_certificate,
    canonical_key,
)

from .conftest import make_graph


def shuffled_copy(graph: LabeledGraph, seed: int) -> LabeledGraph:
    """An isomorphic copy with permuted vertex identities."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    permuted = list(vertices)
    rng.shuffle(permuted)
    mapping = dict(zip(vertices, permuted))
    clone = LabeledGraph()
    for v in vertices:
        clone.add_vertex(mapping[v], graph.label(v))
    for u, v in graph.edges():
        clone.add_edge(mapping[u], mapping[v])
    return clone


class TestCertificate:
    def test_empty_graph(self):
        assert canonical_certificate(LabeledGraph()) == ((), ())

    def test_single_vertex(self):
        g = make_graph("C", [])
        labels, edges = canonical_certificate(g)
        assert labels == ("C",)
        assert edges == ()

    def test_isomorphic_graphs_same_certificate(self):
        g1 = make_graph("CONC", [(0, 1), (1, 2), (2, 3), (3, 0)])
        for seed in range(5):
            g2 = shuffled_copy(g1, seed)
            assert canonical_certificate(g1) == canonical_certificate(g2)

    def test_label_difference_changes_certificate(self):
        g1 = make_graph("CO", [(0, 1)])
        g2 = make_graph("CN", [(0, 1)])
        assert canonical_certificate(g1) != canonical_certificate(g2)

    def test_structure_difference_changes_certificate(self, triangle, path3):
        assert canonical_certificate(triangle) != canonical_certificate(path3)

    def test_regular_graph_with_same_labels(self):
        # C6 cycle vs two C3 triangles: same degree sequence and labels.
        c6 = make_graph("CCCCCC", [(i, (i + 1) % 6) for i in range(6)])
        two_triangles = make_graph(
            "CCCCCC",
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert canonical_certificate(c6) != canonical_certificate(two_triangles)

    def test_key_is_string(self):
        g = make_graph("CO", [(0, 1)])
        assert isinstance(canonical_key(g), str)


class TestAreIsomorphic:
    def test_identical(self, triangle):
        assert are_isomorphic(triangle, triangle.copy())

    def test_random_molecules_self_isomorphic(self):
        from repro.datasets import MoleculeGenerator

        generator = MoleculeGenerator(seed=3)
        for seed, molecule in enumerate(generator.generate_many(10)):
            assert are_isomorphic(molecule, shuffled_copy(molecule, seed))

    def test_non_isomorphic_fast_reject(self, triangle, path3):
        assert not are_isomorphic(triangle, path3)

    def test_automorphic_structures(self):
        # Star with identical leaves has many automorphisms.
        star = make_graph("COOO", [(0, 1), (0, 2), (0, 3)])
        assert are_isomorphic(star, shuffled_copy(star, 4))
