"""Unit tests for repro.midas.small_patterns (η ≤ 2 tray maintenance)."""

import pytest

from repro.midas import SmallPatternTray

from .conftest import make_graph


@pytest.fixture
def tray(paper_db):
    return SmallPatternTray(dict(paper_db.items()), num_edges=3, num_paths=2)


class TestConstruction:
    def test_invalid_sizes(self, paper_db):
        with pytest.raises(ValueError):
            SmallPatternTray(dict(paper_db.items()), num_edges=-1)

    def test_edge_frequencies_exact(self, tray):
        assert tray.edge_frequency(("C", "O")) == 8
        assert tray.edge_frequency(("C", "N")) == 2
        assert tray.edge_frequency(("C", "S")) == 3
        assert tray.edge_frequency(("X", "Y")) == 0

    def test_path_frequencies_exact(self, tray):
        # O-C-O appears in G5, G7, G8.
        assert tray.path_frequency(("C", ("O", "O"))) == 3
        # O-C-S appears in G0, G3, G5.
        assert tray.path_frequency(("C", ("O", "S"))) == 3

    def test_top_edges_ranked(self, tray):
        top = tray.top_edges()
        assert top[0][0] == ("C", "O")
        assert len(top) == 3

    def test_refresh_materialises_patterns(self, tray):
        patterns = tray.refresh()
        assert len(patterns) == 5  # 3 edges + 2 paths
        edge_patterns = [p for p in patterns if p.num_edges == 1]
        path_patterns = [p for p in patterns if p.num_edges == 2]
        assert len(edge_patterns) == 3
        assert len(path_patterns) == 2
        for pattern in path_patterns:
            assert pattern.num_vertices == 3


class TestMaintenance:
    def test_add_then_remove_roundtrip(self, tray):
        before = dict(tray.top_edges())
        extra = [make_graph("BO", [(0, 1)]), make_graph("BO", [(0, 1)])]
        tray.add_graphs(extra)
        assert tray.edge_frequency(("B", "O")) == 2
        tray.remove_graphs(extra)
        assert tray.edge_frequency(("B", "O")) == 0
        assert dict(tray.top_edges()) == before
        assert tray.db_size == 9

    def test_matches_scratch(self, paper_db, tray):
        extra = {
            100: make_graph("BOO", [(0, 1), (0, 2)]),
            101: make_graph("BO", [(0, 1)]),
        }
        tray.add_graphs(extra.values())
        merged = dict(paper_db.items())
        merged.update(extra)
        scratch = SmallPatternTray(merged, num_edges=3, num_paths=2)
        assert tray.top_edges() == scratch.top_edges()
        assert tray.top_paths() == scratch.top_paths()

    def test_new_family_rises_into_tray(self, tray):
        family = [make_graph("BO", [(0, 1)]) for _ in range(10)]
        tray.add_graphs(family)
        assert ("B", "O") in dict(tray.top_edges())
