"""Unit tests for the FCT-Index, IFE-Index and their joint maintenance."""

import pytest

from repro.index import FCTIndex, IFEIndex, IndexPair
from repro.isomorphism import contains, count_embeddings, covered_graphs
from repro.trees import FCTSet

from .conftest import make_graph


@pytest.fixture
def setting(paper_db):
    graphs = dict(paper_db.items())
    fct_set = FCTSet(graphs, sup_min=3 / 9, max_edges=3)
    return graphs, fct_set


@pytest.fixture
def fct_index(setting):
    graphs, fct_set = setting
    features = fct_set.fcts() + [
        e for e in fct_set.frequent_edges() if not e.closed
    ]
    return FCTIndex.build(features, graphs)


class TestFCTIndex:
    def test_trie_contains_all_features(self, fct_index):
        for feature in fct_index.features():
            assert fct_index.trie.lookup(feature.tokens()) == feature.key

    def test_tg_counts_match_vf2(self, setting, fct_index):
        graphs, _ = setting
        for feature in fct_index.features():
            row = fct_index.tg.row(feature.key)
            for graph_id, count in row.items():
                assert count == count_embeddings(
                    graphs[graph_id], feature.tree, limit=64
                )

    def test_graphs_with_feature_matches_cover(self, setting, fct_index):
        _, fct_set = setting
        for feature in fct_index.features():
            assert fct_index.graphs_with_feature(feature.key) == feature.cover

    def test_pattern_columns(self, fct_index):
        pattern = make_graph("COS", [(0, 1), (0, 2)])
        fct_index.add_pattern(42, pattern)
        column = fct_index.tp.column(42)
        assert column  # the S-C-O star embeds several features
        fct_index.remove_pattern(42)
        assert fct_index.tp.column(42) == {}

    def test_remove_feature(self, fct_index):
        feature = fct_index.features()[0]
        fct_index.remove_feature(feature.key)
        assert feature.key not in fct_index
        assert fct_index.trie.lookup(feature.tokens()) is None
        assert fct_index.tg.row(feature.key) == {}

    def test_add_graph_column(self, setting, fct_index):
        graphs, _ = setting
        new_graph = make_graph("COS", [(0, 1), (0, 2)])
        fct_index.add_graph(500, new_graph)
        hits = {
            key
            for key in fct_index.feature_keys()
            if 500 in fct_index.tg.row(key)
        }
        assert hits
        fct_index.remove_graph(500)
        for key in fct_index.feature_keys():
            assert 500 not in fct_index.tg.row(key)

    def test_candidate_prefilter_sound(self, setting, fct_index, paper_db):
        """The prefilter must never discard a true container (no false
        negatives); VF2 confirms the remaining candidates."""
        graphs, _ = setting
        for pattern in (
            make_graph("CO", [(0, 1)]),
            make_graph("COS", [(0, 1), (0, 2)]),
            make_graph("COO", [(0, 1), (0, 2)]),
            make_graph("CN", [(0, 1)]),
        ):
            truth = covered_graphs(paper_db, pattern)
            candidates = fct_index.candidate_graphs(pattern, graphs)
            assert truth <= candidates

    def test_memory_positive(self, fct_index):
        assert fct_index.memory_bytes() > 0


class TestIFEIndex:
    def test_build_counts(self, setting):
        graphs, fct_set = setting
        index = IFEIndex.build(fct_set.infrequent_edge_labels(), graphs)
        assert index.is_indexed(("C", "N"))
        assert index.graphs_with_edge(("C", "N")) == {1, 4}

    def test_frequent_labels_not_indexed(self, setting):
        graphs, fct_set = setting
        index = IFEIndex.build(fct_set.infrequent_edge_labels(), graphs)
        assert not index.is_indexed(("C", "O"))

    def test_pattern_columns(self, setting):
        graphs, fct_set = setting
        index = IFEIndex.build(fct_set.infrequent_edge_labels(), graphs)
        index.add_pattern(7, make_graph("CN", [(0, 1)]))
        assert index.ep.get(("C", "N"), 7) == 1
        index.remove_pattern(7)
        assert index.ep.get(("C", "N"), 7) == 0

    def test_set_edge_labels_reconciles(self, setting):
        graphs, fct_set = setting
        index = IFEIndex.build(fct_set.infrequent_edge_labels(), graphs)
        index.set_edge_labels({("C", "O")}, graphs)
        assert index.is_indexed(("C", "O"))
        assert not index.is_indexed(("C", "N"))
        assert len(index.graphs_with_edge(("C", "O"))) == 8


class TestIndexPair:
    def test_build(self, setting):
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        assert pair.memory_bytes() > 0

    def test_edge_cover_dispatch(self, setting, paper_db):
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        # Frequent edge -> FCT index.
        co_cover = pair.graphs_covering_edge(("C", "O"))
        assert co_cover == covered_graphs(paper_db, make_graph("CO", [(0, 1)]))
        # Infrequent edge -> IFE index.
        cn_cover = pair.graphs_covering_edge(("C", "N"))
        assert cn_cover == {1, 4}
        # Unknown edge -> None (fall back to scanning).
        assert pair.graphs_covering_edge(("X", "Y")) is None

    def test_candidate_graphs_sound(self, setting, paper_db):
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        pattern = make_graph("CON", [(0, 1), (0, 2)])
        truth = covered_graphs(paper_db, pattern)
        assert truth <= pair.candidate_graphs(pattern, graphs)

    def test_apply_update_consistency(self, setting, paper_db):
        """After a batch, index answers must match a fresh rebuild."""
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        additions = {
            100: make_graph("COS", [(0, 1), (1, 2)]),
            101: make_graph("CO", [(0, 1)]),
        }
        removed = [4]
        fct_set.apply(added=additions, removed=removed)
        new_graphs = {g: v for g, v in graphs.items() if g != 4}
        new_graphs.update(additions)
        pair.apply_update(
            fct_set, new_graphs, added_ids=additions, removed_ids=removed
        )
        fresh = IndexPair.build(fct_set, new_graphs)
        for feature in fct_set.fcts():
            assert pair.fct.graphs_with_feature(feature.key) == (
                fresh.fct.graphs_with_feature(feature.key)
            )
        assert pair.ife.edge_labels() == fresh.ife.edge_labels()

    def test_apply_update_deletion_heavy(self, setting):
        """A batch deleting most of the database must leave both indices
        structurally equal to a from-scratch rebuild — deletions drive
        feature churn (support drops below sup_min) as well as column
        removal, which is the hard half of the maintenance path."""
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        removed = sorted(graphs)[: len(graphs) - 3]
        fct_set.apply(added={}, removed=removed)
        new_graphs = {
            g: v for g, v in graphs.items() if g not in set(removed)
        }
        pair.apply_update(
            fct_set, new_graphs, added_ids=[], removed_ids=removed
        )
        fresh = IndexPair.build(fct_set, new_graphs)
        assert pair.fct.feature_keys() == fresh.fct.feature_keys()
        for key in fresh.fct.feature_keys():
            assert pair.fct.tg.row(key) == fresh.fct.tg.row(key)
        assert pair.ife.edge_labels() == fresh.ife.edge_labels()
        for label in fresh.ife.edge_labels():
            assert pair.ife.graphs_with_edge(label) == (
                fresh.ife.graphs_with_edge(label)
            )

    def test_apply_update_mixed_batch(self, setting):
        """Simultaneous deletions and insertions in one batch: the
        reconciled indices must equal a rebuild and the containment
        prefilter must stay sound over the post-batch database."""
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        removed = sorted(graphs)[:3]
        additions = {
            200: make_graph("COSN", [(0, 1), (1, 2), (0, 3)]),
            201: make_graph("COO", [(0, 1), (0, 2)]),
            202: make_graph("CN", [(0, 1)]),
        }
        fct_set.apply(added=additions, removed=removed)
        new_graphs = {
            g: v for g, v in graphs.items() if g not in set(removed)
        }
        new_graphs.update(additions)
        pair.apply_update(
            fct_set,
            new_graphs,
            added_ids=additions,
            removed_ids=removed,
        )
        fresh = IndexPair.build(fct_set, new_graphs)
        assert pair.fct.feature_keys() == fresh.fct.feature_keys()
        for key in fresh.fct.feature_keys():
            assert pair.fct.tg.row(key) == fresh.fct.tg.row(key)
        for label in fresh.ife.edge_labels():
            assert pair.ife.graphs_with_edge(label) == (
                fresh.ife.graphs_with_edge(label)
            )
        for pattern in (
            make_graph("CO", [(0, 1)]),
            make_graph("CON", [(0, 1), (0, 2)]),
            make_graph("COS", [(0, 1), (1, 2)]),
        ):
            truth = {
                gid
                for gid, graph in new_graphs.items()
                if contains(graph, pattern)
            }
            assert truth <= pair.candidate_graphs(pattern, new_graphs)

    def test_sync_patterns(self, setting):
        graphs, fct_set = setting
        pair = IndexPair.build(fct_set, graphs)
        patterns = {0: make_graph("COS", [(0, 1), (0, 2)])}
        pair.sync_patterns(patterns)
        assert pair.fct.tp.column(0)
        pair.sync_patterns({})
        assert pair.fct.tp.column(0) == {}
