"""Unit tests for repro.midas.pruning (Equation 2 and Definition 5.5)."""

import pytest

from repro.midas import PruningContext
from repro.patterns import CoverageOracle

from .conftest import make_graph


@pytest.fixture
def oracle(paper_db):
    return CoverageOracle(dict(paper_db.items()))


class TestPruningContext:
    def test_invalid_kappa(self, oracle):
        with pytest.raises(ValueError):
            PruningContext(oracle, [], kappa=2.0)

    def test_threshold_floor(self, oracle):
        # No patterns -> min unique cover 0 -> floored threshold of 1.
        context = PruningContext(oracle, [], kappa=0.1)
        assert context.threshold == 1.0

    def test_threshold_scales_with_unique_cover(self, oracle):
        co = make_graph("CO", [(0, 1)])
        cn = make_graph("CN", [(0, 1)])
        context = PruningContext(oracle, [co, cn], kappa=0.5)
        # unique(co) = 6 (graphs with C-O but no C-N), unique(cn) = 1 (G4).
        assert context.threshold == pytest.approx(1.5)

    def test_edge_cover_from_scan(self, oracle):
        context = PruningContext(oracle, [], kappa=0.1)
        assert context.edge_cover(("C", "N")) == frozenset({1, 4})
        assert context.edge_cover(("X", "Y")) == frozenset()

    def test_edge_cover_cached(self, oracle):
        context = PruningContext(oracle, [], kappa=0.1)
        first = context.edge_cover(("C", "O"))
        assert context.edge_cover(("C", "O")) is first

    def test_edge_gate_semantics(self, oracle):
        # P covers everything except G4 (C-N); the weakest pattern has a
        # small unique cover, so the threshold is low.  Edges only found
        # in covered graphs fail the gate; C-N reaches uncovered G4.
        co = make_graph("CO", [(0, 1)])
        coo = make_graph("COO", [(0, 1), (0, 2)])
        context = PruningContext(oracle, [co, coo], kappa=0.0)
        assert context.threshold == 1.0  # min unique cover is 0, floored
        assert not context.edge_gate(("C", "O"))
        assert context.edge_gate(("C", "N"))

    def test_is_promising(self, oracle):
        co = make_graph("CO", [(0, 1)])
        coo = make_graph("COO", [(0, 1), (0, 2)])
        context = PruningContext(oracle, [co, coo], kappa=0.0)
        cn = make_graph("CN", [(0, 1)])
        redundant = make_graph("COS", [(0, 1), (0, 2)])
        assert context.is_promising(cn)             # covers uncovered G4
        assert not context.is_promising(redundant)  # subset of C-O cover

    def test_edge_priority_specificity(self, oracle):
        co = make_graph("CO", [(0, 1)])
        coo = make_graph("COO", [(0, 1), (0, 2)])
        context = PruningContext(oracle, [co, coo], kappa=0.0)
        # Only G4 (C-N) is uncovered: C-N is maximally specific to it.
        assert context.edge_priority(("C", "N")) == pytest.approx(0.5)
        # C-O only appears in covered graphs.
        assert context.edge_priority(("C", "O")) == 0.0
        # Unknown labels have empty cover.
        assert context.edge_priority(("X", "Y")) == 0.0

    def test_priority_in_unit_interval(self, oracle):
        context = PruningContext(oracle, [], kappa=0.1)
        for label in (("C", "O"), ("C", "N"), ("C", "S")):
            assert 0.0 <= context.edge_priority(label) <= 1.0

    def test_single_pattern_threshold_is_its_cover(self, oracle):
        """Definition 5.5 with |P| = 1: the pattern's unique cover is its
        whole cover, so only candidates with larger marginal coverage
        are promising."""
        co = make_graph("CO", [(0, 1)])
        context = PruningContext(oracle, [co], kappa=0.0)
        assert context.threshold == pytest.approx(8.0)
        assert not context.is_promising(make_graph("CN", [(0, 1)]))

    def test_gate_with_index(self, paper_db):
        from repro.index import IndexPair
        from repro.trees import FCTSet

        graphs = dict(paper_db.items())
        fct_set = FCTSet(graphs, sup_min=3 / 9, max_edges=3)
        pair = IndexPair.build(fct_set, graphs)
        oracle = CoverageOracle(graphs, index_pair=pair)
        context = PruningContext(oracle, [], kappa=0.1, index_pair=pair)
        # Index-backed edge covers must agree with the direct scan.
        direct = PruningContext(oracle, [], kappa=0.1)
        for label in (("C", "O"), ("C", "N"), ("C", "S")):
            assert context.edge_cover(label) == direct.edge_cover(label)
