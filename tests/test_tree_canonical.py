"""Unit tests for repro.trees.canonical."""

import random

import pytest

from repro.graph import GraphError, LabeledGraph
from repro.trees import (
    canonical_root,
    canonical_string,
    canonical_tokens,
    tree_centers,
    tree_certificate,
    tree_from_tokens,
)

from .conftest import make_graph


def random_tree(n: int, labels: str, rng: random.Random) -> LabeledGraph:
    g = LabeledGraph()
    g.add_vertex(0, rng.choice(labels))
    for v in range(1, n):
        g.add_vertex(v, rng.choice(labels))
        g.add_edge(v, rng.randrange(v))
    return g


def shuffled_tree(tree: LabeledGraph, seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    vertices = sorted(tree.vertices(), key=repr)
    permuted = list(vertices)
    rng.shuffle(permuted)
    mapping = dict(zip(vertices, permuted))
    clone = LabeledGraph()
    for v in vertices:
        clone.add_vertex(mapping[v], tree.label(v))
    for u, v in tree.edges():
        clone.add_edge(mapping[u], mapping[v])
    return clone


class TestCenters:
    def test_single_vertex(self):
        g = make_graph("C", [])
        assert tree_centers(g) == [0]

    def test_path_odd(self):
        g = make_graph("CCC", [(0, 1), (1, 2)])
        assert tree_centers(g) == [1]

    def test_path_even(self):
        g = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        assert sorted(tree_centers(g)) == [1, 2]

    def test_star_center(self):
        g = make_graph("COOO", [(0, 1), (0, 2), (0, 3)])
        assert tree_centers(g) == [0]

    def test_non_tree_raises(self, triangle):
        with pytest.raises(GraphError):
            tree_centers(triangle)


class TestCertificate:
    @pytest.mark.parametrize("seed", range(10))
    def test_isomorphism_invariance(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng.randint(2, 9), "CNO", rng)
        assert tree_certificate(tree) == tree_certificate(
            shuffled_tree(tree, seed)
        )

    def test_label_sensitivity(self):
        t1 = make_graph("CO", [(0, 1)])
        t2 = make_graph("CN", [(0, 1)])
        assert tree_certificate(t1) != tree_certificate(t2)

    def test_shape_sensitivity(self):
        path = make_graph("CCCC", [(0, 1), (1, 2), (2, 3)])
        star = make_graph("CCCC", [(0, 1), (0, 2), (0, 3)])
        assert tree_certificate(path) != tree_certificate(star)

    def test_canonical_root_is_center(self):
        g = make_graph("OCS", [(0, 1), (1, 2)])
        assert canonical_root(g) == 1


class TestTokens:
    def test_paper_example(self):
        # O - C - S rooted at C serialises to "C $ O S" (Section 5.1).
        g = make_graph("COS", [(0, 1), (0, 2)])
        assert canonical_string(g).startswith("C $ O S")

    def test_sibling_separator(self):
        g = make_graph("COSN", [(0, 1), (0, 2), (1, 3)])
        tokens = canonical_tokens(g)
        assert tokens.count("$") >= 2

    def test_single_vertex(self):
        g = make_graph("C", [])
        assert canonical_tokens(g) == ["C"]

    def test_empty(self):
        assert canonical_tokens(LabeledGraph()) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip(self, seed):
        rng = random.Random(seed + 50)
        tree = random_tree(rng.randint(1, 8), "CNOS", rng)
        rebuilt = tree_from_tokens(canonical_tokens(tree))
        assert tree_certificate(rebuilt) == tree_certificate(tree)

    def test_tokens_isomorphism_invariant(self):
        tree = make_graph("CCON", [(0, 1), (1, 2), (1, 3)])
        for seed in range(5):
            assert canonical_tokens(shuffled_tree(tree, seed)) == (
                canonical_tokens(tree)
            )

    def test_bad_tokens_raise(self):
        with pytest.raises(ValueError):
            tree_from_tokens(["C", "O"])  # missing separator
