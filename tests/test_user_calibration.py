"""Calibration checks for the simulated user (DESIGN.md substitution).

The paper's Example 1.1 anchors the latency model: a 41-step
edge-at-a-time construction took ≈145 s (≈3.5 s/step) and a 20-step
pattern-at-a-time construction ≈102 s (≈5.1 s/step including pattern
browsing).  The simulated user should land in those neighbourhoods.
"""

import pytest

from repro.graph import LabeledGraph
from repro.workload import SimulatedUser, UserProfile, plan_formulation

from .conftest import make_graph


def boronic_acid_like_query() -> LabeledGraph:
    """A ~17-vertex, ~24-step molecule in the spirit of Example 1.1."""
    graph = LabeledGraph()
    labels = "CCCCCCBOOHHHHCOOH"
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),   # ring
        (5, 6), (6, 7), (6, 8), (7, 9), (8, 10),          # B(OH)(OH)
        (0, 11), (1, 12),                                  # hydrogens
        (2, 13), (13, 14), (13, 15), (15, 16),             # side chain
    ]
    for u, v in edges:
        graph.add_edge(u, v)
    graph.name = "boronic-like"
    return graph


class TestCalibration:
    def test_edge_mode_seconds_per_step(self):
        query = boronic_acid_like_query()
        user = SimulatedUser(seed=0)
        outcome = user.formulate_edge_at_a_time(query)
        per_step = outcome.qft_seconds / outcome.steps
        # Paper anchor: ≈3.5 s/step for edge-at-a-time.
        assert 2.0 <= per_step <= 5.0

    def test_pattern_mode_beats_edge_mode(self):
        query = boronic_acid_like_query()
        panel = [
            make_graph("CCCCCC", [(i, (i + 1) % 6) for i in range(6)]),
            make_graph("BOOHH", [(0, 1), (0, 2), (1, 3), (2, 4)]),
        ]
        user = SimulatedUser(seed=1, max_edits=2)
        pattern_mode = user.formulate(query, panel)
        edge_mode = user.formulate_edge_at_a_time(query)
        assert pattern_mode.steps < edge_mode.steps
        assert pattern_mode.qft_seconds < edge_mode.qft_seconds

    def test_step_ratio_matches_example(self):
        """Example 1.1: 20 pattern steps vs 41 edge steps ≈ 0.49 ratio;
        on the analogue query the planner should cut steps by ≥ 30%."""
        query = boronic_acid_like_query()
        panel = [
            make_graph("CCCCCC", [(i, (i + 1) % 6) for i in range(6)]),
            make_graph("BOOHH", [(0, 1), (0, 2), (1, 3), (2, 4)]),
        ]
        plan = plan_formulation(query, panel, max_edits=2)
        edge_steps = query.num_vertices + query.num_edges
        assert plan.steps <= 0.7 * edge_steps

    def test_vmt_share_is_minor(self):
        """VMT is a browsing overhead, not the bulk of QFT (Fig 9 shows
        VMT ≈ 6–9 s against QFT in the tens of seconds)."""
        query = boronic_acid_like_query()
        panel = [
            make_graph("CCCCCC", [(i, (i + 1) % 6) for i in range(6)]),
            make_graph("BOOHH", [(0, 1), (0, 2), (1, 3), (2, 4)]),
        ]
        user = SimulatedUser(seed=2, max_edits=2)
        outcome = user.formulate(query, panel)
        assert outcome.vmt_seconds < outcome.qft_seconds * 0.5

    def test_profile_is_tunable(self):
        fast = UserProfile(
            vertex_add=0.1,
            edge_add=0.1,
            deletion=0.1,
            pattern_drag=0.1,
            pattern_scan=0.01,
            noise_sigma=0.0,
        )
        query = boronic_acid_like_query()
        quick = SimulatedUser(profile=fast, seed=0).formulate_edge_at_a_time(
            query
        )
        normal = SimulatedUser(seed=0).formulate_edge_at_a_time(query)
        assert quick.qft_seconds < normal.qft_seconds


class TestExampleNarrative:
    def test_refreshed_panel_reduces_steps(self):
        """Example 1.2: the refreshed panel (with the ester pattern)
        needs fewer steps than the stale one on an ester query."""
        ester_query = LabeledGraph()
        labels = "CCCBOOCC"
        for i, label in enumerate(labels):
            ester_query.add_vertex(i, label)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (4, 6), (5, 7)]:
            ester_query.add_edge(u, v)
        ester_query.name = "ester"
        stale_panel = [
            make_graph("CCC", [(0, 1), (1, 2)]),
        ]
        fresh_panel = stale_panel + [
            make_graph("BOOCC", [(0, 1), (0, 2), (1, 3), (2, 4)]),
        ]
        stale_plan = plan_formulation(ester_query, stale_panel, max_edits=1)
        fresh_plan = plan_formulation(ester_query, fresh_panel, max_edits=1)
        assert fresh_plan.steps < stale_plan.steps
