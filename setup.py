"""Setuptools shim so `pip install -e .` works offline (no wheel package).

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install code path on machines without the `wheel` package.
"""
from setuptools import setup

setup()
