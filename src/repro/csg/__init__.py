"""Cluster summary graphs: closure-based summaries and their maintenance."""

from .maintenance import CSGSet
from .summary import SummaryGraph, build_csg

__all__ = ["CSGSet", "SummaryGraph", "build_csg"]
