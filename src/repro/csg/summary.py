"""Cluster summary graphs (CSG).

CATAPULT summarises each graph cluster into a single *closure* graph by
iteratively integrating the member graphs: vertices are aligned (dummy
vertices standing in for absent ones) and each summary edge carries the
IDs of the member graphs containing it (paper, Sections 2.3 and 4.4,
Figures 4 and 6).  Canned-pattern candidates are later extracted from
these CSGs by weighted random walks.

:class:`SummaryGraph` implements the closure with exactly the update
rules of Section 4.4:

* **insertion** of ``G⁺``: align ``G⁺`` onto the summary; every aligned
  edge already present gains ``G⁺``'s ID, every unaligned edge is added
  with label ``{id(G⁺)}``;
* **deletion** of ``G⁻``: every summary edge sheds ``G⁻``'s ID; edges
  whose ID set empties are removed (the "frequency 1" case), as are
  vertices left isolated.

Alignment is a label-aware greedy expansion (the same family of
heuristics as :mod:`repro.clustering.mccs`): starting from the best
label-compatible anchor, grow the mapping along edges so that member
graphs overlap as much as possible instead of being laid side by side.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graph.labeled_graph import LabeledGraph, VertexId, edge_key


class SummaryGraph:
    """A closure/summary graph of a cluster with edge → graph-ID labels."""

    def __init__(self, cluster_id: int | None = None) -> None:
        self.cluster_id = cluster_id
        self._labels: dict[int, str] = {}
        self._adj: dict[int, set[int]] = {}
        self._edge_ids: dict[tuple[int, int], set[int]] = {}
        self._members: set[int] = set()
        self._next_vertex = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edge_ids)

    @property
    def member_ids(self) -> set[int]:
        return set(self._members)

    def vertices(self) -> list[int]:
        return sorted(self._labels)

    def label(self, vertex: int) -> str:
        return self._labels[vertex]

    def neighbors(self, vertex: int) -> set[int]:
        return self._adj[vertex]

    def edges(self) -> list[tuple[int, int]]:
        return sorted(self._edge_ids)

    def edge_graph_ids(self, u: int, v: int) -> set[int]:
        """IDs of member graphs containing the summary edge (u, v)."""
        return set(self._edge_ids[edge_key(u, v)])

    def edge_label(self, u: int, v: int) -> tuple[str, str]:
        la, lb = self._labels[u], self._labels[v]
        return (la, lb) if la <= lb else (lb, la)

    def edge_support(self, u: int, v: int) -> int:
        return len(self._edge_ids[edge_key(u, v)])

    def has_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._edge_ids

    def as_labeled_graph(self) -> LabeledGraph:
        """The summary's structure as a plain labelled graph."""
        graph = LabeledGraph(name=f"CSG{self.cluster_id}")
        for vertex, label in self._labels.items():
            graph.add_vertex(vertex, label)
        for u, v in self._edge_ids:
            graph.add_edge(u, v)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SummaryGraph c={self.cluster_id} |V|={self.num_vertices} "
            f"|E|={self.num_edges} members={len(self._members)}>"
        )

    # ------------------------------------------------------------------
    # integration (insertion)
    # ------------------------------------------------------------------
    def _align(self, graph: LabeledGraph) -> dict[VertexId, int]:
        """Greedy label-aware alignment of *graph* onto the summary.

        Returns a partial mapping graph-vertex → summary-vertex; vertices
        left unmapped will be created fresh by :meth:`add_graph`.
        """
        mapping: dict[VertexId, int] = {}
        used: set[int] = set()
        by_label: dict[str, list[int]] = {}
        for vertex in sorted(self._labels, key=lambda v: -len(self._adj[v])):
            by_label.setdefault(self._labels[vertex], []).append(vertex)

        order = sorted(
            graph.vertices(), key=lambda v: (-graph.degree(v), repr(v))
        )
        for vertex in order:
            if vertex in mapping:
                continue
            label = graph.label(vertex)
            mapped_neighbors = [
                n for n in graph.neighbors(vertex) if n in mapping
            ]
            best_candidate: int | None = None
            best_score = -1
            for candidate in by_label.get(label, ()):
                if candidate in used:
                    continue
                score = sum(
                    1
                    for n in mapped_neighbors
                    if mapping[n] in self._adj.get(candidate, set())
                )
                # Prefer candidates matching more already-mapped
                # neighbours, then better-connected summary vertices.
                if score > best_score:
                    best_score = score
                    best_candidate = candidate
            if best_candidate is None:
                continue
            if mapped_neighbors and best_score == 0:
                # No structural anchor: leave unmapped so a fresh summary
                # vertex is created (avoids collapsing unrelated regions).
                continue
            mapping[vertex] = best_candidate
            used.add(best_candidate)
        return mapping

    def _fresh_vertex(self, label: str) -> int:
        vertex = self._next_vertex
        self._next_vertex += 1
        self._labels[vertex] = label
        self._adj[vertex] = set()
        return vertex

    def add_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        """Integrate a member graph (Section 4.4, rule 1)."""
        if graph_id in self._members:
            raise ValueError(f"graph {graph_id} already integrated")
        mapping = self._align(graph)
        for vertex in graph.vertices():
            if vertex not in mapping:
                mapping[vertex] = self._fresh_vertex(graph.label(vertex))
        for u, v in graph.edges():
            su, sv = mapping[u], mapping[v]
            key = edge_key(su, sv)
            if key not in self._edge_ids:
                self._edge_ids[key] = set()
                self._adj[su].add(sv)
                self._adj[sv].add(su)
            self._edge_ids[key].add(graph_id)
        self._members.add(graph_id)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def remove_graph(self, graph_id: int) -> None:
        """Detach a member graph (Section 4.4, rule 2)."""
        if graph_id not in self._members:
            raise ValueError(f"graph {graph_id} is not a member")
        dead_edges = []
        for key, ids in self._edge_ids.items():
            ids.discard(graph_id)
            if not ids:
                dead_edges.append(key)
        for u, v in dead_edges:
            del self._edge_ids[(u, v)]
            self._adj[u].discard(v)
            self._adj[v].discard(u)
        isolated = [v for v, nbrs in self._adj.items() if not nbrs]
        for vertex in isolated:
            del self._adj[vertex]
            del self._labels[vertex]
        self._members.discard(graph_id)


def build_csg(
    cluster_id: int,
    member_ids: list[int] | set[int],
    graphs: Mapping[int, LabeledGraph],
) -> SummaryGraph:
    """Summarise a cluster into a CSG by iterative closure.

    Members are integrated largest-first so the summary's backbone comes
    from the most informative graph, mirroring CATAPULT's pairwise
    closure of extended graphs.
    """
    summary = SummaryGraph(cluster_id)
    ordered = sorted(
        member_ids, key=lambda gid: (-graphs[gid].num_edges, gid)
    )
    for graph_id in ordered:
        summary.add_graph(graph_id, graphs[graph_id])
    return summary
