"""Maintenance of the CSG set across cluster evolution.

:class:`CSGSet` keeps one :class:`~repro.csg.summary.SummaryGraph` per
cluster and mirrors cluster evolution (paper, Algorithm 1 line 7 and
Section 4.4):

* graphs assigned to an existing cluster are integrated into its CSG;
* graphs removed from a cluster are detached from its CSG;
* clusters that appear (fine splits) get freshly built CSGs;
* clusters that disappear drop their CSGs.

The set records which CSGs changed since the last reset so that candidate
pattern generation (Section 5) can restrict itself to evolved clusters.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graph.labeled_graph import LabeledGraph
from ..clustering.maintenance import ClusterSet
from ..obs import get_registry
from .summary import SummaryGraph, build_csg


class CSGSet:
    """The summary graphs of every cluster, maintained incrementally."""

    def __init__(self) -> None:
        self._summaries: dict[int, SummaryGraph] = {}
        #: Cluster IDs whose CSGs changed since the last reset.
        self.touched: set[int] = set()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, clusters: ClusterSet, graphs: Mapping[int, LabeledGraph]
    ) -> "CSGSet":
        """Build CSGs for every cluster from scratch."""
        instance = cls()
        for cluster_id in clusters.cluster_ids():
            instance._summaries[cluster_id] = build_csg(
                cluster_id, clusters.members(cluster_id), graphs
            )
        instance.reset_touched()
        return instance

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, cluster_id: int) -> bool:
        return cluster_id in self._summaries

    def summary(self, cluster_id: int) -> SummaryGraph:
        return self._summaries[cluster_id]

    def summaries(self) -> dict[int, SummaryGraph]:
        return dict(self._summaries)

    def reset_touched(self) -> None:
        self.touched = set()

    # ------------------------------------------------------------------
    def integrate(
        self, cluster_id: int, graph_id: int, graph: LabeledGraph
    ) -> None:
        """Record *graph* joining *cluster_id* (Section 4.4 rule 1)."""
        get_registry().counter("csg.integrations").add(1)
        summary = self._summaries.get(cluster_id)
        if summary is None:
            summary = SummaryGraph(cluster_id)
            self._summaries[cluster_id] = summary
        summary.add_graph(graph_id, graph)
        self.touched.add(cluster_id)

    def detach(self, cluster_id: int, graph_id: int) -> None:
        """Record *graph_id* leaving *cluster_id* (Section 4.4 rule 2)."""
        summary = self._summaries.get(cluster_id)
        if summary is None:
            return
        get_registry().counter("csg.detachments").add(1)
        summary.remove_graph(graph_id)
        self.touched.add(cluster_id)
        if not summary.member_ids:
            del self._summaries[cluster_id]

    def sync_with_clusters(
        self, clusters: ClusterSet, graphs: Mapping[int, LabeledGraph]
    ) -> None:
        """Reconcile the CSG set with the current cluster partition.

        New clusters (e.g. created by fine splits) get freshly built
        CSGs; clusters that no longer exist are dropped; clusters whose
        membership drifted from the recorded CSG members are rebuilt.
        Cheap membership comparison keeps untouched clusters untouched.
        """
        current = set(clusters.cluster_ids())
        stale = set(self._summaries) - current
        for cluster_id in stale:
            del self._summaries[cluster_id]
            self.touched.add(cluster_id)
        for cluster_id in current:
            members = clusters.members(cluster_id)
            summary = self._summaries.get(cluster_id)
            if summary is not None and summary.member_ids == members:
                continue
            get_registry().counter("csg.rebuilds").add(1)
            self._summaries[cluster_id] = build_csg(
                cluster_id, members, graphs
            )
            self.touched.add(cluster_id)
