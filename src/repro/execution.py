"""The shared execution policy: workers, caching, deadline, degradation.

:class:`ExecutionConfig` is the one knob bundle that every entry point
accepts — ``repro.api.select`` / ``repro.api.maintain``, the pipeline
and maintainer configs (``CatapultConfig.execution``), and the CLI
(``--workers``, ``--cache``, ``--covindex``, ``--check``,
``--deadline-ms``, ``--degrade``, ``--substrate``).  It
replaces the per-call resilience kwargs that had accreted on individual
signatures.

:meth:`ExecutionConfig.apply` is *additive*: it installs only the
facilities the config asks for and leaves ambient state from enclosing
scopes alone otherwise.  In particular a config with ``deadline_ms=None``
does **not** clear an outer deadline (``use_budget(None)`` would), and
``degrade=True`` / ``cache=False`` — the defaults — do not override an
enclosing scope that set those globals differently.  Nested ``apply``
calls therefore compose: the CLI can wrap a whole bench figure while a
maintainer config wraps each round.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class ExecutionConfig:
    """How to run the kernels, orthogonal to what they compute.

    Attributes
    ----------
    workers:
        Worker processes for the kernel pool; ``1`` = serial.
    cache:
        Enable the canonical-form result caches (:mod:`repro.cache`).
    covindex:
        Enable the filter-then-verify coverage engine
        (:mod:`repro.covindex`): posting-list candidate filtering, VF2
        domain seeding and incremental cover maintenance.  Results are
        identical with the engine on or off.
    fragments:
        Enable the shared sub-pattern match network
        (:mod:`repro.covindex.fragments`) inside coverage engines built
        in the wrapped scope: registered patterns decompose into
        canonical fragment chains whose verified match views prune
        candidates before VF2.  Takes effect only where ``covindex``
        builds an engine; results are identical with the network on or
        off.
    check:
        Arm the runtime invariant guards (:mod:`repro.check`): bitset
        and posting-list consistency in the coverage engine, cache
        fidelity monotonicity, pattern-budget bounds after maintenance
        rounds.  A failed guard raises
        :class:`~repro.exceptions.InvariantViolation`, which a
        transactional round maps to a rollback.
    deadline_ms:
        Wall-clock budget for the wrapped scope; ``None`` = unbounded.
    degrade:
        Whether kernels may fall down the degradation ladder under
        budget pressure (PR 2); ``False`` lets the budget exception
        propagate instead.
    store:
        Default graph-store spec for the wrapped scope (``"memory"``,
        ``"sqlite:PATH"``, ...; see :func:`repro.store.open_store`).
        ``None`` — the default — leaves the ambient spec alone, so
        nested scopes compose like the other knobs.
    substrate:
        Bitset substrate for coverage indices built in the wrapped
        scope: ``"numpy"`` (vectorized uint64 word arrays, the process
        default when numpy is importable) or ``"int"`` (the plain-int
        reference).  Results are byte-identical either way; ``None``
        leaves the ambient choice alone.
    """

    workers: int = 1
    cache: bool = False
    covindex: bool = False
    fragments: bool = False
    check: bool = False
    deadline_ms: float | None = None
    degrade: bool = True
    store: str | None = None
    substrate: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.substrate is not None and self.substrate not in (
            "int",
            "numpy",
        ):
            raise ValueError("substrate must be 'int' or 'numpy'")

    @contextmanager
    def apply(self):
        """Install this policy (pool, caches, budget, degradation) ambiently."""
        from .cache.stores import use_caching
        from .check.invariants import use_check
        from .covindex.bitset import use_substrate
        from .covindex.engine import use_covindex
        from .covindex.fragments import use_fragments
        from .parallel.pool import shared_pool, use_pool
        from .resilience.budget import Deadline, use_budget
        from .resilience.degrade import degradation_enabled, set_degradation
        from .store.base import use_default_store

        with ExitStack() as stack:
            if self.store is not None:
                stack.enter_context(use_default_store(self.store))
            if self.workers > 1:
                stack.enter_context(use_pool(shared_pool(self.workers)))
            if self.cache:
                stack.enter_context(use_caching(True))
            if self.covindex:
                stack.enter_context(use_covindex(True))
            if self.fragments:
                stack.enter_context(use_fragments(True))
            if self.substrate is not None:
                stack.enter_context(use_substrate(self.substrate))
            if self.check:
                stack.enter_context(use_check(True))
            if not self.degrade and degradation_enabled():
                set_degradation(False)
                stack.callback(set_degradation, True)
            if self.deadline_ms is not None:
                stack.enter_context(use_budget(Deadline.from_ms(self.deadline_ms)))
            yield self


__all__ = ["ExecutionConfig"]
