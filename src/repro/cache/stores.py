"""LRU-bounded, canonical-form-keyed memo caches for the hot kernels.

Three caches back the kernels that dominate a maintenance round (paper,
Sections 5–6):

* :class:`GedCache` — pairwise GED values, tagged with the *fidelity*
  rung of the degradation ladder that produced them (PR 2).  A cached
  value is only reused when its fidelity matches the requested method
  exactly, so enabling the cache never changes a computed result; a
  later higher-fidelity value upgrades the entry, never the reverse.
* :class:`EmbeddingCache` — VF2 containment verdicts and (capped)
  embedding counts, keyed by ``(pattern certificate, host certificate)``.
* :class:`GraphletCache` — per-graph graphlet count vectors, keyed by
  the host certificate.

Because keys are canonical certificates, entries are content-addressed
and can never be *stale*: a structurally identical graph yields the same
value by definition.  Invalidation on a :class:`~repro.graph.database.BatchUpdate`
is therefore a memory-hygiene policy, not a correctness requirement —
:meth:`CacheManager.invalidate` evicts exactly the entries bound to the
deleted graph IDs (insertions cannot have prior entries; database IDs
are never reused) and leaves everything else warm.

All caches publish ``cache.*`` hit/miss/eviction counters in the PR 1
metrics registry; the catalogue lives in ``docs/OBSERVABILITY.md``.
Caching is off by default — enable it with :func:`set_caching` /
:func:`use_caching` or ``ExecutionConfig(cache=True)``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from contextlib import contextmanager
from typing import Any

from ..check.invariants import check_cache_fidelity, check_enabled
from ..obs import get_registry
from .keys import graph_key

#: Default per-store entry bound.  Entries are small (a key tuple plus a
#: scalar or a short vector) so this keeps each store well under ~50 MB.
DEFAULT_MAX_ENTRIES = 65536

#: Ordering of GED fidelity tags, loosest first.  ``put`` refuses to
#: replace an entry with a lower-ranked (looser) one.
FIDELITY_RANK = {
    "lower": 0,
    "tight_lower": 1,
    "bipartite": 2,
    "beam": 3,
    "exact": 4,
}

#: Ordering of embedding-count fidelity tags (PR 2's ``CountResult``).
COUNT_FIDELITY_RANK = {"capped": 0, "full": 1}


class LRUStore:
    """An LRU-bounded mapping with hit/miss/eviction counters.

    Counter names are passed in as literals so the documentation
    catalogue checker (``tests/test_docs.py``) can find them in source.
    """

    def __init__(
        self,
        hits_counter: str,
        misses_counter: str,
        evictions_counter: str,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._hits_counter = hits_counter
        self._misses_counter = misses_counter
        self._evictions_counter = evictions_counter

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get(self, key: Any) -> Any | None:
        """Return the cached value (marking it recently used) or None."""
        entry = self._entries.get(key)
        if entry is None:
            get_registry().counter(self._misses_counter).add(1)
            return None
        self._entries.move_to_end(key)
        get_registry().counter(self._hits_counter).add(1)
        return entry

    def peek(self, key: Any) -> Any | None:
        """Like :meth:`get` but without touching LRU order or counters."""
        return self._entries.get(key)

    def put(self, key: Any, value: Any) -> None:
        entries = self._entries
        if key in entries:
            entries[key] = value
            entries.move_to_end(key)
            return
        entries[key] = value
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            get_registry().counter(self._evictions_counter).add(1)

    def evict(self, key: Any) -> bool:
        """Remove *key* if present; returns True when an entry was dropped."""
        if self._entries.pop(key, None) is not None:
            get_registry().counter(self._evictions_counter).add(1)
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()


# ----------------------------------------------------------------------
# GED cache
# ----------------------------------------------------------------------
class GedCache:
    """Pairwise GED values with fidelity tags, keyed by certificate pair.

    The key includes the requested method because different methods
    return different values by design (a lower bound is not an exact
    distance).  The stored fidelity records which ladder rung actually
    produced the value; callers that need full fidelity check
    ``fidelity == method`` before trusting a hit.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self._store = LRUStore(
            "cache.ged.hits",
            "cache.ged.misses",
            "cache.ged.evictions",
            max_entries,
        )

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def _key(first, second, method: str) -> tuple:
        pair = sorted((graph_key(first), graph_key(second)))
        return (method, pair[0], pair[1])

    def get(self, first, second, method: str) -> tuple[int, str] | None:
        """Return ``(value, fidelity)`` for the pair under *method*."""
        return self._store.get(self._key(first, second, method))

    def put(self, first, second, method: str, value: int, fidelity: str) -> None:
        """Store a value, never downgrading an existing entry's fidelity."""
        key = self._key(first, second, method)
        existing = self._store.peek(key)
        if existing is not None and (
            FIDELITY_RANK.get(fidelity, -1) < FIDELITY_RANK.get(existing[1], -1)
        ):
            return
        if check_enabled() and existing is not None:
            # The accepted write must be an upgrade (or a refresh at the
            # same rung) — the refusal branch above is the only thing
            # standing between the ladder and silently serving looser
            # values as tighter ones.
            check_cache_fidelity(
                FIDELITY_RANK.get(existing[1], -1),
                FIDELITY_RANK.get(fidelity, -1),
                f"ged:{method}",
            )
        self._store.put(key, (value, fidelity))

    def clear(self) -> None:
        self._store.clear()


# ----------------------------------------------------------------------
# embedding (VF2) cache
# ----------------------------------------------------------------------
class EmbeddingCache:
    """Containment verdicts and embedding counts keyed by certificates.

    ``bind(graph_id, host)`` records which database IDs currently carry a
    host certificate so :meth:`invalidate_ids` can evict exactly the
    entries touching deleted graphs.  The binding is advisory (content
    keys are never stale); it only bounds memory growth across updates.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self._store = LRUStore(
            "cache.embed.hits",
            "cache.embed.misses",
            "cache.embed.evictions",
            max_entries,
        )
        self._host_keys: dict[int, set[tuple]] = {}
        self._keys_by_host: dict[tuple, set[tuple]] = {}

    def __len__(self) -> int:
        return len(self._store)

    # -- containment ---------------------------------------------------
    def get_contains(self, pattern, host) -> bool | None:
        entry = self._store.get(("c", graph_key(pattern), graph_key(host)))
        return entry[0] if entry is not None else None

    def put_contains(self, pattern, host, verdict: bool) -> None:
        host_cert = graph_key(host)
        key = ("c", graph_key(pattern), host_cert)
        self._store.put(key, (verdict,))
        self._keys_by_host.setdefault(host_cert, set()).add(key)

    # -- counts --------------------------------------------------------
    def get_count(self, pattern, host, limit: int | None) -> tuple[int, str] | None:
        """Return ``(count, fidelity)`` or None; fidelity is full/capped."""
        return self._store.get(("n", graph_key(pattern), graph_key(host), limit))

    def put_count(
        self, pattern, host, limit: int | None, count: int, fidelity: str
    ) -> None:
        host_cert = graph_key(host)
        key = ("n", graph_key(pattern), host_cert, limit)
        existing = self._store.peek(key)
        if existing is not None and (
            COUNT_FIDELITY_RANK.get(fidelity, -1)
            < COUNT_FIDELITY_RANK.get(existing[1], -1)
        ):
            return
        self._store.put(key, (count, fidelity))
        self._keys_by_host.setdefault(host_cert, set()).add(key)

    # -- id bindings & invalidation ------------------------------------
    def bind(self, graph_id: int, host) -> None:
        """Record that database graph *graph_id* has *host*'s certificate."""
        self._host_keys.setdefault(graph_id, set()).add(graph_key(host))

    def invalidate_ids(self, graph_ids: Iterable[int]) -> int:
        """Evict every entry whose host certificate is bound to an ID."""
        evicted = 0
        for graph_id in graph_ids:
            for host_cert in self._host_keys.pop(graph_id, ()):  # noqa: B020
                for key in self._keys_by_host.pop(host_cert, ()):  # noqa: B020
                    if self._store.evict(key):
                        evicted += 1
        return evicted

    def clear(self) -> None:
        self._store.clear()
        self._host_keys.clear()
        self._keys_by_host.clear()


# ----------------------------------------------------------------------
# graphlet cache
# ----------------------------------------------------------------------
class GraphletCache:
    """Per-graph graphlet count vectors keyed by host certificate."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self._store = LRUStore(
            "cache.graphlet.hits",
            "cache.graphlet.misses",
            "cache.graphlet.evictions",
            max_entries,
        )
        self._cert_by_id: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, graph):
        """The cached count vector (a copy) or None."""
        counts = self._store.get(graph_key(graph))
        return None if counts is None else counts.copy()

    def put(self, graph, counts, graph_id: int | None = None) -> None:
        cert = graph_key(graph)
        self._store.put(cert, counts.copy())
        if graph_id is not None:
            self._cert_by_id[graph_id] = cert

    def bind(self, graph_id: int, graph) -> None:
        """Record that database graph *graph_id* carries *graph*'s entry."""
        self._cert_by_id[graph_id] = graph_key(graph)

    def invalidate_ids(self, graph_ids: Iterable[int]) -> int:
        evicted = 0
        for graph_id in graph_ids:
            cert = self._cert_by_id.pop(graph_id, None)
            if cert is not None and self._store.evict(cert):
                evicted += 1
        return evicted

    def clear(self) -> None:
        self._store.clear()
        self._cert_by_id.clear()


# ----------------------------------------------------------------------
# manager + ambient enable flag
# ----------------------------------------------------------------------
class CacheManager:
    """The process-wide trio of kernel caches plus invalidation."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.ged = GedCache(max_entries)
        self.embeddings = EmbeddingCache(max_entries)
        self.graphlets = GraphletCache(max_entries)

    def invalidate(
        self,
        inserted_ids: Iterable[int] = (),
        deleted_ids: Iterable[int] = (),
    ) -> int:
        """Evict entries bound to the graphs a batch update touched.

        Insertions need no eviction (fresh IDs have no prior entries —
        :class:`~repro.graph.database.GraphDatabase` never reuses IDs),
        but their IDs are accepted for symmetry with ``AppliedUpdate``.
        Returns the number of entries evicted.
        """
        _ = tuple(inserted_ids)  # accepted for symmetry; nothing to evict
        deleted = tuple(deleted_ids)
        evicted = self.embeddings.invalidate_ids(deleted)
        evicted += self.graphlets.invalidate_ids(deleted)
        get_registry().counter("cache.invalidations").add(1)
        return evicted

    def clear(self) -> None:
        self.ged.clear()
        self.embeddings.clear()
        self.graphlets.clear()

    def stats(self) -> dict[str, int]:
        return {
            "ged_entries": len(self.ged),
            "embedding_entries": len(self.embeddings),
            "graphlet_entries": len(self.graphlets),
        }


_manager = CacheManager()
_enabled = False


def get_caches() -> CacheManager:
    """The process-wide :class:`CacheManager`."""
    return _manager


def set_caches(manager: CacheManager) -> CacheManager:
    """Swap the process-wide manager (tests); returns the previous one."""
    global _manager
    previous = _manager
    _manager = manager
    return previous


def set_caching(enabled: bool) -> None:
    """Globally enable/disable kernel caching (the CLI's ``--cache``)."""
    global _enabled
    _enabled = enabled


def caching_enabled() -> bool:
    return _enabled


@contextmanager
def use_caching(enabled: bool = True):
    """Enable (or disable) caching for the dynamic extent of the block."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield _manager
    finally:
        _enabled = previous


def cached_ged_value(first, second, method: str) -> int:
    """A cache-through wrapper for the plain :func:`repro.ged.ged` call.

    Used by call sites that bypass the degradation ladder (diversity
    scoring).  Plain ``ged`` either completes at full fidelity or raises,
    so cached entries always carry ``fidelity == method`` and a hit is
    byte-identical to recomputing.
    """
    from ..ged import ged  # lazy: keep this package import-light

    if not _enabled:
        return ged(first, second, method=method)
    cached = _manager.ged.get(first, second, method)
    if cached is not None and cached[1] == method:
        return cached[0]
    value = ged(first, second, method=method)
    _manager.ged.put(first, second, method, value, fidelity=method)
    return value


__all__ = [
    "COUNT_FIDELITY_RANK",
    "CacheManager",
    "DEFAULT_MAX_ENTRIES",
    "EmbeddingCache",
    "FIDELITY_RANK",
    "GedCache",
    "GraphletCache",
    "LRUStore",
    "cached_ged_value",
    "caching_enabled",
    "get_caches",
    "set_caches",
    "set_caching",
    "use_caching",
]
