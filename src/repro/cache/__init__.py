"""Canonical-form result caching for the maintenance kernels.

See :mod:`repro.cache.stores` for the design (content-addressed keys,
fidelity-tagged GED entries, LRU bounds, ``BatchUpdate``-driven
invalidation) and ``docs/PERFORMANCE.md`` for the operator guide.
"""

from .keys import clear_key_memo, graph_key
from .stores import (
    COUNT_FIDELITY_RANK,
    DEFAULT_MAX_ENTRIES,
    FIDELITY_RANK,
    CacheManager,
    EmbeddingCache,
    GedCache,
    GraphletCache,
    LRUStore,
    cached_ged_value,
    caching_enabled,
    get_caches,
    set_caches,
    set_caching,
    use_caching,
)

__all__ = [
    "COUNT_FIDELITY_RANK",
    "CacheManager",
    "DEFAULT_MAX_ENTRIES",
    "EmbeddingCache",
    "FIDELITY_RANK",
    "GedCache",
    "GraphletCache",
    "LRUStore",
    "cached_ged_value",
    "caching_enabled",
    "clear_key_memo",
    "get_caches",
    "graph_key",
    "set_caches",
    "set_caching",
    "use_caching",
]
