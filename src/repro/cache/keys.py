"""Canonical cache keys for graphs.

Every cache in this package is *content-addressed*: entries are keyed by
the canonical certificate of the graphs involved (1-WL refinement plus
individualisation, :func:`repro.graph.canonical.canonical_certificate`),
never by database graph IDs or object identity.  Two structurally
identical graphs therefore share one cache entry, and a cached value can
never be stale — the certificate pins the exact inputs the value was
computed from.

Computing a certificate is itself non-trivial for larger graphs, so this
module memoises certificates per graph *object* (keyed by ``id()`` with a
strong reference to the graph, guarding against id reuse after garbage
collection).  Graphs are treated as immutable once they enter a cache
lookup — the same convention the rest of the codebase already relies on
for :class:`~repro.patterns.pattern.CannedPattern` graphs.
"""

from __future__ import annotations

from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph

#: Bound on the certificate memo; exceeded → the memo is cleared (it is
#: only a recomputation shortcut, so dropping it is always safe).
CERT_MEMO_LIMIT = 8192

_cert_memo: dict[int, tuple[LabeledGraph, tuple]] = {}


def graph_key(graph: LabeledGraph) -> tuple:
    """The canonical certificate of *graph*, memoised by object identity.

    The strong reference stored next to the certificate keeps the graph
    alive while its memo entry exists, so an ``id()`` can never silently
    alias a different (collected) graph.
    """
    entry = _cert_memo.get(id(graph))
    if entry is not None and entry[0] is graph:
        return entry[1]
    certificate = canonical_certificate(graph)
    if len(_cert_memo) >= CERT_MEMO_LIMIT:
        _cert_memo.clear()
    _cert_memo[id(graph)] = (graph, certificate)
    return certificate


def clear_key_memo() -> None:
    """Drop all memoised certificates (tests / explicit resets)."""
    _cert_memo.clear()


__all__ = ["CERT_MEMO_LIMIT", "clear_key_memo", "graph_key"]
