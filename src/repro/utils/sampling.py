"""Lazy database sampling.

Computing subgraph coverage over the full database is prohibitively
expensive at scale, so CATAPULT/MIDAS estimate ``scov`` over a sampled
database ``D_s ⊂ D`` (paper, Section 6.1).  :class:`LazySampler` draws a
reproducible uniform sample whose membership is *stable under database
evolution*: surviving graphs keep their in/out status, deleted graphs
drop out, and new graphs are admitted with the sampling probability —
so estimates before and after a batch are comparable.
"""

from __future__ import annotations

import random
from collections.abc import Iterable


class LazySampler:
    """A persistent, evolution-aware uniform sample of graph IDs."""

    def __init__(
        self,
        ids: Iterable[int],
        max_size: int = 500,
        seed: int = 0,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self._rng = random.Random(seed)
        self.max_size = max_size
        universe = sorted(ids)
        self._universe: set[int] = set(universe)
        if len(universe) <= max_size:
            self._sample: set[int] = set(universe)
        else:
            self._sample = set(self._rng.sample(universe, max_size))

    # ------------------------------------------------------------------
    @property
    def sample_ids(self) -> set[int]:
        return set(self._sample)

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    @property
    def universe_size(self) -> int:
        return len(self._universe)

    def __contains__(self, graph_id: int) -> bool:
        return graph_id in self._sample

    # ------------------------------------------------------------------
    def add_ids(self, ids: Iterable[int]) -> None:
        """Admit new graphs, keeping the sample uniform-ish.

        Each new ID enters with probability ``max_size / universe``; when
        the sample is below capacity it enters unconditionally.
        """
        for graph_id in sorted(ids):
            if graph_id in self._universe:
                continue
            self._universe.add(graph_id)
            if len(self._sample) < self.max_size:
                self._sample.add(graph_id)
            else:
                # Reservoir-style replacement keeps inclusion uniform.
                if self._rng.random() < self.max_size / len(self._universe):
                    victim = self._rng.choice(sorted(self._sample))
                    self._sample.discard(victim)
                    self._sample.add(graph_id)

    def remove_ids(self, ids: Iterable[int]) -> None:
        """Drop deleted graphs from both universe and sample."""
        for graph_id in ids:
            self._universe.discard(graph_id)
            self._sample.discard(graph_id)

    def scale_to_universe(self, sample_count: float) -> float:
        """Convert a sample count to a universe-level fraction."""
        if not self._sample:
            return 0.0
        return sample_count / len(self._sample)
