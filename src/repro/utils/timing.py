"""Wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations (seconds)."""

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the elapsed time to lap *name*."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        return self.laps.get(name, 0.0)

    def total(self) -> float:
        return sum(self.laps.values())

    def reset(self) -> None:
        self.laps.clear()


@contextmanager
def timed():
    """Yield a zero-arg callable returning elapsed seconds so far."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
