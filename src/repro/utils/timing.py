"""Wall-clock timing helpers — now a shim over :mod:`repro.obs`.

The flat :class:`Stopwatch` has been absorbed by the hierarchical span
layer (:mod:`repro.obs.spans`); it lives on in :mod:`repro.obs.compat`
so that ``MaintenanceReport.stopwatch`` and every existing import of
``repro.utils.timing`` keep working.  New code should open spans via
:func:`repro.obs.span` instead.
"""

from __future__ import annotations

from ..obs.compat import Stopwatch, timed

__all__ = ["Stopwatch", "timed"]
