"""Small statistics helpers.

The multi-scan swap of MIDAS checks that a swap does not significantly
change the pattern-size distribution with a Kolmogorov–Smirnov test
(paper, Section 6.2).  scipy provides the test; this module wraps it
with sensible handling of the tiny samples involved (γ ≈ 30 patterns)
and adds the summary helpers used by the benchmark harness.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from scipy import stats as _scipy_stats


def ks_similarity(
    first: Sequence[float],
    second: Sequence[float],
    alpha: float = 0.05,
) -> bool:
    """True when the two samples are plausibly from one distribution.

    A two-sample KS test at significance *alpha*: returns True (similar)
    when the null hypothesis is **not** rejected.  Empty inputs compare
    equal only to empty inputs.
    """
    if not first or not second:
        return not first and not second
    result = _scipy_stats.ks_2samp(list(first), list(second))
    return bool(result.pvalue >= alpha)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)
