"""Shared utilities: sampling, statistics, timing."""

from .sampling import LazySampler
from .stats import ks_similarity, mean, percentile, stddev
from .timing import Stopwatch, timed

__all__ = [
    "LazySampler",
    "Stopwatch",
    "ks_similarity",
    "mean",
    "percentile",
    "stddev",
    "timed",
]
