"""The coverage engine: filtered, incrementally maintained cover state.

:class:`CoverageEngine` owns a :class:`~repro.covindex.index.CoverageIndex`
over one database view plus, per registered pattern, two verdict
bitsets (always canonical ints, whatever substrate the index's posting
lists live on — the vectorized matrix stops at the
:meth:`~repro.covindex.index.CoverageIndex.run_query` boundary because
big-int set ops beat array-op dispatch at per-call granularity; see
:mod:`repro.covindex.bitset`):

* ``match_bits`` — graphs *verified* to contain the pattern;
* ``seen_bits`` — graphs whose verdict is known (verified either way, or
  rejected by the filter without a VF2 call).

Cover queries are lazy over the delta: :meth:`pending` returns only the
graphs whose verdict is still unknown **after** filtering — on a fresh
pattern that is the filtered universe, after a
:class:`~repro.graph.database.BatchUpdate` it is just the filtered
*inserted* graphs, because :meth:`apply_update` clears exactly the bits
of removed graphs and leaves every other verdict in place.  One code
path therefore serves both initial coverage and incremental delta
re-verification, and a MIDAS round re-verifies only changed graphs.
Each registered pattern keeps a
:class:`~repro.covindex.index.CompiledQuery` so the numpy substrate
reuses its posting-row plan round after round; the time the filter
phase spends (delta filtering plus cover materialization) accumulates
in the ``covindex.filter_ns`` counter, which the covix figure turns
into a wall-clock-per-round trend gate.  Fully-drained patterns
short-circuit on an O(1) seen-verdict count and cover sets are
memoized until a verdict moves, so neither bookkeeping path touches a
bitset or the filter clock — the counter measures genuine filter work.

The engine never runs VF2 itself; the caller (the
:class:`~repro.patterns.metrics.CoverageOracle`) verifies pending hosts
— through the embedding cache and kernel pool — and reports verdicts
back via :meth:`commit`.  :meth:`vertex_domains` seeds those
verifications with per-vertex candidate domains from the index.

The module also hosts the ambient on/off toggle
(:func:`set_covindex` / :func:`use_covindex` / :func:`covindex_enabled`)
mirroring :mod:`repro.cache.stores`; the engine is off by default and
``ExecutionConfig(covindex=True)`` turns it on for a scope.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from contextlib import contextmanager

from ..check.invariants import check_enabled, check_engine
from ..graph.labeled_graph import LabeledGraph, VertexId
from ..obs import get_registry
from .bitset import make_ops
from .fragments import FragmentNetwork, fragments_enabled
from .index import CompiledQuery, CoverageIndex

#: Bound on concurrently tracked patterns.  MIDAS rounds evaluate many
#: short-lived candidate patterns; evicting the oldest registration
#: (re-verified from scratch if it ever returns) keeps bitset state
#: proportional to the working set, not to history.
MAX_TRACKED_PATTERNS = 1024


class CoverageEngine:
    """Filter-then-verify cover maintenance over one database view."""

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        substrate: str | None = None,
        fragments: bool | None = None,
        fragment_budget: int | None = None,
    ) -> None:
        self._graphs: dict[int, LabeledGraph] = dict(graphs)
        self.index = CoverageIndex.build(self._graphs, substrate=substrate)
        # The shared sub-pattern match network (repro.covindex.fragments),
        # attached when the ambient toggle (or the explicit argument)
        # asks for it.  It shares this engine's graph-view dict and
        # index, so apply_update keeps all three consistent in place.
        if fragments is None:
            fragments = fragments_enabled()
        self._network = (
            FragmentNetwork(
                self.index, self._graphs, budget_bytes=fragment_budget
            )
            if fragments
            else None
        )
        # Verdict bookkeeping is int-typed on every substrate: the
        # index returns canonical ints from run_query, and the tiny
        # O(1) delta ops here are where big-ints win.
        self._ops = make_ops("int")
        self._patterns: dict[tuple, LabeledGraph] = {}
        self._compiled: dict[tuple, CompiledQuery] = {}
        self._match_bits: dict[tuple, object] = {}
        self._seen_bits: dict[tuple, object] = {}
        # O(1) bookkeeping so fully-drained patterns never pay a bitset
        # op: popcount of seen bits (seen ⊆ universe is an engine
        # invariant, so count == len(view) means nothing is pending)
        # and the memoized cover set, dropped whenever match bits move.
        self._seen_count: dict[tuple, int] = {}
        self._covers: dict[tuple, frozenset[int]] = {}
        # Live mirror of each pattern's match bits as an id set,
        # maintained incrementally at commit time so cover_ids never
        # re-extracts ids from a bitset on the hot path.
        self._cover_sets: dict[tuple, set[int]] = {}
        # filter_ns counter object, cached per registry identity.
        self._filter_ns_cache: tuple | None = None
        self._publish_gauges()

    @property
    def substrate(self) -> str:
        """The bitset substrate this engine's verdicts live on."""
        return self.index.substrate

    # ------------------------------------------------------------------
    # view access
    # ------------------------------------------------------------------
    @property
    def graphs(self) -> Mapping[int, LabeledGraph]:
        return self._graphs

    def graph_ids(self) -> set[int]:
        return set(self._graphs)

    def __len__(self) -> int:
        return len(self._graphs)

    # ------------------------------------------------------------------
    # pattern registration
    # ------------------------------------------------------------------
    def register(self, key: tuple, pattern: LabeledGraph) -> None:
        """Start tracking *pattern* under its canonical *key*.

        Re-registering a tracked key refreshes its recency and keeps
        the verdict bitsets — verdicts are isomorphism-invariant, so
        the bits stay valid — but when the caller's copy permutes
        vertex IDs relative to the stored pattern, the stored pattern
        (and its compiled query) is replaced by the new copy.  That
        keeps registration symmetric with evict-then-re-register:
        :meth:`pattern` / :meth:`vertex_domains` always speak the
        vertex IDs of the *latest* registration, whatever the eviction
        history.  Callers must still verify with :meth:`pattern`, not
        with their own isomorphic copy.
        """
        if key in self._patterns:
            self._touch(key)
            stored = self._patterns[key]
            if stored.labels() != pattern.labels() or set(
                stored.edges()
            ) != set(pattern.edges()):
                self._patterns[key] = pattern
                self._compiled[key] = self.index.compile(pattern)
                get_registry().counter(
                    "covindex.pattern_refreshes"
                ).add(1)
            return
        while len(self._patterns) >= MAX_TRACKED_PATTERNS:
            oldest = next(iter(self._patterns))
            self.discard(oldest)
        self._patterns[key] = pattern
        self._compiled[key] = self.index.compile(pattern)
        self._match_bits[key] = self._ops.zero()
        self._seen_bits[key] = self._ops.zero()
        self._seen_count[key] = 0
        self._cover_sets[key] = set()
        if self._network is not None:
            self._network.register(key, pattern)
        self._publish_gauges()

    def _touch(self, key: tuple) -> None:
        """Move *key* to the back of the eviction order (LRU, not FIFO)."""
        self._patterns[key] = self._patterns.pop(key)

    def pattern(self, key: tuple) -> LabeledGraph:
        """The stored pattern for *key* — the object whose vertex IDs
        :meth:`vertex_domains` is expressed in."""
        return self._patterns[key]

    def discard(self, key: tuple) -> None:
        self._patterns.pop(key, None)
        self._compiled.pop(key, None)
        self._match_bits.pop(key, None)
        self._seen_bits.pop(key, None)
        self._seen_count.pop(key, None)
        self._covers.pop(key, None)
        self._cover_sets.pop(key, None)
        if self._network is not None:
            self._network.discard(key)

    @property
    def network(self):
        """The attached :class:`FragmentNetwork`, or ``None``."""
        return self._network

    def tracked(self, key: tuple) -> bool:
        return key in self._patterns

    # ------------------------------------------------------------------
    # lazy filtered verification
    # ------------------------------------------------------------------
    def pending(self, key: tuple) -> list[int]:
        """Graph IDs whose verdict for *key* is unknown, post-filter.

        Unseen graphs rejected by the posting-list filter are marked
        seen (non-matching) here without any VF2 work — that is the
        "verify only what the filter cannot decide" half of the
        contract.  The returned IDs are sorted, matching the order the
        unfiltered serial loop would visit them in.
        """
        self._touch(key)
        if self._seen_count[key] == len(self._graphs):
            # Every verdict is known (seen ⊆ universe, so equal counts
            # mean equal sets) — no bitset op, no substrate involved,
            # and nothing added to the filter-phase clock.
            return []
        mask = None
        if self._network is not None:
            # Fragment draining runs VF2 of its own, so it happens
            # before the filter clock starts; the mask is a sound
            # over-approximation of the cover (see pattern_mask), so
            # graphs it excludes are marked seen-non-matching below
            # exactly like posting-filter rejections.
            mask = self._network.pattern_mask(key)
        started = time.perf_counter_ns()
        # The filter is monotone — candidates(unseen) is exactly
        # candidates(universe) ∩ unseen — so run the compiled query
        # over the whole universe (no unseen bitset to build first)
        # and subtract seen from the survivors.  Verdict bitsets are
        # plain ints, so the deltas are written as direct big-int
        # expressions rather than BitsetOps method calls.
        candidates = self.index.run_query(self._compiled[key])
        if mask is not None:
            masked = candidates & mask
            get_registry().counter("covindex.frag.pruned").add(
                (candidates & ~self._seen_bits[key]).bit_count()
                - (masked & ~self._seen_bits[key]).bit_count()
            )
            candidates = masked
        pending_value = candidates & ~self._seen_bits[key]
        # Marking every non-pending graph seen collapses to one
        # subtraction: seen ∪ (unseen \ candidates) == universe \ pending.
        self._seen_bits[key] = self.index.universe_value & ~pending_value
        result = self._ops.ids(pending_value)
        self._seen_count[key] = len(self._graphs) - len(result)
        self._record_filter_ns(started)
        return result

    def commit(self, key: tuple, graph_id: int, verdict: bool) -> None:
        """Record one verification verdict for (*key*, *graph_id*)."""
        ops = self._ops
        if not ops.test(self._seen_bits[key], graph_id):
            self._seen_bits[key] = ops.set_bit(
                self._seen_bits[key], graph_id
            )
            self._seen_count[key] += 1
        if verdict:
            self._match_bits[key] = ops.set_bit(
                self._match_bits[key], graph_id
            )
            self._cover_sets[key].add(graph_id)
            self._covers.pop(key, None)
        get_registry().counter("covindex.verifications").add(1)

    def cover_ids(self, key: tuple) -> frozenset[int]:
        """The verified cover set of *key* (call after draining pending)."""
        self._touch(key)
        if check_enabled():
            check_engine(self)
        result = self._covers.get(key)
        if result is None:
            # The live id-set mirror makes this a set copy, not a
            # bitset id extraction.
            started = time.perf_counter_ns()
            result = self._covers[key] = frozenset(self._cover_sets[key])
            self._record_filter_ns(started)
        return result

    def __getstate__(self):
        # The cached filter_ns counter carries a lock — drop it when
        # the engine is copied/pickled (maintenance snapshots deepcopy
        # engine state); it repopulates on the next timed section.
        state = self.__dict__.copy()
        state["_filter_ns_cache"] = None
        return state

    def _record_filter_ns(self, started: int) -> None:
        registry = get_registry()
        cached = self._filter_ns_cache
        if cached is None or cached[0] is not registry:
            cached = self._filter_ns_cache = (
                registry,
                registry.counter("covindex.filter_ns"),
            )
        cached[1].add(time.perf_counter_ns() - started)

    def vertex_domains(
        self, key: tuple, graph_id: int
    ) -> dict[VertexId, set[VertexId]]:
        """VF2 candidate domains for verifying *key* against *graph_id*."""
        return self.index.vertex_domains(
            self._patterns[key], graph_id, self._graphs[graph_id]
        )

    # ------------------------------------------------------------------
    # verdict persistence (out-of-core warm start; docs/STORAGE.md)
    # ------------------------------------------------------------------
    def export_verdicts(self) -> dict[tuple, tuple[int, int]]:
        """Per tracked pattern key, its ``(match_bits, seen_bits)`` as ints.

        The persistence handshake with a durable
        :class:`~repro.store.base.GraphStore`: the store saves these
        bitsets per shard and a restarted engine re-imports them instead
        of re-verifying the whole database.  Always the canonical int
        form, whatever substrate the engine runs on.
        """
        ops = self._ops
        return {
            key: (
                ops.to_int(self._match_bits[key]),
                ops.to_int(self._seen_bits[key]),
            )
            for key in self._patterns
        }

    def import_verdicts(
        self, key: tuple, match_bits: int, seen_bits: int
    ) -> None:
        """Warm-start verdicts for a tracked *key* from persisted bits.

        Bits are intersected with the current universe so verdicts for
        graphs that left the view since the bits were saved are dropped;
        everything else skips re-verification.
        """
        if key not in self._patterns:
            raise KeyError(f"pattern {key!r} is not tracked")
        ops = self._ops
        universe = self.index.universe_value
        self._match_bits[key] = ops.union(
            self._match_bits[key],
            ops.intersect(ops.from_int(match_bits), universe),
        )
        self._seen_bits[key] = ops.union(
            self._seen_bits[key],
            ops.intersect(ops.from_int(seen_bits), universe),
        )
        self._seen_count[key] = ops.popcount(self._seen_bits[key])
        self._cover_sets[key] = set(ops.ids(self._match_bits[key]))
        self._covers.pop(key, None)
        get_registry().counter("covindex.verdicts_imported").add(1)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def apply_update(
        self,
        added: Mapping[int, LabeledGraph],
        removed_ids: Iterable[int],
    ) -> None:
        """Reconcile with a database batch without a rebuild.

        Removed graphs leave the index and lose their verdict bits in
        every tracked pattern; added graphs enter the index unverified,
        so the next :meth:`pending` call per pattern surfaces exactly
        the filtered delta.  Adding a graph_id already in the view is an
        in-place replacement: its old verdicts are cleared too, exactly
        as if it had been removed and re-added.  Verdicts for untouched
        graphs survive.
        """
        ops = self._ops
        removed = [gid for gid in removed_ids if gid in self._graphs]
        for graph_id in removed:
            self.index.remove_graph(graph_id)
            del self._graphs[graph_id]
        stale = removed + [gid for gid in added if gid in self._graphs]
        if stale:
            stale_value = ops.from_ids(stale)
            for key in self._patterns:
                self._match_bits[key] = ops.subtract(
                    self._match_bits[key], stale_value
                )
                self._seen_bits[key] = ops.subtract(
                    self._seen_bits[key], stale_value
                )
                self._seen_count[key] = ops.popcount(self._seen_bits[key])
                self._cover_sets[key].difference_update(stale)
            self._covers.clear()
        for graph_id, graph in added.items():
            self._graphs[graph_id] = graph
            self.index.add_graph(graph_id, graph)
        if self._network is not None:
            # The network shares this engine's graph dict and index, so
            # by now it sees the post-batch view; it still needs the
            # stale ids to drop their fragment verdicts, mirroring the
            # pattern-verdict clearing above.
            self._network.apply_update(stale)
        registry = get_registry()
        registry.counter("covindex.updates").add(1)
        registry.counter("covindex.dirty_graphs").add(
            len(added) + len(removed)
        )
        if check_enabled():
            check_engine(self)
        self._publish_gauges()
        stats = self.stats()
        registry.gauge("covindex.matched_verdicts").set(
            stats["matched_verdicts"]
        )
        registry.gauge("covindex.seen_verdicts").set(stats["seen_verdicts"])

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Aggregate engine statistics via bitset popcounts.

        Verdict totals use ``int.bit_count`` on the canonical int
        verdict bitsets — no per-bit scans.
        """
        ops = self._ops
        return {
            "patterns": len(self._patterns),
            "graphs": len(self._graphs),
            "postings": self.index.num_postings(),
            "matched_verdicts": sum(
                ops.popcount(value) for value in self._match_bits.values()
            ),
            "seen_verdicts": sum(
                ops.popcount(value) for value in self._seen_bits.values()
            ),
        }

    def _publish_gauges(self) -> None:
        registry = get_registry()
        registry.gauge("covindex.patterns").set(len(self._patterns))
        registry.gauge("covindex.postings").set(self.index.num_postings())


# ----------------------------------------------------------------------
# ambient enable flag (mirrors repro.cache.stores)
# ----------------------------------------------------------------------
_enabled = False


def set_covindex(enabled: bool) -> None:
    """Globally enable/disable the coverage engine (CLI ``--covindex``)."""
    global _enabled
    _enabled = enabled


def covindex_enabled() -> bool:
    return _enabled


@contextmanager
def use_covindex(enabled: bool = True):
    """Enable (or disable) the engine for the dynamic extent of the block."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous


__all__ = [
    "MAX_TRACKED_PATTERNS",
    "CoverageEngine",
    "covindex_enabled",
    "fragments_enabled",
    "set_covindex",
    "use_covindex",
]
