"""The coverage engine: filtered, incrementally maintained cover state.

:class:`CoverageEngine` owns a :class:`~repro.covindex.index.CoverageIndex`
over one database view plus, per registered pattern, two int-bitsets:

* ``match_bits`` — graphs *verified* to contain the pattern;
* ``seen_bits`` — graphs whose verdict is known (verified either way, or
  rejected by the filter without a VF2 call).

Cover queries are lazy over the delta: :meth:`pending` returns only the
graphs whose verdict is still unknown **after** filtering — on a fresh
pattern that is the filtered universe, after a
:class:`~repro.graph.database.BatchUpdate` it is just the filtered
*inserted* graphs, because :meth:`apply_update` clears exactly the bits
of removed graphs and leaves every other verdict in place.  One code
path therefore serves both initial coverage and incremental delta
re-verification, and a MIDAS round re-verifies only changed graphs.

The engine never runs VF2 itself; the caller (the
:class:`~repro.patterns.metrics.CoverageOracle`) verifies pending hosts
— through the embedding cache and kernel pool — and reports verdicts
back via :meth:`commit`.  :meth:`vertex_domains` seeds those
verifications with per-vertex candidate domains from the index.

The module also hosts the ambient on/off toggle
(:func:`set_covindex` / :func:`use_covindex` / :func:`covindex_enabled`)
mirroring :mod:`repro.cache.stores`; the engine is off by default and
``ExecutionConfig(covindex=True)`` turns it on for a scope.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from contextlib import contextmanager

from ..check.invariants import check_enabled, check_engine
from ..graph.labeled_graph import LabeledGraph, VertexId
from ..obs import get_registry
from .bitset import bits_of, ids_of
from .index import CoverageIndex

#: Bound on concurrently tracked patterns.  MIDAS rounds evaluate many
#: short-lived candidate patterns; evicting the oldest registration
#: (re-verified from scratch if it ever returns) keeps bitset state
#: proportional to the working set, not to history.
MAX_TRACKED_PATTERNS = 1024


class CoverageEngine:
    """Filter-then-verify cover maintenance over one database view."""

    def __init__(self, graphs: Mapping[int, LabeledGraph]) -> None:
        self._graphs: dict[int, LabeledGraph] = dict(graphs)
        self.index = CoverageIndex.build(self._graphs)
        self._patterns: dict[tuple, LabeledGraph] = {}
        self._match_bits: dict[tuple, int] = {}
        self._seen_bits: dict[tuple, int] = {}
        self._publish_gauges()

    # ------------------------------------------------------------------
    # view access
    # ------------------------------------------------------------------
    @property
    def graphs(self) -> Mapping[int, LabeledGraph]:
        return self._graphs

    def graph_ids(self) -> set[int]:
        return set(self._graphs)

    def __len__(self) -> int:
        return len(self._graphs)

    # ------------------------------------------------------------------
    # pattern registration
    # ------------------------------------------------------------------
    def register(self, key: tuple, pattern: LabeledGraph) -> None:
        """Start tracking *pattern* under its canonical *key*.

        Re-registering a tracked key keeps the stored pattern object —
        verdicts are isomorphism-invariant, so the bits stay valid —
        and refreshes its recency.  Callers must therefore verify with
        :meth:`pattern`, whose vertex IDs :meth:`vertex_domains` is
        keyed by, not with their own isomorphic copy.
        """
        if key in self._patterns:
            self._touch(key)
            return
        while len(self._patterns) >= MAX_TRACKED_PATTERNS:
            oldest = next(iter(self._patterns))
            self.discard(oldest)
        self._patterns[key] = pattern
        self._match_bits[key] = 0
        self._seen_bits[key] = 0
        self._publish_gauges()

    def _touch(self, key: tuple) -> None:
        """Move *key* to the back of the eviction order (LRU, not FIFO)."""
        self._patterns[key] = self._patterns.pop(key)

    def pattern(self, key: tuple) -> LabeledGraph:
        """The stored pattern for *key* — the object whose vertex IDs
        :meth:`vertex_domains` is expressed in."""
        return self._patterns[key]

    def discard(self, key: tuple) -> None:
        self._patterns.pop(key, None)
        self._match_bits.pop(key, None)
        self._seen_bits.pop(key, None)

    def tracked(self, key: tuple) -> bool:
        return key in self._patterns

    # ------------------------------------------------------------------
    # lazy filtered verification
    # ------------------------------------------------------------------
    def pending(self, key: tuple) -> list[int]:
        """Graph IDs whose verdict for *key* is unknown, post-filter.

        Unseen graphs rejected by the posting-list filter are marked
        seen (non-matching) here without any VF2 work — that is the
        "verify only what the filter cannot decide" half of the
        contract.  The returned IDs are sorted, matching the order the
        unfiltered serial loop would visit them in.
        """
        self._touch(key)
        pattern = self._patterns[key]
        unseen = self.index.universe_bits & ~self._seen_bits[key]
        if not unseen:
            return []
        candidates = self.index.candidate_bits(pattern, within=unseen)
        self._seen_bits[key] |= unseen & ~candidates
        return list(ids_of(candidates))

    def commit(self, key: tuple, graph_id: int, verdict: bool) -> None:
        """Record one verification verdict for (*key*, *graph_id*)."""
        bit = 1 << graph_id
        self._seen_bits[key] |= bit
        if verdict:
            self._match_bits[key] |= bit
        get_registry().counter("covindex.verifications").add(1)

    def cover_ids(self, key: tuple) -> frozenset[int]:
        """The verified cover set of *key* (call after draining pending)."""
        self._touch(key)
        if check_enabled():
            check_engine(self)
        return frozenset(ids_of(self._match_bits[key]))

    def vertex_domains(
        self, key: tuple, graph_id: int
    ) -> dict[VertexId, set[VertexId]]:
        """VF2 candidate domains for verifying *key* against *graph_id*."""
        return self.index.vertex_domains(
            self._patterns[key], graph_id, self._graphs[graph_id]
        )

    # ------------------------------------------------------------------
    # verdict persistence (out-of-core warm start; docs/STORAGE.md)
    # ------------------------------------------------------------------
    def export_verdicts(self) -> dict[tuple, tuple[int, int]]:
        """Per tracked pattern key, its ``(match_bits, seen_bits)``.

        The persistence handshake with a durable
        :class:`~repro.store.base.GraphStore`: the store saves these
        bitsets per shard and a restarted engine re-imports them instead
        of re-verifying the whole database.
        """
        return {
            key: (self._match_bits[key], self._seen_bits[key])
            for key in self._patterns
        }

    def import_verdicts(
        self, key: tuple, match_bits: int, seen_bits: int
    ) -> None:
        """Warm-start verdicts for a tracked *key* from persisted bits.

        Bits are intersected with the current universe so verdicts for
        graphs that left the view since the bits were saved are dropped;
        everything else skips re-verification.
        """
        if key not in self._patterns:
            raise KeyError(f"pattern {key!r} is not tracked")
        universe = self.index.universe_bits
        self._match_bits[key] |= match_bits & universe
        self._seen_bits[key] |= seen_bits & universe
        get_registry().counter("covindex.verdicts_imported").add(1)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def apply_update(
        self,
        added: Mapping[int, LabeledGraph],
        removed_ids: Iterable[int],
    ) -> None:
        """Reconcile with a database batch without a rebuild.

        Removed graphs leave the index and lose their verdict bits in
        every tracked pattern; added graphs enter the index unverified,
        so the next :meth:`pending` call per pattern surfaces exactly
        the filtered delta.  Adding a graph_id already in the view is an
        in-place replacement: its old verdicts are cleared too, exactly
        as if it had been removed and re-added.  Verdicts for untouched
        graphs survive.
        """
        removed = [gid for gid in removed_ids if gid in self._graphs]
        for graph_id in removed:
            self.index.remove_graph(graph_id)
            del self._graphs[graph_id]
        stale = removed + [gid for gid in added if gid in self._graphs]
        if stale:
            keep = ~bits_of(stale)
            for key in self._patterns:
                self._match_bits[key] &= keep
                self._seen_bits[key] &= keep
        for graph_id, graph in added.items():
            self._graphs[graph_id] = graph
            self.index.add_graph(graph_id, graph)
        registry = get_registry()
        registry.counter("covindex.updates").add(1)
        registry.counter("covindex.dirty_graphs").add(
            len(added) + len(removed)
        )
        if check_enabled():
            check_engine(self)
        self._publish_gauges()

    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        registry = get_registry()
        registry.gauge("covindex.patterns").set(len(self._patterns))
        registry.gauge("covindex.postings").set(self.index.num_postings())


# ----------------------------------------------------------------------
# ambient enable flag (mirrors repro.cache.stores)
# ----------------------------------------------------------------------
_enabled = False


def set_covindex(enabled: bool) -> None:
    """Globally enable/disable the coverage engine (CLI ``--covindex``)."""
    global _enabled
    _enabled = enabled


def covindex_enabled() -> bool:
    return _enabled


@contextmanager
def use_covindex(enabled: bool = True):
    """Enable (or disable) the engine for the dynamic extent of the block."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous


__all__ = [
    "MAX_TRACKED_PATTERNS",
    "CoverageEngine",
    "covindex_enabled",
    "set_covindex",
    "use_covindex",
]
