"""Database-wide filter-then-verify coverage engine.

Inverted posting lists over cheap graph invariants (int-bitsets) filter
containment candidates before VF2 verification, per-vertex signature
domains shrink the verifications that remain, and per-pattern verdict
bitsets are maintained incrementally across
:class:`~repro.graph.database.BatchUpdate` boundaries so a MIDAS round
re-verifies only changed graphs.  Off by default — enable with
``ExecutionConfig(covindex=True)``, ``--covindex on``, or
:func:`use_covindex`.
"""

from .bitset import bits_of, count, ids_of
from .engine import (
    MAX_TRACKED_PATTERNS,
    CoverageEngine,
    covindex_enabled,
    set_covindex,
    use_covindex,
)
from .index import (
    COUNT_CAP,
    DEGREE_CAP,
    CoverageIndex,
    graph_posting_keys,
    pattern_query_keys,
)

__all__ = [
    "COUNT_CAP",
    "DEGREE_CAP",
    "MAX_TRACKED_PATTERNS",
    "CoverageEngine",
    "CoverageIndex",
    "bits_of",
    "count",
    "covindex_enabled",
    "graph_posting_keys",
    "ids_of",
    "pattern_query_keys",
    "set_covindex",
    "use_covindex",
]
