"""Database-wide filter-then-verify coverage engine.

Inverted posting lists over cheap graph invariants (bitsets on a
selectable substrate — vectorized numpy ``uint64`` word arrays by
default, plain-int reference otherwise; see
:mod:`repro.covindex.bitset`) filter containment candidates before VF2
verification, per-vertex signature domains shrink the verifications
that remain, and per-pattern verdict bitsets are maintained
incrementally across :class:`~repro.graph.database.BatchUpdate`
boundaries so a MIDAS round re-verifies only changed graphs.  Off by
default — enable with ``ExecutionConfig(covindex=True)``,
``--covindex on``, or :func:`use_covindex`; pick the substrate with
``ExecutionConfig(substrate=...)``, ``--substrate``, or
:func:`use_substrate`.
"""

from .bitset import (
    SUBSTRATES,
    available_substrates,
    bits_of,
    count,
    current_substrate,
    ids_of,
    make_ops,
    popcount,
    resolve_substrate,
    set_substrate,
    use_substrate,
)
from .engine import (
    MAX_TRACKED_PATTERNS,
    CoverageEngine,
    covindex_enabled,
    set_covindex,
    use_covindex,
)
from .fragments import (
    DEFAULT_FRAGMENT_BUDGET,
    MIN_FRAGMENT_EDGES,
    FragmentNetwork,
    current_fragment_budget,
    decompose,
    fragments_enabled,
    set_fragments,
    use_fragments,
)
from .index import (
    COUNT_CAP,
    DEGREE_CAP,
    CompiledQuery,
    CoverageIndex,
    graph_posting_keys,
    pattern_query_keys,
)

__all__ = [
    "COUNT_CAP",
    "DEFAULT_FRAGMENT_BUDGET",
    "DEGREE_CAP",
    "MAX_TRACKED_PATTERNS",
    "MIN_FRAGMENT_EDGES",
    "SUBSTRATES",
    "CompiledQuery",
    "CoverageEngine",
    "CoverageIndex",
    "FragmentNetwork",
    "available_substrates",
    "bits_of",
    "count",
    "covindex_enabled",
    "current_fragment_budget",
    "current_substrate",
    "decompose",
    "fragments_enabled",
    "graph_posting_keys",
    "ids_of",
    "make_ops",
    "pattern_query_keys",
    "popcount",
    "resolve_substrate",
    "set_covindex",
    "set_fragments",
    "set_substrate",
    "use_covindex",
    "use_fragments",
    "use_substrate",
]
