"""Int-bitsets over graph IDs.

Posting lists and per-pattern match sets in the coverage engine are
plain Python ints used as bitsets: graph ID *g* is present iff bit *g*
is set.  Arbitrary-precision ints make intersection (``&``), union
(``|``) and difference (``& ~``) single C-level operations over the
whole database view — the reason a pattern's candidate host set is "a
few AND operations instead of a database scan".

Graph IDs are the small dense integers handed out by
:class:`~repro.graph.database.GraphDatabase`, so the ints stay compact.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def bits_of(ids: Iterable[int]) -> int:
    """The bitset containing exactly *ids*."""
    bits = 0
    for graph_id in ids:
        bits |= 1 << graph_id
    return bits


def ids_of(bits: int) -> Iterator[int]:
    """Yield the set graph IDs of *bits* in ascending order.

    Iterates set bits directly (``bits & -bits`` isolates the lowest
    one), so cost scales with the population count — not with the
    highest graph ID ever allocated, which only grows on long-running
    maintenance trajectories.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def count(bits: int) -> int:
    """Number of graph IDs in *bits* (popcount)."""
    return bits.bit_count()


__all__ = ["bits_of", "count", "ids_of"]
