"""Bitsets over graph IDs: the int reference and the numpy substrate.

Posting lists and per-pattern match sets in the coverage engine are
bitsets: graph ID *g* is present iff bit *g* is set.  Two substrates
implement the same algebra behind the small :class:`BitsetOps` layer:

* **int** — plain Python arbitrary-precision ints.  Intersection
  (``&``), union (``|``) and difference (``& ~``) are single C-level
  operations over the whole database view; this is the PR-4 reference
  implementation and the byte-identity baseline the differential
  oracles compare against.
* **numpy** — little-endian ``uint64`` word arrays.  The same algebra
  becomes word-wise vectorized operations, and the coverage index
  stacks every posting row into one 2-D matrix so a pattern's
  candidate filter is a single ``bitwise_and.reduce`` over all its
  posting rows at once (see :mod:`repro.covindex.index`).

Both substrates serialize to/from the canonical int form (``to_int`` /
``from_int``), which is what the SQLite store persists
(:mod:`repro.store.sqlite`) and what index snapshots and journal
digests are computed over — switching substrates never changes any
persisted byte.

Graph IDs are the small dense integers handed out by
:class:`~repro.graph.database.GraphDatabase`, so both forms stay
compact.  The ambient substrate toggle (:func:`set_substrate` /
:func:`use_substrate`, ``ExecutionConfig(substrate=...)`` / CLI
``--substrate``) selects which substrate new indices are built on;
the default is ``numpy`` when numpy is importable and ``int``
otherwise.
"""

from __future__ import annotations

import sys
import warnings
from collections.abc import Iterable, Iterator
from contextlib import contextmanager

try:  # numpy is a declared dependency, but the int substrate keeps the
    import numpy as _np  # engine fully functional without it.
except ImportError:  # pragma: no cover - exercised via resolve_substrate
    _np = None

#: Bits per word of the numpy substrate.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1

#: ``numpy.bitwise_count`` arrived in numpy 2.0; older numpy falls back
#: to the int popcount through ``words_to_int``.
_BITWISE_COUNT = getattr(_np, "bitwise_count", None) if _np is not None else None

#: Native little-endian hosts can serialize word arrays with a plain
#: ``tobytes`` (see :func:`words_to_int`).
_LITTLE_ENDIAN = sys.byteorder == "little"


# ----------------------------------------------------------------------
# int-bitset primitives (the reference substrate)
# ----------------------------------------------------------------------
def bits_of(ids: Iterable[int]) -> int:
    """The bitset containing exactly *ids*.

    Built via per-word buckets: each ID does O(1) small-int work and the
    final bitset is assembled with one ``int.from_bytes`` pass, so dense
    ID sets cost O(n + words) instead of the O(n × words) of repeatedly
    OR-ing ``1 << id`` into an ever-wider accumulator.
    """
    buckets: dict[int, int] = {}
    for graph_id in ids:
        word = graph_id >> 6
        buckets[word] = buckets.get(word, 0) | (1 << (graph_id & 63))
    if not buckets:
        return 0
    buf = bytearray((max(buckets) + 1) * 8)
    for word, value in buckets.items():
        buf[word * 8 : word * 8 + 8] = value.to_bytes(8, "little")
    return int.from_bytes(buf, "little")


def ids_of(bits: int) -> Iterator[int]:
    """Yield the set graph IDs of *bits* in ascending order.

    Iterates set bits directly (``bits & -bits`` isolates the lowest
    one), so cost scales with the population count — not with the
    highest graph ID ever allocated, which only grows on long-running
    maintenance trajectories.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def popcount(bits: int) -> int:
    """Number of graph IDs in *bits*."""
    return bits.bit_count()


#: Backwards-compatible alias of :func:`popcount`.
count = popcount


# ----------------------------------------------------------------------
# numpy word-array primitives
# ----------------------------------------------------------------------
def words_for(num_bits: int) -> int:
    """Words needed to hold *num_bits* bits (at least one)."""
    return max(1, (num_bits + WORD_BITS - 1) >> 6)


def int_to_words(bits: int, num_words: int):
    """*bits* as a writable uint64 word array of exactly *num_words*."""
    data = bits.to_bytes(num_words * 8, "little")
    return _np.frombuffer(data, dtype="<u8").astype(_np.uint64)


def words_to_int(words) -> int:
    """The canonical int form of a uint64 word array.

    The common case — a C-contiguous native-order array on a
    little-endian host, which is what every hot path passes — goes
    straight to ``tobytes``; the ``ascontiguousarray`` normalisation is
    an extra array-op dispatch that costs real microseconds per filter
    query under the serving workload.
    """
    if _LITTLE_ENDIAN and words.dtype == _np.uint64 and (
        words.flags["C_CONTIGUOUS"]
    ):
        return int.from_bytes(words.tobytes(), "little")
    data = _np.ascontiguousarray(words, dtype="<u8").tobytes()
    return int.from_bytes(data, "little")


def words_of(ids: Iterable[int], num_words: int):
    """The word array containing exactly *ids* (all < 64 × num_words)."""
    arr = _np.fromiter(ids, dtype=_np.int64)
    words = _np.zeros(num_words, dtype=_np.uint64)
    if arr.size:
        masks = _np.left_shift(_np.uint64(1), (arr & 63).astype(_np.uint64))
        _np.bitwise_or.at(words, arr >> 6, masks)
    return words


def ids_of_words(words) -> list[int]:
    """The set graph IDs of a word array, ascending.

    Sparse-aware: only the nonzero words are unpacked, so the cost
    scales with the population's word span, not the universe width —
    a delta of a few dozen graphs clustered in one or two words stays
    cheap no matter how wide the view has grown.  Populations spanning
    a handful of words skip numpy entirely (low-bit extraction beats
    five array-op dispatches at that size).
    """
    nonzero_words = words.nonzero()[0]
    if not nonzero_words.size:
        return []
    if nonzero_words.size <= 4:
        out = []
        for word_index in nonzero_words.tolist():
            bits_int = int(words[word_index])
            base = word_index << 6
            while bits_int:
                low = bits_int & -bits_int
                out.append(base + low.bit_length() - 1)
                bits_int ^= low
        return out
    packed = _np.ascontiguousarray(words[nonzero_words], dtype="<u8")
    bits = _np.unpackbits(packed.view(_np.uint8), bitorder="little")
    positions = bits.nonzero()[0]
    return (
        nonzero_words[positions >> 6] * 64 + (positions & 63)
    ).tolist()


def popcount_words(words) -> int:
    """Population count of a word array (or 2-D stack of them)."""
    if _BITWISE_COUNT is not None:
        return int(_np.add.reduce(_BITWISE_COUNT(words), axis=None))
    return words_to_int(words.ravel()).bit_count()


# ----------------------------------------------------------------------
# the BitsetOps layer
# ----------------------------------------------------------------------
class IntBitsetOps:
    """The int-bitset algebra; values are plain Python ints.

    This is the reference substrate: semantics (and costs) are exactly
    the pre-substrate code paths, which is what the covix figure's
    wall-clock baseline and the differential oracles compare against.
    """

    name = "int"

    def ensure_capacity(self, num_bits: int) -> None:
        """Ints grow automatically; capacity is a no-op."""

    def zero(self) -> int:
        return 0

    def from_ids(self, ids: Iterable[int]) -> int:
        return bits_of(ids)

    def from_int(self, bits: int) -> int:
        return bits

    def to_int(self, value: int) -> int:
        return value

    def copy(self, value: int) -> int:
        return value

    def union(self, a: int, b: int) -> int:
        return a | b

    def intersect(self, a: int, b: int) -> int:
        return a & b

    def subtract(self, a: int, b: int) -> int:
        return a & ~b

    def set_bit(self, value: int, graph_id: int) -> int:
        return value | (1 << graph_id)

    def clear_bit(self, value: int, graph_id: int) -> int:
        return value & ~(1 << graph_id)

    def test(self, value: int, graph_id: int) -> bool:
        return bool((value >> graph_id) & 1)

    def is_empty(self, value: int) -> bool:
        return not value

    def popcount(self, value: int) -> int:
        return popcount(value)

    def nbytes(self, value: int) -> int:
        """Resident data bytes of *value* (excludes object headers).

        The measure the fragment network's view-budget accounting is
        asserted against: a subset of the universe never reports more
        bytes than the universe's own width.
        """
        return (value.bit_length() + 7) // 8

    def ids(self, value: int) -> list[int]:
        return list(ids_of(value))


class NumpyBitsetOps:
    """The numpy substrate; values are uint64 word arrays.

    One ops instance is shared by an index and its engine so the word
    width (``num_words``) grows in one place — geometrically, as graph
    IDs are allocated.  Values created before a growth step stay valid:
    every binary operation aligns operand widths by zero-padding the
    shorter side, and ``set_bit`` pads in place first.
    """

    name = "numpy"
    __slots__ = ("num_words",)

    def __init__(self, num_bits: int = WORD_BITS) -> None:
        if _np is None:  # pragma: no cover - guarded by resolve_substrate
            raise RuntimeError("the numpy bitset substrate requires numpy")
        self.num_words = words_for(num_bits)

    def ensure_capacity(self, num_bits: int) -> None:
        needed = words_for(num_bits)
        if needed > self.num_words:
            self.num_words = max(needed, self.num_words * 2)

    def _pad(self, value):
        if value.shape[0] >= self.num_words:
            return value
        out = _np.zeros(self.num_words, dtype=_np.uint64)
        out[: value.shape[0]] = value
        return out

    @staticmethod
    def _aligned(a, b):
        if a.shape[0] == b.shape[0]:
            return a, b
        width = max(a.shape[0], b.shape[0])
        if a.shape[0] < width:
            wide = _np.zeros(width, dtype=_np.uint64)
            wide[: a.shape[0]] = a
            a = wide
        else:
            wide = _np.zeros(width, dtype=_np.uint64)
            wide[: b.shape[0]] = b
            b = wide
        return a, b

    def zero(self):
        return _np.zeros(self.num_words, dtype=_np.uint64)

    def from_ids(self, ids: Iterable[int]):
        ids = list(ids)
        if ids:
            self.ensure_capacity(max(ids) + 1)
        return words_of(ids, self.num_words)

    def from_int(self, bits: int):
        self.ensure_capacity(max(1, bits.bit_length()))
        return int_to_words(bits, self.num_words)

    def to_int(self, value) -> int:
        return words_to_int(value)

    def copy(self, value):
        return value.copy()

    def union(self, a, b):
        a, b = self._aligned(a, b)
        return a | b

    def intersect(self, a, b):
        a, b = self._aligned(a, b)
        return a & b

    def subtract(self, a, b):
        a, b = self._aligned(a, b)
        return a & ~b

    def set_bit(self, value, graph_id: int):
        self.ensure_capacity(graph_id + 1)
        value = self._pad(value)
        value[graph_id >> 6] |= _np.uint64(1 << (graph_id & 63))
        return value

    def clear_bit(self, value, graph_id: int):
        word = graph_id >> 6
        if word < value.shape[0]:
            value[word] &= _np.uint64(~(1 << (graph_id & 63)) & _WORD_MASK)
        return value

    def test(self, value, graph_id: int) -> bool:
        word = graph_id >> 6
        if word >= value.shape[0]:
            return False
        return bool((int(value[word]) >> (graph_id & 63)) & 1)

    def is_empty(self, value) -> bool:
        return not value.any()

    def popcount(self, value) -> int:
        return popcount_words(value)

    def nbytes(self, value) -> int:
        """Resident data bytes of *value*'s word array."""
        return int(value.nbytes)

    def ids(self, value) -> list[int]:
        return ids_of_words(value)


#: The substrates :func:`make_ops` understands.
SUBSTRATES = ("int", "numpy")


def available_substrates() -> tuple[str, ...]:
    """The substrates this process can actually build (numpy may be absent)."""
    return SUBSTRATES if _np is not None else ("int",)


def make_ops(substrate: str):
    """A fresh :class:`BitsetOps` instance for *substrate* (resolved)."""
    if substrate not in SUBSTRATES:
        raise ValueError(
            f"unknown substrate {substrate!r}; choose from {SUBSTRATES}"
        )
    if substrate == "numpy":
        return NumpyBitsetOps()
    return IntBitsetOps()


# ----------------------------------------------------------------------
# ambient substrate selection (mirrors repro.covindex.engine's toggle)
# ----------------------------------------------------------------------
_DEFAULT_SUBSTRATE = "numpy" if _np is not None else "int"
_substrate = _DEFAULT_SUBSTRATE
_warned_no_numpy = False


def set_substrate(name: str) -> None:
    """Globally select the bitset substrate (CLI ``--substrate``)."""
    global _substrate
    if name not in SUBSTRATES:
        raise ValueError(
            f"unknown substrate {name!r}; choose from {SUBSTRATES}"
        )
    _substrate = name


def current_substrate() -> str:
    return _substrate


@contextmanager
def use_substrate(name: str):
    """Select *name* as the substrate for the dynamic extent of the block."""
    global _substrate
    if name not in SUBSTRATES:
        raise ValueError(
            f"unknown substrate {name!r}; choose from {SUBSTRATES}"
        )
    previous = _substrate
    _substrate = name
    try:
        yield
    finally:
        _substrate = previous


def resolve_substrate(name: str | None = None) -> str:
    """*name* (or the ambient substrate) resolved to a buildable one.

    Requesting ``numpy`` without numpy installed degrades to ``int``
    with a one-time warning rather than failing: the substrates are
    byte-identical, so the fallback only costs speed.
    """
    global _warned_no_numpy
    if name is None:
        name = _substrate
    if name not in SUBSTRATES:
        raise ValueError(
            f"unknown substrate {name!r}; choose from {SUBSTRATES}"
        )
    if name == "numpy" and _np is None:
        if not _warned_no_numpy:
            _warned_no_numpy = True
            warnings.warn(
                "numpy is unavailable; the coverage engine falls back to "
                "the int bitset substrate (identical results, no "
                "vectorization)",
                RuntimeWarning,
                stacklevel=2,
            )
        return "int"
    return name


__all__ = [
    "SUBSTRATES",
    "WORD_BITS",
    "IntBitsetOps",
    "NumpyBitsetOps",
    "available_substrates",
    "bits_of",
    "count",
    "current_substrate",
    "ids_of",
    "ids_of_words",
    "int_to_words",
    "make_ops",
    "popcount",
    "popcount_words",
    "resolve_substrate",
    "set_substrate",
    "use_substrate",
    "words_for",
    "words_of",
    "words_to_int",
]
