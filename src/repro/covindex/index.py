"""Inverted posting lists over a graph-database view, keyed by invariants.

:class:`CoverageIndex` indexes every graph of a view under three cheap
invariant families, each a *necessary* condition for a monomorphism
``pattern ⊆ graph`` (the filter half of filter-then-verify):

* ``("vl", label, c)`` — graphs with ≥ *c* vertices labelled *label*;
* ``("el", edge_label, c)`` — graphs with ≥ *c* edges labelled
  *edge_label* (degree-capped: multiplicities saturate at
  :data:`COUNT_CAP`);
* ``("nb", label, nbr_label, c)`` — graphs containing a vertex labelled
  *label* with ≥ *c* neighbours labelled *nbr_label* (the 1-hop
  neighbourhood signature), plus ``("deg", label, d)`` for raw
  degree-capped label/degree pairs.

Posting lists are int-bitsets (:mod:`repro.covindex.bitset`), so a
pattern's candidate host set is the AND of the posting lists of its
invariant keys intersected with the view's universe — no database scan.

The same per-vertex signatures also seed VF2: :meth:`vertex_domains`
returns, for one surviving candidate host, the admissible host vertices
of every pattern vertex (label equality, degree dominance, 1-hop
neighbour-label multiset dominance via
:func:`~repro.isomorphism.invariants.multiset_dominates`), shrinking the
search tree of the verifications that survive filtering.

Maintenance is incremental: :meth:`add_graph` / :meth:`remove_graph`
update exactly the posting lists a graph participates in (a reverse
key map makes removal O(keys-of-graph)); a from-scratch
:meth:`build` is the fallback, and :meth:`snapshot` gives the canonical
structural form both paths must agree on.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..isomorphism.invariants import multiset_dominates
from ..obs import get_registry
from .bitset import bits_of, ids_of

#: Saturation cap for invariant multiplicities.  A pattern needing more
#: than COUNT_CAP occurrences of an invariant queries the capped key —
#: strictly weaker, never unsound — while posting-list count stays
#: bounded per graph.
COUNT_CAP = 4

#: Saturation cap for vertex degrees in ``("deg", label, d)`` keys.
DEGREE_CAP = 4


def _neighbor_label_counts(
    graph: LabeledGraph, vertex: VertexId
) -> dict[str, int]:
    counts: dict[str, int] = {}
    for neighbor in graph.neighbors(vertex):
        label = graph.label(neighbor)
        counts[label] = counts.get(label, 0) + 1
    return counts


def graph_posting_keys(graph: LabeledGraph) -> set[tuple]:
    """Every invariant key *graph* satisfies (its posting memberships)."""
    keys: set[tuple] = set()
    for label, n in graph.vertex_label_multiset().items():
        for c in range(1, min(n, COUNT_CAP) + 1):
            keys.add(("vl", label, c))
    for edge_label, n in graph.edge_label_multiset().items():
        for c in range(1, min(n, COUNT_CAP) + 1):
            keys.add(("el", edge_label, c))
    for vertex in graph.vertices():
        label = graph.label(vertex)
        degree = graph.degree(vertex)
        for d in range(1, min(degree, DEGREE_CAP) + 1):
            keys.add(("deg", label, d))
        for nbr_label, n in _neighbor_label_counts(graph, vertex).items():
            for c in range(1, min(n, COUNT_CAP) + 1):
                keys.add(("nb", label, nbr_label, c))
    return keys


def pattern_query_keys(pattern: LabeledGraph) -> set[tuple]:
    """The invariant keys a host must satisfy to possibly contain *pattern*.

    Each key is a necessary condition for a monomorphism: label
    multiplicities map injectively, pattern edges map to distinct host
    edges, and each pattern vertex's degree and 1-hop neighbour-label
    multiset must be dominated by its image's.
    """
    keys: set[tuple] = set()
    for label, n in pattern.vertex_label_multiset().items():
        keys.add(("vl", label, min(n, COUNT_CAP)))
    for edge_label, n in pattern.edge_label_multiset().items():
        keys.add(("el", edge_label, min(n, COUNT_CAP)))
    for vertex in pattern.vertices():
        label = pattern.label(vertex)
        degree = pattern.degree(vertex)
        if degree:
            keys.add(("deg", label, min(degree, DEGREE_CAP)))
        for nbr_label, n in _neighbor_label_counts(pattern, vertex).items():
            keys.add(("nb", label, nbr_label, min(n, COUNT_CAP)))
    return keys


class CoverageIndex:
    """Bitset posting lists plus per-graph vertex signature tables."""

    def __init__(self) -> None:
        self._postings: dict[tuple, int] = {}
        self._keys_by_graph: dict[int, set[tuple]] = {}
        self._universe = 0
        # Lazily built per-graph tables for vertex_domains:
        # graph id -> label -> [(vertex, degree, neighbour label counts)].
        self._signature_tables: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # construction & maintenance
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graphs: Mapping[int, LabeledGraph]) -> "CoverageIndex":
        """Index a whole view from scratch (the rebuild fallback)."""
        index = cls()
        for graph_id in sorted(graphs):
            index.add_graph(graph_id, graphs[graph_id])
        get_registry().counter("covindex.rebuilds").add(1)
        return index

    @classmethod
    def from_parts(
        cls,
        postings: Mapping[tuple, int],
        keys_by_graph: Mapping[int, set[tuple]],
    ) -> "CoverageIndex":
        """Reassemble an index from persisted posting lists.

        The out-of-core store keeps postings and per-graph key sets on
        disk (docs/STORAGE.md); this re-creates the exact index
        :meth:`build` would produce — same :meth:`snapshot` — without
        re-deriving any invariant.  Empty posting lists are dropped,
        matching the incremental-maintenance representation.
        """
        index = cls()
        index._postings = {
            key: bits for key, bits in postings.items() if bits
        }
        index._keys_by_graph = {
            graph_id: set(keys) for graph_id, keys in keys_by_graph.items()
        }
        for graph_id in index._keys_by_graph:
            index._universe |= 1 << graph_id
        return index

    def add_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        """Insert *graph_id* into every posting list it satisfies."""
        if graph_id in self._keys_by_graph:
            self.remove_graph(graph_id)
        bit = 1 << graph_id
        keys = graph_posting_keys(graph)
        for key in keys:
            self._postings[key] = self._postings.get(key, 0) | bit
        self._keys_by_graph[graph_id] = keys
        self._universe |= bit

    def remove_graph(self, graph_id: int) -> None:
        """Drop *graph_id* from its posting lists (no full scan)."""
        keys = self._keys_by_graph.pop(graph_id, None)
        if keys is None:
            return
        mask = ~(1 << graph_id)
        for key in keys:
            remaining = self._postings[key] & mask
            if remaining:
                self._postings[key] = remaining
            else:
                del self._postings[key]
        self._universe &= mask
        self._signature_tables.pop(graph_id, None)

    # ------------------------------------------------------------------
    # the filter
    # ------------------------------------------------------------------
    @property
    def universe_bits(self) -> int:
        return self._universe

    def __contains__(self, graph_id: int) -> bool:
        return bool(self._universe & (1 << graph_id))

    def __len__(self) -> int:
        return len(self._keys_by_graph)

    def num_postings(self) -> int:
        return len(self._postings)

    def candidate_bits(
        self, pattern: LabeledGraph, within: int | None = None
    ) -> int:
        """AND of *pattern*'s posting lists, restricted to *within*.

        Sound: any graph containing *pattern* survives.  A pattern key
        with no posting list proves no indexed graph can contain the
        pattern, so the result collapses to zero immediately.
        """
        bits = self._universe if within is None else within & self._universe
        registry = get_registry()
        registry.counter("covindex.filter_queries").add(1)
        before = bits.bit_count()
        for key in pattern_query_keys(pattern):
            bits &= self._postings.get(key, 0)
            if not bits:
                break
        kept = bits.bit_count()
        registry.counter("covindex.candidates_kept").add(kept)
        registry.counter("covindex.candidates_pruned").add(before - kept)
        return bits

    def candidate_ids(
        self, pattern: LabeledGraph, within: int | None = None
    ) -> list[int]:
        """Sorted candidate graph IDs (see :meth:`candidate_bits`)."""
        return list(ids_of(self.candidate_bits(pattern, within)))

    # ------------------------------------------------------------------
    # VF2 candidate-domain seeding
    # ------------------------------------------------------------------
    def _signature_table(self, graph_id: int, graph: LabeledGraph) -> dict:
        table = self._signature_tables.get(graph_id)
        if table is None:
            table = {}
            for vertex in graph.vertices():
                entry = (
                    vertex,
                    graph.degree(vertex),
                    _neighbor_label_counts(graph, vertex),
                )
                table.setdefault(graph.label(vertex), []).append(entry)
            self._signature_tables[graph_id] = table
        return table

    def vertex_domains(
        self, pattern: LabeledGraph, graph_id: int, graph: LabeledGraph
    ) -> dict[VertexId, set[VertexId]]:
        """Admissible host vertices per pattern vertex, for VF2 seeding.

        A host vertex is admissible when its label matches, its degree
        dominates and its 1-hop neighbour-label multiset dominates the
        pattern vertex's.  All three are necessary conditions, so the
        domains never exclude a vertex participating in an embedding.
        """
        table = self._signature_table(graph_id, graph)
        domains: dict[VertexId, set[VertexId]] = {}
        for vertex in pattern.vertices():
            degree = pattern.degree(vertex)
            neighbors = _neighbor_label_counts(pattern, vertex)
            domains[vertex] = {
                host_vertex
                for host_vertex, host_degree, host_neighbors in table.get(
                    pattern.label(vertex), ()
                )
                if host_degree >= degree
                and multiset_dominates(neighbors, host_neighbors)
            }
        return domains

    # ------------------------------------------------------------------
    # structural identity (incremental ≡ rebuild)
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """Canonical structural form: ``(universe, sorted postings)``.

        Two indices over the same view must produce equal snapshots no
        matter how they got there (incremental maintenance vs from-
        scratch build); the equality test of the maintenance contract.
        """
        return (
            self._universe,
            tuple(sorted(self._postings.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageIndex):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CoverageIndex |D|={len(self)} "
            f"postings={len(self._postings)}>"
        )


__all__ = [
    "COUNT_CAP",
    "DEGREE_CAP",
    "CoverageIndex",
    "graph_posting_keys",
    "pattern_query_keys",
]
