"""Inverted posting lists over a graph-database view, keyed by invariants.

:class:`CoverageIndex` indexes every graph of a view under three cheap
invariant families, each a *necessary* condition for a monomorphism
``pattern ⊆ graph`` (the filter half of filter-then-verify):

* ``("vl", label, c)`` — graphs with ≥ *c* vertices labelled *label*;
* ``("el", edge_label, c)`` — graphs with ≥ *c* edges labelled
  *edge_label* (degree-capped: multiplicities saturate at
  :data:`COUNT_CAP`);
* ``("nb", label, nbr_label, c)`` — graphs containing a vertex labelled
  *label* with ≥ *c* neighbours labelled *nbr_label* (the 1-hop
  neighbourhood signature), plus ``("deg", label, d)`` for raw
  degree-capped label/degree pairs;
* ``("degc", label, d, c)`` — graphs with ≥ *c* vertices labelled
  *label* of degree ≥ *d* (the counted strengthening of ``deg``;
  ``c == 1`` is the ``deg`` key itself);
* ``("wg", end_a, mid, end_b, c)`` — graphs with ≥ *c* wedges (2-paths)
  whose endpoint/centre labels form the order-normalized triple:
  vertex-injective embeddings map distinct pattern wedges to distinct
  host wedges.

Posting lists are bitsets (:mod:`repro.covindex.bitset`), so a
pattern's candidate host set is the AND of the posting lists of its
invariant keys intersected with the view's universe — no database scan.
Two substrates store them:

* ``int`` — one Python int per key (the PR-4 reference; byte-identity
  baseline for the differential oracles and the covix figure).
* ``numpy`` — all posting rows of every family stacked into one 2-D
  ``uint64`` matrix.  A pattern filter gathers its keys' row indices
  and evaluates a single ``bitwise_and.reduce`` over the stack — one
  vectorized call, no per-family loop; :meth:`compile` caches the
  row-index plan per pattern; row indices are permanent (emptied rows
  are zeroed, never freed or recycled), so usable plans live forever
  and allocations invalidate only cached impossibility.
  :meth:`run_query` converts the reduced word row to the canonical int
  at the boundary: the vectorized matrix absorbs the O(keys) work,
  while the many tiny per-call set operations downstream (verdict
  deltas, membership tests) stay on big-ints, whose sub-microsecond
  per-op cost beats array-op dispatch overhead at that granularity.

Both substrates expose the same canonical form — :meth:`snapshot` and
:meth:`posting_items` are plain ints — so persistence
(:mod:`repro.store.sqlite`), journal digests and cross-substrate
equality never see substrate internals.

The same per-vertex signatures also seed VF2: :meth:`vertex_domains`
returns, for one surviving candidate host, the admissible host vertices
of every pattern vertex (label equality, degree dominance, 1-hop
neighbour-label multiset dominance via
:func:`~repro.isomorphism.invariants.multiset_dominates`), shrinking the
search tree of the verifications that survive filtering.

Maintenance is incremental: :meth:`add_graph` / :meth:`remove_graph`
update exactly the posting lists a graph participates in (a reverse
key map makes removal O(keys-of-graph)); a from-scratch
:meth:`build` is the fallback, and :meth:`snapshot` gives the canonical
structural form both paths must agree on.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..isomorphism.invariants import multiset_dominates
from ..obs import get_registry
from .bitset import bits_of, ids_of, make_ops, resolve_substrate, words_to_int

try:
    import numpy as _np
except ImportError:  # pragma: no cover - int substrate only
    _np = None

_WORD_MASK = (1 << 64) - 1

#: Saturation cap for invariant multiplicities.  A pattern needing more
#: than COUNT_CAP occurrences of an invariant queries the capped key —
#: strictly weaker, never unsound — while posting-list count stays
#: bounded per graph.
COUNT_CAP = 4

#: Saturation cap for the high-multiplicity families (``vl`` vertex
#: labels, ``el`` edge labels, ``wg`` wedges).  Molecule-like graphs
#: carry dozens of same-labelled vertices/edges/wedges, so the generic
#: cap saturates immediately and loses all discrimination; a higher cap
#: keeps these families informative for patterns near the size budget.
BULK_COUNT_CAP = 8

#: Saturation cap for vertex degrees in ``("deg", label, d)`` keys.
DEGREE_CAP = 4


def _neighbor_label_counts(
    graph: LabeledGraph, vertex: VertexId
) -> dict[str, int]:
    counts: dict[str, int] = {}
    for neighbor in graph.neighbors(vertex):
        label = graph.label(neighbor)
        counts[label] = counts.get(label, 0) + 1
    return counts


def _neighbor_threshold_counts(graph: LabeledGraph) -> dict[tuple, int]:
    """``(label, nbr_label, c) -> #vertices`` with ≥ *c* such neighbours."""
    counts: dict[tuple, int] = {}
    for vertex in graph.vertices():
        label = graph.label(vertex)
        for nbr_label, n in _neighbor_label_counts(graph, vertex).items():
            for c in range(1, min(n, COUNT_CAP) + 1):
                triple = (label, nbr_label, c)
                counts[triple] = counts.get(triple, 0) + 1
    return counts


def _degree_threshold_counts(graph: LabeledGraph) -> dict[tuple, int]:
    """``(label, d) -> |{v : label(v)=label, degree(v) >= d}|`` (capped d)."""
    counts: dict[tuple, int] = {}
    for vertex in graph.vertices():
        label = graph.label(vertex)
        for d in range(1, min(graph.degree(vertex), DEGREE_CAP) + 1):
            pair = (label, d)
            counts[pair] = counts.get(pair, 0) + 1
    return counts


def _wedge_counts(graph: LabeledGraph) -> dict[tuple, int]:
    """``(end_a, mid, end_b) -> #wedges`` — label triples of 2-paths.

    A wedge is an unordered pair of distinct neighbours of one centre
    vertex; end labels are order-normalized so the triple is invariant
    under reflection.
    """
    counts: dict[tuple, int] = {}
    for mid in graph.vertices():
        nbr_labels = sorted(
            graph.label(n) for n in graph.neighbors(mid)
        )
        if len(nbr_labels) < 2:
            continue
        mid_label = graph.label(mid)
        for i, la in enumerate(nbr_labels):
            for lb in nbr_labels[i + 1 :]:
                triple = (la, mid_label, lb)
                counts[triple] = counts.get(triple, 0) + 1
    return counts


def graph_posting_keys(graph: LabeledGraph) -> set[tuple]:
    """Every invariant key *graph* satisfies (its posting memberships)."""
    keys: set[tuple] = set()
    for label, n in graph.vertex_label_multiset().items():
        for c in range(1, min(n, BULK_COUNT_CAP) + 1):
            keys.add(("vl", label, c))
    for edge_label, n in graph.edge_label_multiset().items():
        for c in range(1, min(n, BULK_COUNT_CAP) + 1):
            keys.add(("el", edge_label, c))
    for vertex in graph.vertices():
        label = graph.label(vertex)
        degree = graph.degree(vertex)
        for d in range(1, min(degree, DEGREE_CAP) + 1):
            keys.add(("deg", label, d))
        for nbr_label, n in _neighbor_label_counts(graph, vertex).items():
            for c in range(1, min(n, COUNT_CAP) + 1):
                keys.add(("nb", label, nbr_label, c))
    for (label, d), n in _degree_threshold_counts(graph).items():
        # c == 1 is exactly the ("deg", label, d) key above.
        for c in range(2, min(n, COUNT_CAP) + 1):
            keys.add(("degc", label, d, c))
    for (label, nbr_label, c), n in _neighbor_threshold_counts(
        graph
    ).items():
        # k == 1 is exactly the ("nb", label, nbr_label, c) key above.
        for k in range(2, min(n, COUNT_CAP) + 1):
            keys.add(("nbc", label, nbr_label, c, k))
    for (la, lm, lb), n in _wedge_counts(graph).items():
        for c in range(1, min(n, BULK_COUNT_CAP) + 1):
            keys.add(("wg", la, lm, lb, c))
    return keys


def pattern_query_keys(pattern: LabeledGraph) -> set[tuple]:
    """The invariant keys a host must satisfy to possibly contain *pattern*.

    Each key is a necessary condition for a monomorphism: label
    multiplicities map injectively, pattern edges map to distinct host
    edges, and each pattern vertex's degree and 1-hop neighbour-label
    multiset must be dominated by its image's.
    """
    keys: set[tuple] = set()
    for label, n in pattern.vertex_label_multiset().items():
        keys.add(("vl", label, min(n, BULK_COUNT_CAP)))
    for edge_label, n in pattern.edge_label_multiset().items():
        keys.add(("el", edge_label, min(n, BULK_COUNT_CAP)))
    for vertex in pattern.vertices():
        label = pattern.label(vertex)
        degree = pattern.degree(vertex)
        if degree:
            keys.add(("deg", label, min(degree, DEGREE_CAP)))
        for nbr_label, n in _neighbor_label_counts(pattern, vertex).items():
            keys.add(("nb", label, nbr_label, min(n, COUNT_CAP)))
    for (label, d), n in _degree_threshold_counts(pattern).items():
        # Distinct pattern vertices map to distinct host vertices, so a
        # host needs >= n vertices of this label at this degree floor;
        # n == 1 is already demanded by the ("deg", label, d) key.
        if n >= 2:
            keys.add(("degc", label, d, min(n, COUNT_CAP)))
    for (label, nbr_label, c), n in _neighbor_threshold_counts(
        pattern
    ).items():
        # Same injectivity argument per neighbourhood signature; the
        # n == 1 case is the ("nb", ...) key above.
        if n >= 2:
            keys.add(("nbc", label, nbr_label, c, min(n, COUNT_CAP)))
    for (la, lm, lb), n in _wedge_counts(pattern).items():
        # Vertex-injective embeddings map distinct wedges to distinct
        # host wedges with the same label triple.
        keys.add(("wg", la, lm, lb, min(n, BULK_COUNT_CAP)))
    # Implied-key elimination: a ("degc", l, d, c) demand subsumes the
    # ("deg", l, d) one — its posting list is a subset — and ("nbc", l,
    # nl, c, k) likewise subsumes ("nb", l, nl, c).  Dropping the
    # implied keys shrinks every filter plan (and the int substrate's
    # AND loop) without changing the intersection.
    for key in [k for k in keys if k[0] == "degc"]:
        keys.discard(("deg", key[1], key[2]))
    for key in [k for k in keys if k[0] == "nbc"]:
        keys.discard(("nb", key[1], key[2], key[3]))
    return keys


class _PostingMatrix:
    """Every posting row of the index, stacked in one uint64 matrix.

    Rows are allocated densely and — crucially for plan stability —
    **never freed**: a posting list whose last bit clears keeps its
    (all-zero) row, so cached :class:`CompiledQuery` row plans survive
    every maintenance round and an emptied key still ANDs to the
    correct zero result.  Maintenance churn would otherwise invalidate
    every cached plan each round, putting an O(keys) gather back on the
    filter hot path.  Row count is bounded by the number of *distinct*
    invariant keys the view has ever exhibited (label-combinatorial,
    small in practice), not by churn volume.  The canonical views
    (:meth:`int_items`, :meth:`row_count`) skip empty rows, so
    snapshots and persistence never see the difference.

    The word width tracks the shared ops instance lazily; row indices
    survive width growth, so only allocation changes the layout (the
    caller bumps its alloc version, which invalidates only cached
    *impossible* verdicts — see :class:`CompiledQuery`).
    """

    def __init__(self, ops) -> None:
        self._ops = ops
        self._rows: dict[tuple, int] = {}
        self._matrix = _np.zeros((0, ops.num_words), dtype=_np.uint64)

    def _sync_width(self) -> None:
        if self._matrix.shape[1] < self._ops.num_words:
            wider = _np.zeros(
                (self._matrix.shape[0], self._ops.num_words),
                dtype=_np.uint64,
            )
            wider[:, : self._matrix.shape[1]] = self._matrix
            self._matrix = wider

    def _alloc_row(self) -> int:
        used = len(self._rows)
        if used == self._matrix.shape[0]:
            grown = _np.zeros(
                (max(4, used * 2), self._matrix.shape[1]),
                dtype=_np.uint64,
            )
            grown[:used] = self._matrix
            self._matrix = grown
        return used

    def set_bit(self, key: tuple, graph_id: int) -> bool:
        """Set *graph_id* in *key*'s row; True when a row was allocated."""
        self._sync_width()
        changed = False
        row = self._rows.get(key)
        if row is None:
            row = self._alloc_row()
            self._rows[key] = row
            changed = True
        self._matrix[row, graph_id >> 6] |= _np.uint64(1 << (graph_id & 63))
        return changed

    def clear_bit(self, key: tuple, graph_id: int) -> None:
        """Clear *graph_id* from *key*'s row (the row itself persists)."""
        row = self._rows.get(key)
        if row is None:
            return
        word = graph_id >> 6
        if word < self._matrix.shape[1]:
            self._matrix[row, word] &= _np.uint64(
                ~(1 << (graph_id & 63)) & _WORD_MASK
            )

    def set_row(self, key: tuple, value) -> bool:
        """Install a whole row for *key*; True when a row was allocated."""
        self._sync_width()
        changed = False
        row = self._rows.get(key)
        if row is None:
            row = self._alloc_row()
            self._rows[key] = row
            changed = True
        self._matrix[row, :] = 0
        self._matrix[row, : value.shape[0]] = value
        return changed

    def get_int(self, key: tuple) -> int:
        row = self._rows.get(key)
        return 0 if row is None else words_to_int(self._matrix[row])

    def int_items(self) -> Iterator[tuple[tuple, int]]:
        """Canonical ``(key, int_bits)`` pairs; emptied rows are skipped
        so snapshots match the int substrate's dropped-posting form."""
        for key, row in self._rows.items():
            bits = words_to_int(self._matrix[row])
            if bits:
                yield key, bits

    def row_count(self) -> int:
        """Non-empty posting rows (the substrate-independent count)."""
        if not self._rows:
            return 0
        used = self._matrix[list(self._rows.values())]
        return int(used.any(axis=1).sum())

    def gather(self, keys):
        """Row indices of *keys*, or None when any key has no row."""
        rows = []
        for key in keys:
            row = self._rows.get(key)
            if row is None:
                return None
            rows.append(row)
        return _np.array(rows, dtype=_np.intp)

    def reduce(self, rows):
        """AND of the posting rows at *rows*, at the current ops width.

        Exactly two array-op dispatches — a fancy-index gather and one
        ``bitwise_and.reduce`` — which matters more than the copies
        they make: under the interleaved serving workload each numpy
        entry costs microseconds of dispatch regardless of data size
        (``np.take`` with a preallocated ``out=``, nominally
        copy-free, measures ~3x slower here than this form).
        """
        self._sync_width()
        return _np.bitwise_and.reduce(self._matrix[rows], axis=0)


class CompiledQuery:
    """A pattern's cached filter plan against one index's row layout.

    On the numpy substrate, running a filter costs a dict lookup per
    invariant key to find its posting row.  Engines run the same
    pattern's filter every round, so the row-index arrays are cached
    here.  Row indices are *permanent* — the matrix only grows, and
    emptied rows are kept (zeroed) rather than freed — so a usable
    plan never goes stale; only a cached *impossible* verdict
    revalidates, and only against the allocation counter, since a new
    row may supply the missing key.  Maintenance rounds therefore
    never put the O(keys) gather back on the filter hot path.
    On the int substrate this is a plain wrapper: keys are recomputed
    per run, exactly the reference behaviour the covix baseline
    measures.
    """

    __slots__ = (
        "pattern", "_keys", "_alloc_seen", "_plan", "_impossible",
    )

    def __init__(self, pattern: LabeledGraph) -> None:
        self.pattern = pattern
        self._keys: set[tuple] | None = None
        self._alloc_seen = -1
        self._plan = None
        self._impossible = False

    def _plan_for(self, index: "CoverageIndex"):
        # Row indices are permanent (the matrix never frees rows), so a
        # usable plan is valid forever; only a cached *impossible*
        # verdict revalidates, and only when an allocation may have
        # supplied the missing key.
        if self._plan is None and (
            not self._impossible
            or index._alloc_version != self._alloc_seen
        ):
            if self._keys is None:
                self._keys = pattern_query_keys(self.pattern)
            self._plan, self._impossible = index._build_plan(self._keys)
            self._alloc_seen = index._alloc_version
        return None if self._impossible else self._plan


class CoverageIndex:
    """Bitset posting lists plus per-graph vertex signature tables."""

    def __init__(self, substrate: str | None = None) -> None:
        self.substrate = resolve_substrate(substrate)
        self._ops = make_ops(self.substrate)
        # int substrate: key -> int bitset.  numpy substrate: one
        # posting matrix over all keys (and _postings stays empty).
        self._postings: dict[tuple, int] = {}
        self._matrix: _PostingMatrix | None = (
            _PostingMatrix(self._ops) if self.substrate == "numpy" else None
        )
        # Plan-invalidation counter: allocations never move existing
        # rows (and frees never happen), so only a cached impossibility
        # verdict ever revalidates against it; see CompiledQuery.
        self._alloc_version = 0
        self._keys_by_graph: dict[int, set[tuple]] = {}
        # Always the canonical int, whatever the posting substrate —
        # see run_query for why the boundary sits here.
        self._universe = 0
        # Lazily built per-graph tables for vertex_domains:
        # graph id -> label -> [(vertex, degree, neighbour label counts)].
        self._signature_tables: dict[int, dict] = {}
        # Hot-path counter objects, cached per registry identity (the
        # ambient registry can be swapped; counters within one never
        # are) — saves three name lookups per filter query.
        self._counter_cache: tuple | None = None

    def __getstate__(self):
        # Counter objects carry locks — drop the cache when the index
        # is copied/pickled (maintenance snapshots deepcopy engines);
        # it repopulates on the next filter query.
        state = self.__dict__.copy()
        state["_counter_cache"] = None
        return state

    def _query_counters(self):
        registry = get_registry()
        cached = self._counter_cache
        if cached is None or cached[0] is not registry:
            cached = self._counter_cache = (
                registry,
                registry.counter("covindex.filter_queries"),
                registry.counter("covindex.candidates_kept"),
                registry.counter("covindex.candidates_pruned"),
            )
        return cached

    @property
    def ops(self):
        """The shared :class:`~repro.covindex.bitset.BitsetOps` instance."""
        return self._ops

    # ------------------------------------------------------------------
    # construction & maintenance
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graphs: Mapping[int, LabeledGraph],
        substrate: str | None = None,
    ) -> "CoverageIndex":
        """Index a whole view from scratch (the rebuild fallback)."""
        index = cls(substrate=substrate)
        for graph_id in sorted(graphs):
            index.add_graph(graph_id, graphs[graph_id])
        get_registry().counter("covindex.rebuilds").add(1)
        return index

    @classmethod
    def from_parts(
        cls,
        postings: Mapping[tuple, int],
        keys_by_graph: Mapping[int, set[tuple]],
        substrate: str | None = None,
    ) -> "CoverageIndex":
        """Reassemble an index from persisted posting lists.

        The out-of-core store keeps postings and per-graph key sets on
        disk (docs/STORAGE.md); this re-creates the exact index
        :meth:`build` would produce — same :meth:`snapshot` — without
        re-deriving any invariant.  Empty posting lists are dropped,
        matching the incremental-maintenance representation.
        """
        index = cls(substrate=substrate)
        index._keys_by_graph = {
            graph_id: set(keys) for graph_id, keys in keys_by_graph.items()
        }
        if index._matrix is None:
            index._postings = {
                key: bits for key, bits in postings.items() if bits
            }
        else:
            if index._keys_by_graph:
                index._ops.ensure_capacity(max(index._keys_by_graph) + 1)
            for key, bits in postings.items():
                if bits:
                    index._matrix.set_row(key, index._ops.from_int(bits))
            index._alloc_version += 1
        index._universe = bits_of(index._keys_by_graph)
        return index

    def add_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        """Insert *graph_id* into every posting list it satisfies."""
        if graph_id in self._keys_by_graph:
            self.remove_graph(graph_id)
        keys = graph_posting_keys(graph)
        if self._matrix is None:
            bit = 1 << graph_id
            for key in keys:
                self._postings[key] = self._postings.get(key, 0) | bit
        else:
            self._ops.ensure_capacity(graph_id + 1)
            changed = False
            for key in keys:
                changed |= self._matrix.set_bit(key, graph_id)
            if changed:
                self._alloc_version += 1
        self._keys_by_graph[graph_id] = keys
        self._universe |= 1 << graph_id

    def remove_graph(self, graph_id: int) -> None:
        """Drop *graph_id* from its posting lists (no full scan)."""
        keys = self._keys_by_graph.pop(graph_id, None)
        if keys is None:
            return
        if self._matrix is None:
            mask = ~(1 << graph_id)
            for key in keys:
                remaining = self._postings[key] & mask
                if remaining:
                    self._postings[key] = remaining
                else:
                    del self._postings[key]
        else:
            # Rows persist when emptied (plan stability), so removal
            # never changes the layout and cached plans stay valid.
            for key in keys:
                self._matrix.clear_bit(key, graph_id)
        self._universe &= ~(1 << graph_id)
        self._signature_tables.pop(graph_id, None)

    # ------------------------------------------------------------------
    # the filter
    # ------------------------------------------------------------------
    @property
    def universe_bits(self) -> int:
        return self._universe

    @property
    def universe_value(self) -> int:
        """The universe — the canonical int on every substrate."""
        return self._universe

    def __contains__(self, graph_id: int) -> bool:
        return bool((self._universe >> graph_id) & 1)

    def __len__(self) -> int:
        return len(self._keys_by_graph)

    def num_postings(self) -> int:
        if self._matrix is None:
            return len(self._postings)
        return self._matrix.row_count()

    def posting_items(self) -> Iterator[tuple[tuple, int]]:
        """All ``(key, int_bits)`` postings, substrate-independent form."""
        if self._matrix is None:
            yield from self._postings.items()
        else:
            yield from self._matrix.int_items()

    def compile(self, pattern: LabeledGraph) -> CompiledQuery:
        """A reusable filter plan for *pattern* (see :class:`CompiledQuery`).

        On the numpy substrate the pattern's invariant keys are derived
        *and* its row plan is gathered here, at compile time, so the
        filter runs themselves pay only the vectorized AND — prepare
        once, execute many (registration is off the timed filter
        phase).  The int substrate leaves the query lazy: its
        reference path recomputes keys per run anyway.
        """
        query = CompiledQuery(pattern)
        if self._matrix is not None:
            query._keys = pattern_query_keys(pattern)
            query._plan_for(self)
        return query

    def _build_plan(self, keys: set[tuple]):
        rows = self._matrix.gather(keys)
        if rows is None:
            # Some key has no posting row: no indexed graph can
            # contain the pattern.
            return None, True
        return rows, False

    def run_query(
        self, compiled: CompiledQuery, within: int | None = None
    ) -> int:
        """AND of the compiled pattern's posting lists, as an int bitset.

        *within* is an int bitset (or None for the whole universe) and
        the result is always the canonical int, whatever substrate the
        postings live on: on numpy the vectorized ``bitwise_and.reduce``
        over the row plan does the O(keys) work and the single reduced
        word row converts to an int right here.  Keeping everything
        downstream on big-ints is deliberate — per-call array-op
        dispatch overhead dwarfs the sub-microsecond big-int set
        operations at view widths of a few hundred graphs, so the
        substrate's win is confined to where the row stack makes it
        real.  This is the engine-facing hot path.
        """
        _, queries, kept_counter, pruned_counter = self._query_counters()
        queries.add(1)
        if self._matrix is None:
            bits = (
                self._universe
                if within is None
                else within & self._universe
            )
            before = bits.bit_count()
            for key in pattern_query_keys(compiled.pattern):
                bits &= self._postings.get(key, 0)
                if not bits:
                    break
            kept = bits.bit_count()
            kept_counter.add(kept)
            pruned_counter.add(before - kept)
            return bits
        base = (
            self._universe
            if within is None
            else within & self._universe
        )
        before = base.bit_count()
        rows = compiled._plan_for(self)
        if rows is None:
            value = 0
            kept = 0
        else:
            value = base & words_to_int(self._matrix.reduce(rows))
            kept = value.bit_count()
        kept_counter.add(kept)
        pruned_counter.add(before - kept)
        return value

    def candidate_bits(
        self, pattern: LabeledGraph, within: int | None = None
    ) -> int:
        """AND of *pattern*'s posting lists, restricted to *within*.

        Sound: any graph containing *pattern* survives.  A pattern key
        with no posting list proves no indexed graph can contain the
        pattern, so the result collapses to zero immediately.
        """
        return self.run_query(self.compile(pattern), within)

    def candidate_ids(
        self, pattern: LabeledGraph, within: int | None = None
    ) -> list[int]:
        """Sorted candidate graph IDs (see :meth:`candidate_bits`)."""
        return list(ids_of(self.candidate_bits(pattern, within)))

    # ------------------------------------------------------------------
    # VF2 candidate-domain seeding
    # ------------------------------------------------------------------
    def _signature_table(self, graph_id: int, graph: LabeledGraph) -> dict:
        table = self._signature_tables.get(graph_id)
        if table is None:
            table = {}
            for vertex in graph.vertices():
                entry = (
                    vertex,
                    graph.degree(vertex),
                    _neighbor_label_counts(graph, vertex),
                )
                table.setdefault(graph.label(vertex), []).append(entry)
            self._signature_tables[graph_id] = table
        return table

    def vertex_domains(
        self, pattern: LabeledGraph, graph_id: int, graph: LabeledGraph
    ) -> dict[VertexId, set[VertexId]]:
        """Admissible host vertices per pattern vertex, for VF2 seeding.

        A host vertex is admissible when its label matches, its degree
        dominates and its 1-hop neighbour-label multiset dominates the
        pattern vertex's.  All three are necessary conditions, so the
        domains never exclude a vertex participating in an embedding.
        """
        table = self._signature_table(graph_id, graph)
        domains: dict[VertexId, set[VertexId]] = {}
        for vertex in pattern.vertices():
            degree = pattern.degree(vertex)
            neighbors = _neighbor_label_counts(pattern, vertex)
            domains[vertex] = {
                host_vertex
                for host_vertex, host_degree, host_neighbors in table.get(
                    pattern.label(vertex), ()
                )
                if host_degree >= degree
                and multiset_dominates(neighbors, host_neighbors)
            }
        return domains

    # ------------------------------------------------------------------
    # structural identity (incremental ≡ rebuild)
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """Canonical structural form: ``(universe, sorted postings)``.

        Two indices over the same view must produce equal snapshots no
        matter how they got there (incremental maintenance vs from-
        scratch build) and no matter which substrate holds them; the
        equality test of the maintenance contract.  Both components are
        plain ints, so snapshots compare across substrates.
        """
        return (
            self.universe_bits,
            tuple(sorted(self.posting_items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageIndex):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CoverageIndex |D|={len(self)} "
            f"postings={self.num_postings()} "
            f"substrate={self.substrate}>"
        )


__all__ = [
    "COUNT_CAP",
    "DEGREE_CAP",
    "CompiledQuery",
    "CoverageIndex",
    "graph_posting_keys",
    "pattern_query_keys",
]
