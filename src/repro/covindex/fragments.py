"""Shared sub-pattern match network: fragment views under a byte budget.

MIDAS pattern sets are heavily overlapping by construction — FCT mining
grows trees edge by edge, so the displayed patterns are routinely
sub-/supergraphs of one another.  The per-pattern verdict bitsets of
:class:`~repro.covindex.engine.CoverageEngine` ignore that structure:
every pattern re-verifies every filtered candidate independently, so a
round costs O(patterns × delta) VF2 calls even when the patterns share
most of their edges.

:class:`FragmentNetwork` is the discrimination-network layer (Beyhl &
Giese's GDNs, with MV4PG-style materialized-view selection) that turns
the shared structure into shared work:

* **Decomposition** — every registered pattern is decomposed into a
  chain of connected sub-pattern *fragments* (edges → paths → trees),
  one per size from :data:`MIN_FRAGMENT_EDGES` up to one edge short of
  the pattern.  The chain is the lexicographically minimal canonical
  edge-growth sequence (ordered by ``(edge label pair, certificate)``
  per step), so isomorphic patterns decompose identically and patterns
  sharing a canonical core share the fragments covering it.  Fragments
  are keyed by canonical certificate: one node in the network per
  isomorphism class, refcounted across the patterns that use it.
* **Views** — a *materialized* fragment carries a verified-match/seen
  bitset pair over the database view, exactly the engine's verdict
  algebra.  Views are drained lazily parent-first: a fragment's
  candidates are its posting filter intersected with its parent
  fragment's verified matches, so each VF2 call up the chain starts
  from an already-pruned candidate set.  Verification fans out through
  the ambient :class:`~repro.parallel.pool.KernelPool` over a published
  host view (:mod:`repro.parallel.shared`) when worthwhile.
* **Masking** — ``pattern_mask(key)`` intersects the pattern's
  materialized fragment views into one bitset; the engine ANDs it into
  the posting-filter candidates before verification.  Soundness: a
  host containing the pattern contains every fragment of it (compose
  the injections), so ``cover(p) ⊆ match(f)`` for every fragment
  ``f ⊆ p`` and the intersection never drops a true match.  Fragment
  matches are *verified*, not filtered, which is what makes the mask
  strictly stronger than the pattern's own posting filter.
* **Selection** — materializing every fragment of every pattern would
  spend memory proportional to the whole network.  A greedy
  benefit-per-byte selector (score ``refcount × edges`` per estimated
  view bytes) materializes the best fragments under
  ``budget_bytes`` and dematerializes the rest; skipped fragments
  simply contribute nothing to the mask, so the budget trades speed,
  never correctness.

The network is off by default and sits behind the ambient toggle
(:func:`set_fragments` / :func:`use_fragments` /
:func:`fragments_enabled`), surfaced as ``ExecutionConfig(fragments=
True)`` / ``--fragments on``.  Metrics live in the ``covindex.frag.*``
namespace (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import time
import weakref
from collections.abc import Iterable, Mapping
from contextlib import contextmanager

from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.matcher import contains
from ..obs import get_registry
from ..parallel import shared
from ..parallel.kernels import contains_view_kernel
from ..parallel.pool import current_pool
from .bitset import make_ops
from .index import CoverageIndex

#: Smallest fragment worth a view.  One- and two-edge fragments are
#: exactly reproduced by the posting filter already (``el`` edge-label
#: and ``wg`` wedge keys), so a verified view would never prune a
#: candidate the filter kept — discrimination starts at three edges.
MIN_FRAGMENT_EDGES = 3

#: Default view budget: enough for hundreds of fragment views at
#: serving-scale universes while bounding worst-case residency.
DEFAULT_FRAGMENT_BUDGET = 4 << 20


# ----------------------------------------------------------------------
# canonical decomposition
# ----------------------------------------------------------------------
def _growth_chain(pattern: LabeledGraph) -> list[list[tuple]]:
    """The minimal canonical edge-growth order of *pattern*'s edges.

    Returns the edge sets of the chain prefixes (sizes 1..m-1), chosen
    so the per-step key sequence ``(sorted label pair of the added
    edge, certificate of the grown fragment)`` is lexicographically
    minimal over all connected growth orders.  Both key components are
    isomorphism-invariant, so permuted twins produce certificate-equal
    chains, and patterns sharing a canonical core grow through the
    same core fragments (cheaper label pairs are exhausted before a
    decoration edge is ever added).
    """
    edges = list(pattern.edges())
    target = len(edges) - 1
    label_pair = {
        edge: tuple(sorted((pattern.label(edge[0]), pattern.label(edge[1]))))
        for edge in edges
    }
    cert_memo: dict[frozenset, tuple] = {}

    def cert_of(chosen: frozenset) -> tuple:
        cached = cert_memo.get(chosen)
        if cached is None:
            cached = cert_memo[chosen] = canonical_certificate(
                pattern.edge_subgraph(chosen)
            )
        return cached

    chain_memo: dict[frozenset, tuple] = {}

    def best_tail(chosen: frozenset) -> tuple[tuple, tuple]:
        """Minimal ``(key sequence, edge-addition sequence)`` from *chosen*."""
        if len(chosen) == target:
            return (), ()
        cached = chain_memo.get(chosen)
        if cached is not None:
            return cached
        vertices = {v for edge in chosen for v in edge}
        best = None
        for edge in edges:
            if edge in chosen or (edge[0] not in vertices and edge[1] not in vertices):
                continue
            grown = chosen | {edge}
            step = (label_pair[edge], cert_of(grown))
            tail_keys, tail_edges = best_tail(grown)
            candidate = ((step, *tail_keys), (edge, *tail_edges))
            if best is None or candidate[0] < best[0]:
                best = candidate
        chain_memo[chosen] = best
        return best

    seed_best = None
    for edge in edges:
        grown = frozenset((edge,))
        step = (label_pair[edge], cert_of(grown))
        tail_keys, tail_edges = best_tail(grown)
        candidate = ((step, *tail_keys), (edge, *tail_edges))
        if seed_best is None or candidate[0] < seed_best[0]:
            seed_best = candidate
    order = seed_best[1]
    return [list(order[: size + 1]) for size in range(target)]


def decompose(pattern: LabeledGraph) -> list[LabeledGraph]:
    """*pattern*'s fragment chain: connected proper subgraphs of sizes
    :data:`MIN_FRAGMENT_EDGES` .. ``num_edges - 1``, each extending the
    previous by one edge along the canonical growth order.  Patterns
    too small to have such a fragment decompose to the empty chain.
    """
    if pattern.num_edges <= MIN_FRAGMENT_EDGES or not pattern.is_connected():
        return []
    return [
        pattern.edge_subgraph(prefix)
        for prefix in _growth_chain(pattern)
        if len(prefix) >= MIN_FRAGMENT_EDGES
    ]


class _FragmentState:
    """One isomorphism class of sub-pattern, shared across patterns."""

    __slots__ = (
        "key",
        "graph",
        "parent",
        "refcount",
        "materialized",
        "compiled",
        "match_bits",
        "seen_bits",
        "seen_count",
    )

    def __init__(self, key: tuple, graph: LabeledGraph, parent: tuple | None):
        self.key = key
        self.graph = graph
        self.parent = parent
        self.refcount = 0
        self.materialized = False
        self.compiled = None
        self.match_bits = 0
        self.seen_bits = 0
        self.seen_count = 0


class FragmentNetwork:
    """Shared fragment views between a :class:`CoverageIndex` and its
    engine.  The network never answers cover queries itself — it hands
    the engine a sound candidate mask and maintains the views behind it
    incrementally across batches."""

    def __init__(
        self,
        index: CoverageIndex,
        graphs: Mapping[int, LabeledGraph],
        budget_bytes: int | None = None,
    ) -> None:
        self._index = index
        # Shared with the owning engine: apply_update mutates the dict
        # in place, so the network always verifies against the live view.
        self._graphs = graphs
        self.budget_bytes = (
            current_fragment_budget() if budget_bytes is None else budget_bytes
        )
        self._fragments: dict[tuple, _FragmentState] = {}
        self._chains: dict[tuple, list[tuple]] = {}
        self._view_token: int | None = None
        self._counter_cache: tuple | None = None
        self._publish_gauges()

    def __getstate__(self):
        # Published host views and cached registry counters are
        # process-local; copies republish / re-resolve lazily.
        state = self.__dict__.copy()
        state["_view_token"] = None
        state["_counter_cache"] = None
        return state

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, key: tuple, pattern: LabeledGraph) -> None:
        """Track *pattern* (under its canonical *key*) in the network."""
        if key in self._chains:
            return
        chain: list[tuple] = []
        parent: tuple | None = None
        for fragment in decompose(pattern):
            fragment_key = canonical_certificate(fragment)
            state = self._fragments.get(fragment_key)
            if state is None:
                state = self._fragments[fragment_key] = _FragmentState(
                    fragment_key, fragment, parent
                )
            state.refcount += 1
            chain.append(fragment_key)
            parent = fragment_key
        self._chains[key] = chain
        get_registry().counter("covindex.frag.registrations").add(1)
        self._reselect()

    def discard(self, key: tuple) -> None:
        """Stop tracking *key*; orphaned fragments leave the network."""
        chain = self._chains.pop(key, None)
        if chain is None:
            return
        for fragment_key in chain:
            state = self._fragments[fragment_key]
            state.refcount -= 1
            if state.refcount <= 0:
                del self._fragments[fragment_key]
        self._reselect()

    def tracked(self, key: tuple) -> bool:
        return key in self._chains

    def chain(self, key: tuple) -> list[tuple]:
        """The fragment keys of *key*'s chain, ascending by size."""
        return list(self._chains.get(key, ()))

    def fragment(self, fragment_key: tuple) -> _FragmentState:
        return self._fragments[fragment_key]

    def fragment_keys(self) -> list[tuple]:
        return list(self._fragments)

    # ------------------------------------------------------------------
    # view selection (greedy benefit per byte)
    # ------------------------------------------------------------------
    def _estimated_view_bytes(self) -> int:
        """Upper bound on one materialized view's bytes (match + seen).

        Both bitsets are subsets of the universe, so each is at most
        the universe's own byte width; the actual residency reported by
        :meth:`view_bytes` never exceeds this estimate.
        """
        width = self._index.universe_value.bit_length()
        return 2 * max(8, (width + 7) // 8)

    def _reselect(self) -> None:
        """Re-run the greedy selector; (de)materialize views in place.

        Benefit per byte: every view costs the same estimated bytes, so
        the ranking reduces to ``refcount × edges`` — fragments shared
        by more patterns prune more queries, and larger fragments prune
        harder (their matches are scarcer).  Deterministic tie-break on
        size then certificate repr keeps trajectories reproducible.
        """
        per_view = self._estimated_view_bytes()
        ranked = sorted(
            self._fragments.values(),
            key=lambda st: (
                -st.refcount * st.graph.num_edges,
                -st.graph.num_edges,
                repr(st.key),
            ),
        )
        spent = 0
        evicted = 0
        for state in ranked:
            if spent + per_view <= self.budget_bytes:
                spent += per_view
                if not state.materialized:
                    state.materialized = True
                    if state.compiled is None:
                        state.compiled = self._index.compile(state.graph)
                    state.match_bits = 0
                    state.seen_bits = 0
                    state.seen_count = 0
            elif state.materialized:
                state.materialized = False
                state.match_bits = 0
                state.seen_bits = 0
                state.seen_count = 0
                evicted += 1
        if evicted:
            get_registry().counter("covindex.frag.evictions").add(evicted)
        self._publish_gauges()

    # ------------------------------------------------------------------
    # draining and masking
    # ------------------------------------------------------------------
    def _drain(self, state: _FragmentState) -> None:
        """Bring one materialized fragment view up to date (verify its
        filtered, parent-pruned pending delta)."""
        if state.seen_count == len(self._graphs):
            return
        candidates = self._index.run_query(state.compiled)
        parent = (
            self._fragments.get(state.parent)
            if state.parent is not None
            else None
        )
        if parent is not None and parent.materialized:
            # Parent drained first (chains drain ascending), so its
            # verified matches are current: a host without the parent
            # fragment cannot contain this one.
            candidates &= parent.match_bits
        pending = candidates & ~state.seen_bits
        pending_ids = []
        bits = pending
        while bits:
            low = bits & -bits
            pending_ids.append(low.bit_length() - 1)
            bits ^= low
        if pending_ids:
            verdicts = self._verify(state.graph, pending_ids)
            matched = 0
            for graph_id, verdict in zip(pending_ids, verdicts):
                if verdict:
                    matched |= 1 << graph_id
            state.match_bits |= matched
        state.seen_bits = self._index.universe_value
        state.seen_count = len(self._graphs)

    def _verify(self, fragment: LabeledGraph, pending: list[int]) -> list[bool]:
        """VF2 the fragment against *pending* hosts (pool fan-out when
        worthwhile), seeded with the index's vertex domains."""
        registry = get_registry()
        registry.counter("vf2.cover_calls").add(len(pending))
        registry.counter("covindex.frag.verifications").add(len(pending))
        domains = {
            graph_id: self._index.vertex_domains(
                fragment, graph_id, self._graphs[graph_id]
            )
            for graph_id in pending
        }
        pool = current_pool()
        if pool.worth_parallelizing(len(pending)):
            view = self._host_view()
            return pool.map(
                contains_view_kernel,
                [(graph_id, domains[graph_id]) for graph_id in pending],
                payload=(view.view_id, view.generation, fragment),
            )
        return [
            contains(
                self._graphs[graph_id], fragment, domains=domains[graph_id]
            )
            for graph_id in pending
        ]

    def _host_view(self) -> shared.HostView:
        """The network's published host view (publish on first use)."""
        if self._view_token is not None:
            view = shared.get_view(self._view_token)
            if view is not None and view.graphs is self._graphs:
                return view
        view = shared.publish_view(self._graphs, view_id=self._view_token)
        if self._view_token is None:
            self._view_token = view.view_id
            weakref.finalize(self, shared.retire_view, view.view_id)
        return view

    def pattern_mask(self, key: tuple) -> int | None:
        """The intersection of *key*'s materialized fragment views, or
        ``None`` when the chain has no materialized view.

        Drains the chain ascending so every fragment verifies against
        its parent's already-verified matches.  The mask is a sound
        over-approximation of the pattern's cover — the engine ANDs it
        into the posting-filter candidates before VF2.
        """
        chain = self._chains.get(key)
        if not chain:
            return None
        started = time.perf_counter_ns()
        mask = None
        for fragment_key in chain:
            state = self._fragments[fragment_key]
            if not state.materialized:
                continue
            self._drain(state)
            mask = (
                state.match_bits
                if mask is None
                else mask & state.match_bits
            )
        self._record_drain_ns(started)
        if mask is not None:
            get_registry().counter("covindex.frag.mask_queries").add(1)
        return mask

    def _record_drain_ns(self, started: int) -> None:
        registry = get_registry()
        cached = self._counter_cache
        if cached is None or cached[0] is not registry:
            cached = self._counter_cache = (
                registry,
                registry.counter("covindex.frag.drain_ns"),
            )
        cached[1].add(time.perf_counter_ns() - started)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def apply_update(self, stale_ids: Iterable[int]) -> None:
        """Reconcile with a database batch the owning engine already
        applied to the index and graph view: clear stale verdict bits
        (removed and in-place-replaced graphs) from every view, re-run
        the selector against the possibly-wider universe, and bump the
        published host view's generation so forked workers drop the
        pre-batch graphs.
        """
        stale = list(stale_ids)
        if stale:
            stale_value = 0
            for graph_id in stale:
                stale_value |= 1 << graph_id
            for state in self._fragments.values():
                if not state.materialized:
                    continue
                state.match_bits &= ~stale_value
                state.seen_bits &= ~stale_value
                state.seen_count = state.seen_bits.bit_count()
        if self._view_token is not None:
            shared.publish_view(self._graphs, view_id=self._view_token)
        self._reselect()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def view_bytes(self) -> int:
        """Actual bytes resident in materialized views, as reported by
        the verdict substrate's :meth:`~IntBitsetOps.nbytes`."""
        ops = make_ops("int")
        return sum(
            ops.nbytes(state.match_bits) + ops.nbytes(state.seen_bits)
            for state in self._fragments.values()
            if state.materialized
        )

    def stats(self) -> dict[str, int]:
        materialized = sum(
            1 for state in self._fragments.values() if state.materialized
        )
        return {
            "patterns": len(self._chains),
            "fragments": len(self._fragments),
            "materialized": materialized,
            "view_bytes": self.view_bytes(),
            "budget_bytes": self.budget_bytes,
        }

    def _publish_gauges(self) -> None:
        registry = get_registry()
        registry.gauge("covindex.frag.fragments").set(len(self._fragments))
        registry.gauge("covindex.frag.materialized").set(
            sum(1 for st in self._fragments.values() if st.materialized)
        )
        registry.gauge("covindex.frag.view_bytes").set(self.view_bytes())


# ----------------------------------------------------------------------
# ambient enable flag + budget (mirrors repro.covindex.engine)
# ----------------------------------------------------------------------
_enabled = False
_budget = DEFAULT_FRAGMENT_BUDGET


def set_fragments(enabled: bool, budget_bytes: int | None = None) -> None:
    """Globally enable/disable the network (CLI ``--fragments``)."""
    global _enabled, _budget
    _enabled = enabled
    if budget_bytes is not None:
        _budget = budget_bytes


def fragments_enabled() -> bool:
    return _enabled


def current_fragment_budget() -> int:
    return _budget


@contextmanager
def use_fragments(enabled: bool = True, budget_bytes: int | None = None):
    """Enable (or disable) the network for the dynamic extent of the
    block, optionally pinning the view budget for the same scope."""
    global _enabled, _budget
    previous = (_enabled, _budget)
    _enabled = enabled
    if budget_bytes is not None:
        _budget = budget_bytes
    try:
        yield
    finally:
        _enabled, _budget = previous


__all__ = [
    "DEFAULT_FRAGMENT_BUDGET",
    "MIN_FRAGMENT_EDGES",
    "FragmentNetwork",
    "current_fragment_budget",
    "decompose",
    "fragments_enabled",
    "set_fragments",
    "use_fragments",
]
