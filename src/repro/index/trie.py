"""A token trie over canonical tree strings.

The FCT-Index stores the canonical strings of frequent closed trees and
frequent edges in a trie whose terminal nodes point into the TG/TP
matrices (paper, Definition 5.1, Figure 5(d)).  Tokens are the vertex
labels and the ``$`` sibling separator produced by
:func:`repro.trees.canonical.canonical_tokens`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence


class _TrieNode:
    __slots__ = ("children", "payload", "terminal")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.payload: Hashable | None = None
        self.terminal = False


class TokenTrie:
    """Insert/lookup/delete token sequences with terminal payloads."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        """Number of stored sequences."""
        return self._size

    def insert(self, tokens: Sequence[str], payload: Hashable) -> None:
        """Store *tokens* with *payload*; re-inserting updates the payload."""
        node = self._root
        for token in tokens:
            node = node.children.setdefault(token, _TrieNode())
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.payload = payload

    def lookup(self, tokens: Sequence[str]) -> Hashable | None:
        """Payload stored at *tokens*, or None."""
        node = self._root
        for token in tokens:
            node = node.children.get(token)
            if node is None:
                return None
        return node.payload if node.terminal else None

    def __contains__(self, tokens: Sequence[str]) -> bool:
        return self.lookup(tokens) is not None

    def delete(self, tokens: Sequence[str]) -> bool:
        """Remove *tokens*; prunes now-empty branches.  True if removed."""
        path: list[tuple[_TrieNode, str]] = []
        node = self._root
        for token in tokens:
            child = node.children.get(token)
            if child is None:
                return False
            path.append((node, token))
            node = child
        if not node.terminal:
            return False
        node.terminal = False
        node.payload = None
        self._size -= 1
        # Prune empty suffix.
        for parent, token in reversed(path):
            child = parent.children[token]
            if child.terminal or child.children:
                break
            del parent.children[token]
        return True

    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Number of trie nodes (excluding the root)."""
        count = 0
        frontier = [self._root]
        while frontier:
            node = frontier.pop()
            count += len(node.children)
            frontier.extend(node.children.values())
        return count

    def max_depth(self) -> int:
        """Length of the longest stored sequence."""
        best = 0
        frontier = [(self._root, 0)]
        while frontier:
            node, depth = frontier.pop()
            best = max(best, depth)
            for child in node.children.values():
                frontier.append((child, depth + 1))
        return best

    def payloads(self) -> list[Hashable]:
        """All stored payloads (unordered semantics, sorted by repr)."""
        found: list[Hashable] = []
        frontier = [self._root]
        while frontier:
            node = frontier.pop()
            if node.terminal:
                found.append(node.payload)
            frontier.extend(node.children.values())
        return sorted(found, key=repr)

    @classmethod
    def from_items(
        cls, items: Iterable[tuple[Sequence[str], Hashable]]
    ) -> "TokenTrie":
        trie = cls()
        for tokens, payload in items:
            trie.insert(tokens, payload)
        return trie
