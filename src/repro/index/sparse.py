"""Sparse count matrices with named rows and columns.

The FCT- and IFE-indices of MIDAS store embedding counts in four sparse
matrices (TG, TP, EG, EP — paper, Section 5.1).  MIDAS keeps only the
non-zero entries as ``(row, column, value)`` triplets; this module
provides the equivalent structure as a dict-of-dicts keyed by arbitrary
hashable row/column identifiers, with O(1) updates and O(row) / O(col)
deletions (a column index is maintained alongside the row index).
"""

from __future__ import annotations

import sys
from collections.abc import Hashable, Iterator

RowKey = Hashable
ColKey = Hashable


class SparseCountMatrix:
    """A mutable sparse matrix of non-negative counts."""

    def __init__(self) -> None:
        self._rows: dict[RowKey, dict[ColKey, int]] = {}
        self._cols: dict[ColKey, set[RowKey]] = {}

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, row: RowKey, col: ColKey) -> int:
        return self._rows.get(row, {}).get(col, 0)

    def set(self, row: RowKey, col: ColKey, value: int) -> None:
        if value < 0:
            raise ValueError("counts must be non-negative")
        if value == 0:
            self.discard(row, col)
            return
        self._rows.setdefault(row, {})[col] = value
        self._cols.setdefault(col, set()).add(row)

    def increment(self, row: RowKey, col: ColKey, delta: int = 1) -> int:
        value = self.get(row, col) + delta
        self.set(row, col, value)
        return value

    def discard(self, row: RowKey, col: ColKey) -> None:
        row_data = self._rows.get(row)
        if row_data and col in row_data:
            del row_data[col]
            if not row_data:
                del self._rows[row]
            owners = self._cols.get(col)
            if owners is not None:
                owners.discard(row)
                if not owners:
                    del self._cols[col]

    # ------------------------------------------------------------------
    # row / column operations
    # ------------------------------------------------------------------
    def row(self, row: RowKey) -> dict[ColKey, int]:
        """Non-zero entries of *row* (copy)."""
        return dict(self._rows.get(row, {}))

    def column(self, col: ColKey) -> dict[RowKey, int]:
        """Non-zero entries of *col* (copy)."""
        return {
            row: self._rows[row][col] for row in self._cols.get(col, ())
        }

    def row_keys(self) -> list[RowKey]:
        return sorted(self._rows, key=repr)

    def column_keys(self) -> list[ColKey]:
        return sorted(self._cols, key=repr)

    def has_row(self, row: RowKey) -> bool:
        return row in self._rows

    def has_column(self, col: ColKey) -> bool:
        return col in self._cols

    def remove_row(self, row: RowKey) -> None:
        row_data = self._rows.pop(row, None)
        if not row_data:
            return
        for col in row_data:
            owners = self._cols.get(col)
            if owners is not None:
                owners.discard(row)
                if not owners:
                    del self._cols[col]

    def remove_column(self, col: ColKey) -> None:
        owners = self._cols.pop(col, None)
        if not owners:
            return
        for row in owners:
            row_data = self._rows.get(row)
            if row_data is not None:
                row_data.pop(col, None)
                if not row_data:
                    del self._rows[row]

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def nnz(self) -> int:
        return sum(len(row) for row in self._rows.values())

    def triplets(self) -> Iterator[tuple[RowKey, ColKey, int]]:
        """Iterate entries as ``(row, col, value)`` — the paper's vectors."""
        for row, row_data in self._rows.items():
            for col, value in row_data.items():
                yield row, col, value

    def memory_bytes(self) -> int:
        """Rough resident-size estimate for the cost experiments."""
        total = sys.getsizeof(self._rows) + sys.getsizeof(self._cols)
        for row, row_data in self._rows.items():
            total += sys.getsizeof(row) + sys.getsizeof(row_data)
            total += sum(
                sys.getsizeof(col) + sys.getsizeof(value)
                for col, value in row_data.items()
            )
        for col, owners in self._cols.items():
            total += sys.getsizeof(col) + sys.getsizeof(owners)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SparseCountMatrix {len(self._rows)}x{len(self._cols)} "
            f"nnz={self.nnz()}>"
        )
