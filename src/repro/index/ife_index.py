"""The IFE-Index: infrequent-edge embedding counts (EG/EP matrices).

Definition 5.2 of the paper: for the infrequent edge labels ``E_inf`` of
``D``, the IFE-Index stores the **EG-matrix** (embedding counts of each
infrequent edge over the data graphs) and the **EP-matrix** (counts over
the canned patterns).  An "embedding of an edge" is simply an edge with
the same endpoint labels, so the counts come straight from edge-label
multisets — no isomorphism machinery needed.

Together with the FCT-Index this answers ``G_scov(e)`` for *any* edge
label during coverage-based pruning: frequent edges hit the TG-matrix,
infrequent ones hit the EG-matrix.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..graph.labeled_graph import EdgeLabel, LabeledGraph
from .sparse import SparseCountMatrix


class IFEIndex:
    """EG/EP matrices over infrequent edge labels."""

    def __init__(self) -> None:
        self.eg = SparseCountMatrix()  # edge label -> graph id -> count
        self.ep = SparseCountMatrix()  # edge label -> pattern id -> count
        self._edge_labels: set[EdgeLabel] = set()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        edge_labels: Iterable[EdgeLabel],
        graphs: Mapping[int, LabeledGraph],
        patterns: Mapping[int, LabeledGraph] | None = None,
    ) -> "IFEIndex":
        index = cls()
        index._edge_labels = set(edge_labels)
        for graph_id, graph in graphs.items():
            index.add_graph(graph_id, graph)
        if patterns:
            for pattern_id, pattern in patterns.items():
                index.add_pattern(pattern_id, pattern)
        return index

    # ------------------------------------------------------------------
    # edge-label set maintenance
    # ------------------------------------------------------------------
    def edge_labels(self) -> set[EdgeLabel]:
        return set(self._edge_labels)

    def set_edge_labels(
        self,
        edge_labels: Iterable[EdgeLabel],
        graphs: Mapping[int, LabeledGraph],
        patterns: Mapping[int, LabeledGraph] | None = None,
    ) -> None:
        """Reconcile the indexed label set after (in)frequency changes.

        Labels leaving the set drop their rows; labels entering the set
        get rows populated by one scan of *graphs* (and *patterns*).
        """
        new_labels = set(edge_labels)
        for gone in self._edge_labels - new_labels:
            self.eg.remove_row(gone)
            self.ep.remove_row(gone)
        added = new_labels - self._edge_labels
        if added:
            for graph_id, graph in graphs.items():
                for label, count in graph.edge_label_multiset().items():
                    if label in added:
                        self.eg.set(label, graph_id, count)
            for pattern_id, pattern in (patterns or {}).items():
                for label, count in pattern.edge_label_multiset().items():
                    if label in added:
                        self.ep.set(label, pattern_id, count)
        self._edge_labels = new_labels

    # ------------------------------------------------------------------
    # graph / pattern maintenance
    # ------------------------------------------------------------------
    def add_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        for label, count in graph.edge_label_multiset().items():
            if label in self._edge_labels:
                self.eg.set(label, graph_id, count)

    def remove_graph(self, graph_id: int) -> None:
        self.eg.remove_column(graph_id)

    def add_pattern(self, pattern_id: int, pattern: LabeledGraph) -> None:
        for label, count in pattern.edge_label_multiset().items():
            if label in self._edge_labels:
                self.ep.set(label, pattern_id, count)

    def remove_pattern(self, pattern_id: int) -> None:
        self.ep.remove_column(pattern_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def graphs_with_edge(self, label: EdgeLabel) -> set[int]:
        """Graph IDs containing at least one edge with *label*."""
        return set(self.eg.row(label))

    def is_indexed(self, label: EdgeLabel) -> bool:
        return label in self._edge_labels

    def memory_bytes(self) -> int:
        return self.eg.memory_bytes() + self.ep.memory_bytes()
