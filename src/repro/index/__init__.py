"""Index substrate: sparse matrices, token trie, FCT-Index, IFE-Index."""

from .fct_index import EMBEDDING_COUNT_CAP, FCTIndex
from .ife_index import IFEIndex
from .maintenance import IndexPair
from .sparse import SparseCountMatrix
from .trie import TokenTrie

__all__ = [
    "EMBEDDING_COUNT_CAP",
    "FCTIndex",
    "IFEIndex",
    "IndexPair",
    "SparseCountMatrix",
    "TokenTrie",
]
