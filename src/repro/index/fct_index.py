"""The FCT-Index: a trie over canonical strings plus TG/TP matrices.

Definition 5.1 of the paper: given the frequent closed trees ``F`` and
frequent edges ``E_freq`` of ``D``, the FCT-Index consists of

* a trie of the canonical strings of ``F ∪ E_freq`` whose terminal nodes
  carry a *graph pointer* and a *pattern pointer*;
* the **TG-matrix** — embedding counts of each feature in each data
  graph — and the **TP-matrix** — embedding counts of each feature in
  each canned pattern.

The index serves two purposes in MIDAS:

* ``G_scov`` lookups for frequent edges during coverage-based pruning
  (Equation 2);
* the containment prefilter for ``scov`` estimation (Section 6.1): a
  pattern ``p`` can only be contained in ``G`` when every TP entry of
  ``p`` is ≤ the corresponding TG entry of ``G``, so most subgraph
  isomorphism tests are skipped.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.invariants import prune_by_counts
from ..obs import get_registry
from ..resilience.degrade import resilient_count
from ..trees.canonical import TreeCode
from ..trees.mining import MinedTree
from .sparse import SparseCountMatrix
from .trie import TokenTrie

#: Cap on embeddings counted per (feature, graph) cell; counts above the
#: cap are clamped, which preserves the prefilter's correctness because
#: pattern-side counts are clamped identically and patterns are tiny.
EMBEDDING_COUNT_CAP = 64


def count_embeddings(
    host: LabeledGraph, tree: LabeledGraph, limit: int = EMBEDDING_COUNT_CAP
) -> int:
    """Embedding count for one index cell, budget-aware.

    Under budget pressure the count degrades to the embeddings found so
    far (a capped count) instead of aborting index maintenance; the
    prefilter built on these cells then becomes approximate for the
    affected cells, which is the documented degraded-mode trade-off.
    """
    return resilient_count(tree, host, limit=limit).value


class FCTIndex:
    """Trie + TG/TP matrices over FCT and frequent-edge features."""

    def __init__(self) -> None:
        self.trie = TokenTrie()
        self.tg = SparseCountMatrix()  # feature key -> graph id -> count
        self.tp = SparseCountMatrix()  # feature key -> pattern id -> count
        self._features: dict[TreeCode, MinedTree] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        features: Iterable[MinedTree],
        graphs: Mapping[int, LabeledGraph],
        patterns: Mapping[int, LabeledGraph] | None = None,
    ) -> "FCTIndex":
        """Index *features* over *graphs* (and optionally *patterns*).

        Embedding counting is restricted to each feature's cover set, so
        construction cost follows the covers rather than |F| × |D|.
        """
        index = cls()
        for feature in features:
            index.add_feature(feature, graphs)
        if patterns:
            for pattern_id, pattern in patterns.items():
                index.add_pattern(pattern_id, pattern)
        return index

    # ------------------------------------------------------------------
    # feature maintenance
    # ------------------------------------------------------------------
    def add_feature(
        self, feature: MinedTree, graphs: Mapping[int, LabeledGraph]
    ) -> None:
        """Insert a feature and populate its TG row from its cover set."""
        if feature.key in self._features:
            self.remove_feature(feature.key)
        self._features[feature.key] = feature
        self.trie.insert(feature.tokens(), feature.key)
        for graph_id in feature.cover:
            graph = graphs.get(graph_id)
            if graph is None:
                continue
            count = count_embeddings(
                graph, feature.tree, limit=EMBEDDING_COUNT_CAP
            )
            if count:
                self.tg.set(feature.key, graph_id, count)

    def remove_feature(self, key: TreeCode) -> None:
        feature = self._features.pop(key, None)
        if feature is None:
            return
        self.trie.delete(feature.tokens())
        self.tg.remove_row(key)
        self.tp.remove_row(key)

    def features(self) -> list[MinedTree]:
        return sorted(
            self._features.values(), key=lambda f: (f.num_edges, repr(f.key))
        )

    def feature_keys(self) -> set[TreeCode]:
        return set(self._features)

    def __contains__(self, key: TreeCode) -> bool:
        return key in self._features

    def __len__(self) -> int:
        return len(self._features)

    # ------------------------------------------------------------------
    # graph / pattern maintenance
    # ------------------------------------------------------------------
    def add_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        """Add a TG column for a newly inserted data graph."""
        for key, feature in self._features.items():
            count = count_embeddings(
                graph, feature.tree, limit=EMBEDDING_COUNT_CAP
            )
            if count:
                self.tg.set(key, graph_id, count)

    def remove_graph(self, graph_id: int) -> None:
        self.tg.remove_column(graph_id)

    def add_pattern(self, pattern_id: int, pattern: LabeledGraph) -> None:
        """Add a TP column for a canned pattern."""
        for key, feature in self._features.items():
            count = count_embeddings(
                pattern, feature.tree, limit=EMBEDDING_COUNT_CAP
            )
            if count:
                self.tp.set(key, pattern_id, count)

    def remove_pattern(self, pattern_id: int) -> None:
        self.tp.remove_column(pattern_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def graphs_with_feature(self, key: TreeCode) -> set[int]:
        """Graph IDs whose TG entry for *key* is non-zero."""
        return set(self.tg.row(key))

    def candidate_graphs(
        self, pattern: LabeledGraph, universe: Iterable[int]
    ) -> set[int]:
        """Containment prefilter (Section 6.1).

        Returns graph IDs in *universe* not ruled out by the feature
        counts: every feature embedded in *pattern* must be embedded at
        least as often in the graph.  Patterns with no indexed features
        cannot be filtered and the universe is returned unchanged.

        The per-feature pattern-side embedding counts are VF2 matcher
        invocations spent on cover computation, so they count toward
        ``vf2.cover_calls`` (the coverage-engine comparison metric).
        """
        get_registry().counter("vf2.cover_calls").add(len(self._features))
        pattern_counts: dict[TreeCode, int] = {}
        for key, feature in self._features.items():
            count = count_embeddings(
                pattern, feature.tree, limit=EMBEDDING_COUNT_CAP
            )
            if count:
                pattern_counts[key] = count
        return prune_by_counts(set(universe), pattern_counts, self.tg.row)

    def memory_bytes(self) -> int:
        return self.tg.memory_bytes() + self.tp.memory_bytes()
