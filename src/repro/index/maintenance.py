"""Joint maintenance of the FCT- and IFE-indices.

Algorithm 1 (line 12) maintains both indices after every batch — whether
or not the canned pattern set itself changed — so they stay consistent
with ``D ⊕ ΔD``.  :class:`IndexPair` wires the two indices to a feature
source (an :class:`~repro.trees.maintenance.FCTSet`) and exposes the
operations MIDAS needs:

* ``graphs_covering_edge`` — ``G_scov(e)`` for any edge label, answered
  from the TG-matrix for frequent edges and the EG-matrix otherwise
  (Section 5.2);
* ``candidate_graphs`` — the scov containment prefilter (Section 6.1);
* ``apply_update`` — reconcile after a database batch;
* ``sync_patterns`` — reconcile the TP/EP columns after pattern swaps.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..graph.labeled_graph import EdgeLabel, LabeledGraph
from ..isomorphism.invariants import prune_by_counts
from ..obs import get_registry
from ..trees.maintenance import FCTSet
from .fct_index import EMBEDDING_COUNT_CAP, FCTIndex, count_embeddings
from .ife_index import IFEIndex


class IndexPair:
    """The FCT-Index and IFE-Index maintained in lockstep."""

    def __init__(self, fct_index: FCTIndex, ife_index: IFEIndex) -> None:
        self.fct = fct_index
        self.ife = ife_index
        self._pattern_ids: set[int] = set()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        fct_set: FCTSet,
        graphs: Mapping[int, LabeledGraph],
        patterns: Mapping[int, LabeledGraph] | None = None,
    ) -> "IndexPair":
        """Construct both indices from the current FCT pool and database."""
        features = fct_set.fcts() + [
            edge
            for edge in fct_set.frequent_edges()
            if not edge.closed  # closed single edges already included
        ]
        fct_index = FCTIndex.build(features, graphs, patterns)
        ife_index = IFEIndex.build(
            fct_set.infrequent_edge_labels(), graphs, patterns
        )
        pair = cls(fct_index, ife_index)
        pair._pattern_ids = set(patterns or {})
        return pair

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def graphs_covering_edge(self, label: EdgeLabel) -> set[int] | None:
        """``G_scov(e)`` for an edge label, or None when unindexed.

        Frequent edges are FCT-Index features (single-edge trees);
        infrequent ones live in the IFE-Index.  ``None`` signals the
        caller to fall back to a direct scan (only possible for labels
        that appeared after the last reconciliation).
        """
        for feature in self.fct.features():
            if feature.num_edges != 1:
                continue
            tree = feature.tree
            u, v = next(tree.edges())
            if tree.edge_label(u, v) == label:
                return self.fct.graphs_with_feature(feature.key)
        if self.ife.is_indexed(label):
            return self.ife.graphs_with_edge(label)
        return None

    def candidate_graphs(
        self, pattern: LabeledGraph, universe: Iterable[int]
    ) -> set[int]:
        """Containment prefilter across both indices (Section 6.1)."""
        get_registry().counter("index.prefilter_queries").add(1)
        candidates = self.fct.candidate_graphs(pattern, universe)
        requirements = {
            label: needed
            for label, needed in pattern.edge_label_multiset().items()
            if self.ife.is_indexed(label)
        }
        return prune_by_counts(candidates, requirements, self.ife.eg.row)

    def memory_bytes(self) -> int:
        return self.fct.memory_bytes() + self.ife.memory_bytes()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def apply_update(
        self,
        fct_set: FCTSet,
        graphs: Mapping[int, LabeledGraph],
        added_ids: Iterable[int],
        removed_ids: Iterable[int],
        patterns: Mapping[int, LabeledGraph] | None = None,
    ) -> None:
        """Reconcile both indices with the post-batch database.

        *graphs* is the post-batch content; *added_ids*/*removed_ids*
        identify the modified columns.  Feature rows are diffed against
        the post-maintenance *fct_set*.
        """
        removed = set(removed_ids)
        added = set(added_ids)
        registry = get_registry()
        registry.counter("index.graphs_added").add(len(added))
        registry.counter("index.graphs_removed").add(len(removed))
        # Column maintenance first: drop dead graphs, add new ones.
        for graph_id in removed:
            self.fct.remove_graph(graph_id)
            self.ife.remove_graph(graph_id)
        # Feature (row) maintenance against the refreshed FCT set.
        current = {feature.key: feature for feature in fct_set.fcts()}
        for feature in fct_set.frequent_edges():
            current.setdefault(feature.key, feature)
        stale_keys = self.fct.feature_keys() - set(current)
        for key in stale_keys:
            self.fct.remove_feature(key)
        new_keys = set(current) - self.fct.feature_keys()
        for key in new_keys:
            self.fct.add_feature(current[key], graphs)
        registry.counter("index.features_added").add(len(new_keys))
        registry.counter("index.features_removed").add(len(stale_keys))
        # Columns for newly added graphs (features already present get
        # their counts here; features added above already scanned them).
        for graph_id in added:
            graph = graphs.get(graph_id)
            if graph is None:
                continue
            for key in self.fct.feature_keys() - new_keys:
                feature = current[key]
                if graph_id not in feature.cover:
                    continue
                count = count_embeddings(
                    graph, feature.tree, limit=EMBEDDING_COUNT_CAP
                )
                if count:
                    self.fct.tg.set(key, graph_id, count)
        # IFE side: refresh the infrequent label set, then new columns.
        self.ife.set_edge_labels(
            fct_set.infrequent_edge_labels(), graphs, patterns
        )
        for graph_id in added:
            graph = graphs.get(graph_id)
            if graph is not None:
                self.ife.add_graph(graph_id, graph)

    def sync_patterns(self, patterns: Mapping[int, LabeledGraph]) -> None:
        """Reconcile TP/EP columns with the current canned pattern set."""
        current = set(patterns)
        for pattern_id in self._pattern_ids - current:
            self.fct.remove_pattern(pattern_id)
            self.ife.remove_pattern(pattern_id)
        for pattern_id in current - self._pattern_ids:
            self.fct.add_pattern(pattern_id, patterns[pattern_id])
            self.ife.add_pattern(pattern_id, patterns[pattern_id])
        self._pattern_ids = current
