"""Feature vectors for graph clustering.

CATAPULT's coarse clustering runs k-means on per-graph feature vectors
whose dimensions are frequent subtrees; CATAPULT++/MIDAS use frequent
closed trees instead (paper, Sections 2.3 and 3.3).  Because the miners
in :mod:`repro.trees.mining` track exact cover sets, building the binary
occurrence matrix is a lookup, and vectors for *new* graphs (cluster
assignment during maintenance, Algorithm 1 line 1) need only
|features| containment tests.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.matcher import contains
from .mining import MinedTree


class FeatureSpace:
    """A fixed, ordered list of tree features defining a vector space.

    Parameters
    ----------
    features:
        Mined trees (FS or FCT) in a stable order; the i-th feature is
        the i-th vector dimension.
    """

    def __init__(self, features: Sequence[MinedTree]) -> None:
        self._features = list(features)
        self._index = {feature.key: i for i, feature in enumerate(features)}
        if len(self._index) != len(self._features):
            raise ValueError("duplicate feature keys in feature space")

    def __len__(self) -> int:
        return len(self._features)

    @property
    def features(self) -> list[MinedTree]:
        return list(self._features)

    def vector_for_known(self, graph_id: int) -> np.ndarray:
        """Vector of a graph already covered by the mined cover sets."""
        vector = np.zeros(len(self._features), dtype=np.float64)
        for i, feature in enumerate(self._features):
            if graph_id in feature.cover:
                vector[i] = 1.0
        return vector

    def vector_for_graph(self, graph: LabeledGraph) -> np.ndarray:
        """Vector of an arbitrary graph via containment tests."""
        vector = np.zeros(len(self._features), dtype=np.float64)
        for i, feature in enumerate(self._features):
            if contains(graph, feature.tree):
                vector[i] = 1.0
        return vector

    def matrix_for_known(self, graph_ids: Sequence[int]) -> np.ndarray:
        """Stacked vectors (rows follow *graph_ids* order)."""
        matrix = np.zeros(
            (len(graph_ids), len(self._features)), dtype=np.float64
        )
        for row, graph_id in enumerate(graph_ids):
            for col, feature in enumerate(self._features):
                if graph_id in feature.cover:
                    matrix[row, col] = 1.0
        return matrix

    def matrix_for_graphs(
        self, graphs: Mapping[int, LabeledGraph]
    ) -> tuple[list[int], np.ndarray]:
        """IDs (sorted) and matrix for graphs not in the cover sets."""
        ids = sorted(graphs)
        matrix = np.zeros((len(ids), len(self._features)), dtype=np.float64)
        for row, graph_id in enumerate(ids):
            matrix[row] = self.vector_for_graph(graphs[graph_id])
        return ids, matrix
