"""Tree substrate: canonical forms, (closed) subtree mining, maintenance."""

from .canonical import (
    SIBLING_SEPARATOR,
    canonical_root,
    canonical_string,
    canonical_tokens,
    rooted_code,
    tree_centers,
    tree_certificate,
    tree_from_tokens,
)
from .features import FeatureSpace
from .maintenance import FCTSet
from .mining import (
    DEFAULT_EMBEDDING_CAP,
    DEFAULT_MAX_EDGES,
    MinedTree,
    TreeMiner,
    mine_closed_trees,
    mine_frequent_trees,
)
from .treenat import TreeNatMiner

__all__ = [
    "DEFAULT_EMBEDDING_CAP",
    "DEFAULT_MAX_EDGES",
    "FCTSet",
    "FeatureSpace",
    "MinedTree",
    "SIBLING_SEPARATOR",
    "TreeMiner",
    "TreeNatMiner",
    "canonical_root",
    "canonical_string",
    "canonical_tokens",
    "mine_closed_trees",
    "mine_frequent_trees",
    "rooted_code",
    "tree_centers",
    "tree_certificate",
    "tree_from_tokens",
]
