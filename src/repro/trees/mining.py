"""Frequent and frequent-closed subtree mining over a graph database.

CATAPULT clusters data graphs by frequent-subtree (FS) feature vectors;
CATAPULT++/MIDAS replace FS with frequent **closed** trees (FCT), mined
with a TreeNat-style recursive/level-wise pattern-growth scheme (paper,
Sections 2.3, 3.3 and 4.2, citing Balcázar–Bifet–Lozano).

Support semantics are transactional: the support of a tree ``f`` is the
fraction of data graphs containing at least one embedding of ``f``.  A
frequent tree is *closed* when no proper supertree has the same support;
because support is anti-monotone under extension, it suffices to check
the one-edge (pendant-vertex) extensions, which are exactly the tree
supertrees with one extra edge.

The miner grows trees level by level from single edges.  For each
frequent tree it enumerates embeddings in its covering graphs (VF2) and
extends every embedding by one pendant host edge; candidates are
deduplicated by their free-tree canonical certificate.  Cover sets (graph
IDs) are tracked exactly, so supports — and hence closedness — are exact
whenever the per-graph embedding cap is not hit.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..exceptions import ResilienceError
from ..graph.labeled_graph import LabeledGraph, normalize_edge_label
from ..isomorphism.matcher import find_embeddings
from ..obs import get_registry
from ..resilience.budget import current_budget
from ..resilience.degrade import anytime_degradation, degradation_enabled
from ..resilience.faults import trip
from .canonical import TreeCode, canonical_tokens, tree_certificate

DEFAULT_MAX_EDGES = 4
DEFAULT_EMBEDDING_CAP = 512


@dataclass
class MinedTree:
    """A subtree discovered by the miner, with its exact cover set.

    Attributes
    ----------
    tree:
        A representative copy with vertices relabelled 0..n−1.
    key:
        Free-tree canonical certificate (equal iff isomorphic).
    cover:
        IDs of database graphs containing at least one embedding.
    closed:
        True when no mined one-edge supertree has the same support.
    """

    tree: LabeledGraph
    key: TreeCode
    cover: set[int] = field(default_factory=set)
    closed: bool = True

    @property
    def support_count(self) -> int:
        return len(self.cover)

    def support(self, db_size: int) -> float:
        return len(self.cover) / db_size if db_size else 0.0

    @property
    def num_edges(self) -> int:
        return self.tree.num_edges

    def tokens(self) -> list[str]:
        """Canonical string tokens (for the FCT-Index trie)."""
        return canonical_tokens(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MinedTree |E|={self.tree.num_edges} "
            f"sup={len(self.cover)} closed={self.closed}>"
        )


class TreeMiner:
    """Level-wise frequent (closed) subtree miner.

    Parameters
    ----------
    graphs:
        Mapping graph-ID → graph (typically a :class:`GraphDatabase` view).
    min_support:
        Minimum transactional support in (0, 1].
    max_edges:
        Largest subtree size to grow (paper uses small features; trees at
        this frontier cannot have their closedness refuted and are
        reported closed).
    embedding_cap:
        Per-graph cap on enumerated embeddings of a single tree; a safety
        valve for pathological graphs (supports become lower bounds if a
        cap is ever hit, which :attr:`cap_hit` records).
    """

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        min_support: float,
        max_edges: int = DEFAULT_MAX_EDGES,
        embedding_cap: int = DEFAULT_EMBEDDING_CAP,
    ) -> None:
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        if max_edges < 1:
            raise ValueError("max_edges must be >= 1")
        self._graphs = dict(graphs)
        self.min_support = min_support
        self.max_edges = max_edges
        self.embedding_cap = embedding_cap
        self.cap_hit = False
        # True when a budget expired mid-mining and the returned pool is
        # the (valid but possibly incomplete) anytime result.
        self.degraded = False

    # ------------------------------------------------------------------
    @property
    def db_size(self) -> int:
        return len(self._graphs)

    def _min_count(self) -> int:
        # Smallest integer cover size meeting the fractional threshold.
        count = self.db_size * self.min_support
        rounded = int(count)
        return rounded if rounded == count else rounded + 1

    def _single_edge_trees(self) -> dict[TreeCode, MinedTree]:
        """Level-1 trees: one per distinct edge label pair, exact covers."""
        discovered: dict[TreeCode, MinedTree] = {}
        for graph_id, graph in self._graphs.items():
            for u, v in graph.edges():
                label_u, label_v = graph.label(u), graph.label(v)
                tree = LabeledGraph()
                la, lb = normalize_edge_label(label_u, label_v)
                tree.add_vertex(0, la)
                tree.add_vertex(1, lb)
                tree.add_edge(0, 1)
                key = tree_certificate(tree)
                entry = discovered.get(key)
                if entry is None:
                    entry = MinedTree(tree=tree, key=key)
                    discovered[key] = entry
                entry.cover.add(graph_id)
        return discovered

    def _grow(
        self, parent: MinedTree
    ) -> dict[TreeCode, MinedTree]:
        """All one-pendant-edge extensions of *parent* present in its cover."""
        children: dict[TreeCode, MinedTree] = {}
        pattern = parent.tree
        new_vertex = pattern.num_vertices  # vertices are 0..n-1
        for graph_id in parent.cover:
            host = self._graphs[graph_id]
            embeddings = find_embeddings(
                host, pattern, limit=self.embedding_cap
            )
            if len(embeddings) >= self.embedding_cap:
                self.cap_hit = True
            seen_local: set[TreeCode] = set()
            for embedding in embeddings:
                used = set(embedding.values())
                for pattern_vertex, host_vertex in embedding.items():
                    for neighbor in host.neighbors(host_vertex) - used:
                        grown = pattern.copy()
                        grown.add_vertex(new_vertex, host.label(neighbor))
                        grown.add_edge(pattern_vertex, new_vertex)
                        key = tree_certificate(grown)
                        entry = children.get(key)
                        if entry is None:
                            entry = MinedTree(tree=grown.relabeled(), key=key)
                            children[key] = entry
                        if key not in seen_local:
                            entry.cover.add(graph_id)
                            seen_local.add(key)
        return children

    # ------------------------------------------------------------------
    def mine(self) -> dict[TreeCode, MinedTree]:
        """Mine all frequent trees up to ``max_edges``, closedness marked.

        Returns a mapping canonical key → :class:`MinedTree` whose
        ``closed`` flags implement the TreeNat rule: a frequent tree is
        kept closed unless some one-edge supertree matches its support.

        Mining is *anytime*: if the ambient budget expires mid-growth
        the trees mined so far are returned (a valid, possibly
        incomplete pool — every returned tree really is frequent) and
        :attr:`degraded` is set.
        """
        trip("fct.mine")
        budget = current_budget()
        min_count = self._min_count()
        frequent: dict[TreeCode, MinedTree] = {}
        level = {
            key: tree
            for key, tree in self._single_edge_trees().items()
            if tree.support_count >= min_count
        }
        try:
            while level:
                if budget is not None:
                    budget.check("fct.mine")
                next_candidates: dict[TreeCode, MinedTree] = {}
                for key, tree in level.items():
                    frequent[key] = tree
                    if tree.num_edges >= self.max_edges:
                        continue
                    for child_key, child in self._grow(tree).items():
                        entry = next_candidates.get(child_key)
                        if entry is None:
                            next_candidates[child_key] = child
                        else:
                            entry.cover |= child.cover
                        # Closedness: an equal-support supertree refutes it.
                        grown_support = len(
                            next_candidates[child_key].cover
                        )
                        if grown_support == tree.support_count:
                            tree.closed = False
                level = {
                    key: tree
                    for key, tree in next_candidates.items()
                    if tree.support_count >= min_count
                }
        except ResilienceError:
            if not degradation_enabled():
                raise
            # Keep the frontier too — those trees met the threshold.
            for key, tree in level.items():
                frequent.setdefault(key, tree)
            self.degraded = True
            anytime_degradation("fct.mine")
        get_registry().counter("fct.trees_mined").add(len(frequent))
        return frequent

    def mine_frequent(self) -> list[MinedTree]:
        """All frequent trees (the FS features of CATAPULT)."""
        return sorted(
            self.mine().values(),
            key=lambda t: (t.num_edges, repr(t.key)),
        )

    def mine_closed(self) -> list[MinedTree]:
        """Frequent closed trees (the FCT features of CATAPULT++/MIDAS)."""
        return [tree for tree in self.mine_frequent() if tree.closed]


def mine_frequent_trees(
    graphs: Mapping[int, LabeledGraph],
    min_support: float,
    max_edges: int = DEFAULT_MAX_EDGES,
) -> list[MinedTree]:
    """Convenience wrapper: frequent subtrees of *graphs*."""
    return TreeMiner(graphs, min_support, max_edges).mine_frequent()


def mine_closed_trees(
    graphs: Mapping[int, LabeledGraph],
    min_support: float,
    max_edges: int = DEFAULT_MAX_EDGES,
) -> list[MinedTree]:
    """Convenience wrapper: frequent closed subtrees of *graphs*."""
    return TreeMiner(graphs, min_support, max_edges).mine_closed()
