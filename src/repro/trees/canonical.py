"""Canonical forms of labelled free trees.

CATAPULT/CATAPULT++ represent frequent (closed) trees by canonical trees
and canonical strings: trees are normalised, then serialised by a
top-down, level-by-level breadth-first scan in which the symbol ``$``
separates families of siblings (paper, Sections 4.2 and 5.1).  The
canonical string doubles as the token sequence inserted into the
FCT-Index trie.

The normalisation here is the classic AHU scheme extended with vertex
labels:

* a rooted tree is encoded bottom-up as ``(label, sorted child codes)``;
* a free tree is rooted at its centre (or at the better of the two
  centres when the tree is bicentral) so isomorphic free trees share one
  canonical rooted form.
"""

from __future__ import annotations

from ..graph.labeled_graph import GraphError, LabeledGraph, VertexId

TreeCode = tuple

SIBLING_SEPARATOR = "$"


def tree_centers(tree: LabeledGraph) -> list[VertexId]:
    """Return the 1 or 2 centre vertices of a tree (iterated leaf pruning)."""
    if not tree.is_tree():
        raise GraphError("tree_centers requires a connected acyclic graph")
    if tree.num_vertices == 1:
        return list(tree.vertices())
    degree = {v: tree.degree(v) for v in tree.vertices()}
    leaves = [v for v, d in degree.items() if d <= 1]
    remaining = tree.num_vertices
    while remaining > 2:
        remaining -= len(leaves)
        next_leaves: list[VertexId] = []
        for leaf in leaves:
            for neighbor in tree.neighbors(leaf):
                degree[neighbor] -= 1
                if degree[neighbor] == 1:
                    next_leaves.append(neighbor)
            degree[leaf] = 0
        leaves = next_leaves
    return sorted(leaves, key=repr)


def rooted_code(
    tree: LabeledGraph, root: VertexId, parent: VertexId | None = None
) -> TreeCode:
    """AHU canonical code of *tree* rooted at *root* (labels included)."""
    children = [v for v in tree.neighbors(root) if v != parent]
    child_codes = sorted(rooted_code(tree, child, root) for child in children)
    return (tree.label(root), tuple(child_codes))


def tree_certificate(tree: LabeledGraph) -> TreeCode:
    """Canonical code of a free labelled tree.

    Isomorphic trees have equal certificates and vice versa.
    """
    centers = tree_centers(tree)
    return min(rooted_code(tree, center) for center in centers)


def canonical_root(tree: LabeledGraph) -> VertexId:
    """The centre chosen by :func:`tree_certificate` as canonical root."""
    centers = tree_centers(tree)
    return min(centers, key=lambda c: rooted_code(tree, c))


def _ordered_children(
    tree: LabeledGraph, vertex: VertexId, parent: VertexId | None
) -> list[VertexId]:
    """Children of *vertex* sorted by their canonical subtree code."""
    children = [v for v in tree.neighbors(vertex) if v != parent]
    return sorted(children, key=lambda c: rooted_code(tree, c, vertex))


def canonical_tokens(tree: LabeledGraph) -> list[str]:
    """Canonical string of a tree as a token list.

    Format (paper, Section 5.1): the root label, then a top-down
    level-by-level BFS where each visited vertex emits ``$`` followed by
    the labels of its children in canonical order.  A childless vertex in
    a non-final level still emits its ``$`` so sibling families stay
    separated and the string is uniquely decodable.

    Example: the tree ``O - C - S`` rooted at C serialises to
    ``["C", "$", "O", "S"]``.
    """
    if tree.num_vertices == 0:
        return []
    root = canonical_root(tree)
    tokens: list[str] = [tree.label(root)]
    queue: list[tuple[VertexId, VertexId | None]] = [(root, None)]
    while queue:
        next_queue: list[tuple[VertexId, VertexId]] = []
        emitted_any = False
        pending: list[str] = []
        for vertex, parent in queue:
            children = _ordered_children(tree, vertex, parent)
            pending.append(SIBLING_SEPARATOR)
            for child in children:
                pending.append(tree.label(child))
                next_queue.append((child, vertex))
                emitted_any = True
        if not emitted_any:
            break
        tokens.extend(pending)
        queue = next_queue
    return tokens


def canonical_string(tree: LabeledGraph) -> str:
    """Space-joined form of :func:`canonical_tokens`."""
    return " ".join(canonical_tokens(tree))


def tree_from_tokens(tokens: list[str]) -> LabeledGraph:
    """Rebuild a tree from its canonical token list (inverse of
    :func:`canonical_tokens` up to isomorphism)."""
    if not tokens:
        return LabeledGraph()
    tree = LabeledGraph()
    tree.add_vertex(0, tokens[0])
    next_vertex = 1
    frontier: list[int] = [0]
    position = 1
    while position < len(tokens) and frontier:
        next_frontier: list[int] = []
        for parent in frontier:
            if position >= len(tokens):
                break
            if tokens[position] != SIBLING_SEPARATOR:
                raise ValueError(
                    f"expected {SIBLING_SEPARATOR!r} at token {position}, "
                    f"got {tokens[position]!r}"
                )
            position += 1
            while position < len(tokens) and tokens[position] != SIBLING_SEPARATOR:
                tree.add_vertex(next_vertex, tokens[position])
                tree.add_edge(parent, next_vertex)
                next_frontier.append(next_vertex)
                next_vertex += 1
                position += 1
            # Peek: if the next family belongs to the next parent in this
            # level, the loop continues; handled by outer for.
        frontier = next_frontier
    return tree
