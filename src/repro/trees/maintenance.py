"""Incremental maintenance of frequent closed trees (FCT).

MIDAS replaces CATAPULT's frequent subtrees with frequent *closed* trees
because closed trees admit an efficient maintenance strategy (paper,
Sections 3.3 and 4.2; Lemmas 3.4 and 4.5):

1. the pool is mined once at a **relaxed** threshold ``sup_min / 2`` so
   that trees whose support rises after deletions (support inflation is
   bounded by 2× while less than half of the database is deleted) are
   already present;
2. on a batch insertion Δ⁺, only Δ⁺ is mined (again at the relaxed
   threshold); trees already pooled get their exact cover sets extended
   by containment tests against the new graphs only, and genuinely new
   trees get their historic cover computed by a single scan — the classic
   CTMiningAdd merge;
3. on a batch deletion Δ⁻, cover sets simply shed the removed IDs — the
   CTMiningDelete step;
4. closedness is recomputed inside the pool: a tree is non-closed iff an
   equal-support proper supertree exists, and any such supertree chain
   terminates at a pooled tree (support anti-monotonicity keeps every
   intermediate tree at the same support, hence pooled).

The pool stores *all* frequent trees at the relaxed threshold rather than
closed ones only; this costs a little memory but makes the closedness
recomputation self-contained and exact with respect to the mined
universe (trees up to ``max_edges``).  ``fcts()`` reports the frequent
closed trees at the original threshold, and ``frequent_edges()`` /
``infrequent_edge_labels()`` feed the FCT-/IFE-indices.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.matcher import contains
from ..obs import get_registry
from .canonical import TreeCode
from .mining import DEFAULT_MAX_EDGES, MinedTree, TreeMiner


class FCTSet:
    """A maintained pool of frequent (closed) trees with exact covers.

    Parameters
    ----------
    graphs:
        The initial database content as a mapping graph-ID → graph.
    sup_min:
        The FCT support threshold; the pool is mined at ``sup_min / 2``.
    max_edges:
        Largest tree size mined (matches :class:`TreeMiner`).
    """

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        sup_min: float,
        max_edges: int = DEFAULT_MAX_EDGES,
    ) -> None:
        if not 0.0 < sup_min <= 1.0:
            raise ValueError(f"sup_min must be in (0, 1], got {sup_min}")
        self.sup_min = sup_min
        self.max_edges = max_edges
        self._graphs: dict[int, LabeledGraph] = dict(graphs)
        self._pool: dict[TreeCode, MinedTree] = {}
        self.rebuild()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def db_size(self) -> int:
        return len(self._graphs)

    @property
    def relaxed_threshold(self) -> float:
        return self.sup_min / 2.0

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def _min_count(self, threshold: float) -> int:
        count = self.db_size * threshold
        rounded = int(count)
        return rounded if rounded == count else rounded + 1

    def pool(self) -> list[MinedTree]:
        """Every pooled tree (frequent at the relaxed threshold)."""
        return sorted(
            self._pool.values(), key=lambda t: (t.num_edges, repr(t.key))
        )

    def frequent(self) -> list[MinedTree]:
        """Trees frequent at the original ``sup_min`` threshold."""
        minimum = self._min_count(self.sup_min)
        return [t for t in self.pool() if t.support_count >= minimum]

    def fcts(self) -> list[MinedTree]:
        """Frequent **closed** trees at ``sup_min`` — the FCT features."""
        return [t for t in self.frequent() if t.closed]

    def frequent_edges(self) -> list[MinedTree]:
        """Single-edge frequent trees (the ``E_freq`` of the FCT-Index)."""
        return [t for t in self.frequent() if t.num_edges == 1]

    def infrequent_edge_labels(self) -> set[tuple[str, str]]:
        """Edge labels below ``sup_min`` (the ``E_inf`` of the IFE-Index)."""
        minimum = self._min_count(self.sup_min)
        document_frequency: dict[tuple[str, str], int] = {}
        for graph in self._graphs.values():
            for edge_label in graph.edge_label_set():
                document_frequency[edge_label] = (
                    document_frequency.get(edge_label, 0) + 1
                )
        return {
            label
            for label, frequency in document_frequency.items()
            if frequency < minimum
        }

    def support_of(self, key: TreeCode) -> int:
        """Exact cover size of a pooled tree (KeyError if not pooled)."""
        return self._pool[key].support_count

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Re-mine the pool from scratch at the relaxed threshold."""
        if self._graphs:
            miner = TreeMiner(
                self._graphs, self.relaxed_threshold, self.max_edges
            )
            self._pool = miner.mine()
        else:
            self._pool = {}
        self._recompute_closedness()

    def add_graphs(self, new_graphs: Mapping[int, LabeledGraph]) -> None:
        """CTMiningAdd: merge the trees of Δ⁺ into the pool.

        Existing pool trees are updated by containment tests against the
        *new graphs only*; trees discovered in Δ⁺ that are not yet pooled
        get their historic cover from one scan over the old database.
        """
        if not new_graphs:
            return
        duplicate_ids = set(new_graphs) & set(self._graphs)
        if duplicate_ids:
            raise ValueError(f"graph ids already present: {sorted(duplicate_ids)}")
        old_graphs = dict(self._graphs)
        containment_tests = 0
        # 1. Extend covers of pooled trees over the new graphs.
        for entry in self._pool.values():
            for graph_id, graph in new_graphs.items():
                containment_tests += 1
                if contains(graph, entry.tree):
                    entry.cover.add(graph_id)
        # 2. Mine Δ⁺ at the relaxed threshold and merge novel trees.
        delta_miner = TreeMiner(
            new_graphs, self.relaxed_threshold, self.max_edges
        )
        for key, mined in delta_miner.mine().items():
            if key in self._pool:
                continue  # cover already extended in step 1
            containment_tests += len(old_graphs)
            historic_cover = {
                graph_id
                for graph_id, graph in old_graphs.items()
                if contains(graph, mined.tree)
            }
            mined.cover |= historic_cover
            self._pool[key] = mined
        get_registry().counter("fct.containment_tests").add(containment_tests)
        self._graphs.update(new_graphs)
        self._prune()
        self._recompute_closedness()

    def remove_graphs(self, graph_ids: Iterable[int]) -> None:
        """CTMiningDelete: shed deleted IDs from every cover set."""
        removed = set(graph_ids)
        missing = removed - set(self._graphs)
        if missing:
            raise ValueError(f"graph ids not present: {sorted(missing)}")
        if not removed:
            return
        for graph_id in removed:
            del self._graphs[graph_id]
        for entry in self._pool.values():
            entry.cover -= removed
        self._prune()
        self._recompute_closedness()

    def apply(
        self,
        added: Mapping[int, LabeledGraph] | None = None,
        removed: Iterable[int] | None = None,
    ) -> None:
        """Apply a batch update (deletions first, as in Algorithm 1)."""
        if removed:
            self.remove_graphs(removed)
        if added:
            self.add_graphs(added)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prune(self) -> None:
        minimum = self._min_count(self.relaxed_threshold)
        self._pool = {
            key: entry
            for key, entry in self._pool.items()
            if entry.support_count >= minimum and entry.support_count > 0
        }
        get_registry().gauge("fct.pool_size").set(len(self._pool))

    def _recompute_closedness(self) -> None:
        """Mark each pooled tree closed iff no equal-support one-edge
        supertree exists in the pool.

        Any equal-support proper supertree chain passes through an
        equal-support tree with exactly one more edge, and that tree is
        frequent at the relaxed threshold, hence pooled (up to the
        ``max_edges`` mining frontier).
        """
        by_size: dict[int, list[MinedTree]] = {}
        for entry in self._pool.values():
            by_size.setdefault(entry.num_edges, []).append(entry)
        closure_checks = 0
        for entry in self._pool.values():
            entry.closed = True
            for candidate in by_size.get(entry.num_edges + 1, ()):
                if candidate.support_count != entry.support_count:
                    continue
                closure_checks += 1
                if contains(candidate.tree, entry.tree):
                    entry.closed = False
                    break
        get_registry().counter("fct.closure_checks").add(closure_checks)
