"""A recursive TreeNat-style closed-tree miner.

The paper generates closed trees "by leveraging the TREENAT approach":
a recursive framework that, at each step, checks the support of all
one-step extensions of the current subtree, recurses into the frequent
ones, and admits the current subtree as closed only when no extension
matches its support (Section 4.2, citing Balcázar–Bifet–Lozano).

:mod:`repro.trees.mining` implements the same semantics level-wise (it
is the production miner because its cover bookkeeping feeds the
FCT-Index); this module is the faithful *recursive* formulation.  The
two are cross-checked against each other in the test suite — an
algorithm-level redundancy that guards both implementations.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graph.labeled_graph import LabeledGraph, normalize_edge_label
from ..isomorphism.matcher import contains, find_embeddings
from .canonical import TreeCode, tree_certificate
from .mining import DEFAULT_MAX_EDGES, MinedTree


class TreeNatMiner:
    """Depth-first closed-tree mining with recursive extension checks."""

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        min_support: float,
        max_edges: int = DEFAULT_MAX_EDGES,
    ) -> None:
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        if max_edges < 1:
            raise ValueError("max_edges must be >= 1")
        self._graphs = dict(graphs)
        self.min_support = min_support
        self.max_edges = max_edges
        self._results: dict[TreeCode, MinedTree] = {}
        self._visited: set[TreeCode] = set()

    # ------------------------------------------------------------------
    def _min_count(self) -> int:
        count = len(self._graphs) * self.min_support
        rounded = int(count)
        return rounded if rounded == count else rounded + 1

    def _cover(self, tree: LabeledGraph) -> set[int]:
        """Transactional cover via VF2 (label prefilters make this cheap)."""
        return {
            graph_id
            for graph_id, graph in self._graphs.items()
            if contains(graph, tree)
        }

    def _extensions(self, tree: LabeledGraph) -> dict[TreeCode, LabeledGraph]:
        """All one-pendant-edge extensions present in the database."""
        extensions: dict[TreeCode, LabeledGraph] = {}
        new_vertex = tree.num_vertices
        for host in self._graphs.values():
            for embedding in find_embeddings(host, tree, limit=256):
                used = set(embedding.values())
                for pattern_vertex, host_vertex in embedding.items():
                    for neighbor in host.neighbors(host_vertex) - used:
                        grown = tree.copy()
                        grown.add_vertex(new_vertex, host.label(neighbor))
                        grown.add_edge(pattern_vertex, new_vertex)
                        key = tree_certificate(grown)
                        extensions.setdefault(key, grown.relabeled())
        return extensions

    def _recurse(self, tree: LabeledGraph, cover: set[int]) -> None:
        key = tree_certificate(tree)
        if key in self._visited:
            return
        self._visited.add(key)
        closed = True
        if tree.num_edges < self.max_edges:
            for _, extension in sorted(
                self._extensions(tree).items(), key=lambda kv: repr(kv[0])
            ):
                extension_cover = self._cover(extension)
                if len(extension_cover) == len(cover):
                    closed = False  # equal-support supertree exists
                if len(extension_cover) >= self._min_count():
                    self._recurse(extension, extension_cover)
        entry = MinedTree(
            tree=tree.relabeled(),
            key=key,
            cover=set(cover),
            closed=closed,
        )
        self._results[key] = entry

    # ------------------------------------------------------------------
    def mine_closed(self) -> list[MinedTree]:
        """All frequent closed trees, depth-first."""
        self._results = {}
        self._visited = set()
        minimum = self._min_count()
        seeds: dict[TreeCode, LabeledGraph] = {}
        for graph in self._graphs.values():
            for u, v in graph.edges():
                la, lb = normalize_edge_label(graph.label(u), graph.label(v))
                edge_tree = LabeledGraph()
                edge_tree.add_vertex(0, la)
                edge_tree.add_vertex(1, lb)
                edge_tree.add_edge(0, 1)
                seeds.setdefault(tree_certificate(edge_tree), edge_tree)
        for _, seed in sorted(seeds.items(), key=lambda kv: repr(kv[0])):
            cover = self._cover(seed)
            if len(cover) >= minimum:
                self._recurse(seed, cover)
        return sorted(
            (t for t in self._results.values() if t.closed),
            key=lambda t: (t.num_edges, repr(t.key)),
        )
