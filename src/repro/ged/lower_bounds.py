"""Lower bounds on graph edit distance.

Diversity of a canned pattern set is defined through graph edit distance
(GED), which is NP-hard to compute exactly.  CATAPULT uses a cheap
label-count lower bound ``GED_l``; MIDAS tightens it to ``GED'_l`` by
additionally counting *relaxed edges* — pattern edges that cannot
participate in any common substructure (paper, Section 6.1, Lemma 6.1):

    GED'_l(G_A, G_B) = |V| + |E|
    |V| = ||V_A| − |V_B|| + min(|V_A|, |V_B|) − |L(V_A) ∩ L(V_B)|
    |E| = ||E_A| − |E_B|| + n

where the label intersection is a **multiset** intersection and ``n`` is
the number of relaxed edges.  We compute ``n`` as the number of edges of
the smaller graph whose (endpoint-derived) edge label has no unmatched
counterpart in the other graph — every such edge must be deleted or
rewired by any edit path, so the bound remains admissible.
"""

from __future__ import annotations

from collections import Counter

from ..graph.labeled_graph import LabeledGraph


def _multiset_intersection_size(a: Counter, b: Counter) -> int:
    return sum(min(count, b.get(key, 0)) for key, count in a.items())


def vertex_term(first: LabeledGraph, second: LabeledGraph) -> int:
    """The |V| component shared by ``GED_l`` and ``GED'_l``."""
    labels_a = Counter(first.labels().values())
    labels_b = Counter(second.labels().values())
    common = _multiset_intersection_size(labels_a, labels_b)
    return abs(first.num_vertices - second.num_vertices) + (
        min(first.num_vertices, second.num_vertices) - common
    )


def relaxed_edge_count(first: LabeledGraph, second: LabeledGraph) -> int:
    """Number of label-unmatched edges ``n`` of the smaller graph.

    An edge of the smaller graph is *relaxed* when its edge label cannot
    be matched by any remaining edge of the larger graph (Lemma 6.1's raw
    count).  Note that because edge labels derive from endpoint labels, a
    vertex substitution — already paid for inside the |V| term — can fix
    such an edge for free; :func:`ged_tight_lower_bound` therefore
    discounts this count by a substitution allowance before adding it.
    """
    small, large = (
        (first, second)
        if first.num_edges <= second.num_edges
        else (second, first)
    )
    small_labels = Counter(small.edge_label_multiset())
    large_labels = Counter(large.edge_label_multiset())
    matched = _multiset_intersection_size(small_labels, large_labels)
    return small.num_edges - matched


def ged_label_lower_bound(first: LabeledGraph, second: LabeledGraph) -> int:
    """The baseline label-count lower bound ``GED_l`` used by CATAPULT."""
    return vertex_term(first, second) + abs(first.num_edges - second.num_edges)


def _substitution_budget(first: LabeledGraph, second: LabeledGraph) -> int:
    """Vertex substitutions already paid for inside the |V| term."""
    labels_a = Counter(first.labels().values())
    labels_b = Counter(second.labels().values())
    common = _multiset_intersection_size(labels_a, labels_b)
    return min(first.num_vertices, second.num_vertices) - common


def ged_tight_lower_bound(first: LabeledGraph, second: LabeledGraph) -> int:
    """MIDAS's tightened lower bound ``GED'_l = GED_l + n`` (Lemma 6.1).

    Admissibility refinement: the raw relaxed-edge count ``n`` assumes an
    unmatched-label edge always costs an extra edit, but an edit path may
    instead substitute an endpoint — an operation the |V| term already
    charges — which rewrites the derived edge label for free.  Any edit
    path using ``s'`` substitutions can fix at most the edges incident to
    the ``s'`` highest-degree vertices of the smaller graph, so the extra
    edge cost is at least

        min over s' ≥ s of  (s' − s) + max(0, n − fixable(s'))

    where ``s`` is the substitution budget implied by the |V| term.  This
    keeps GED'_l ≥ GED_l while never exceeding the true distance
    (validated against exact A* in the test suite).
    """
    base = ged_label_lower_bound(first, second)
    unmatched = relaxed_edge_count(first, second)
    if unmatched == 0:
        return base
    budget = _substitution_budget(first, second)

    def extra_for(small: LabeledGraph) -> int:
        degrees = sorted(
            (small.degree(v) for v in small.vertices()), reverse=True
        )
        best = unmatched  # s' = s, nothing fixable
        fixable = 0
        for extra_subs, degree in enumerate(degrees):
            if extra_subs < budget:
                fixable += degree
                continue
            # One more substitution beyond the budget: pay 1, fix `degree`.
            fixable += degree
            cost = (extra_subs - budget + 1) + max(
                0, unmatched - min(fixable, small.num_edges)
            )
            best = min(best, cost)
        # Also consider spending the budget only (no extra substitutions).
        fixable_at_budget = sum(degrees[:budget])
        return min(
            best,
            max(0, unmatched - min(fixable_at_budget, small.num_edges)),
        )

    if first.num_edges < second.num_edges:
        best_extra = extra_for(first)
    elif second.num_edges < first.num_edges:
        best_extra = extra_for(second)
    else:
        # Equal sizes: either graph may play the "smaller" role; each
        # orientation yields an admissible bound, so take the larger —
        # this also makes the bound symmetric (GED'(a,b) == GED'(b,a)),
        # which the swap criteria rely on.
        best_extra = max(extra_for(first), extra_for(second))
    return base + best_extra
