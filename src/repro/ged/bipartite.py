"""Assignment-based graph edit distance approximation.

This is the classic bipartite GED of Riesen, Neuhaus and Bunke (cited by
the paper for its diversity measure, reference [32]): build a cost matrix
between the vertex sets of the two graphs (plus insertion/deletion rows
and columns), solve the linear sum assignment problem, and derive an edit
path from the vertex assignment.  The resulting cost is an **upper bound**
on the true GED; together with the lower bounds of
:mod:`repro.ged.lower_bounds` it brackets the exact value.

Unit costs are used throughout (vertex/edge insertion, deletion and label
substitution each cost 1), matching the paper's diversity semantics where
GED counts elementary edit operations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..obs import get_registry
from ..resilience.faults import trip


def _local_edge_cost(
    first: LabeledGraph, u: VertexId, second: LabeledGraph, v: VertexId
) -> float:
    """Estimated edge edit cost of mapping u → v from local structure.

    Compares the multisets of incident edge labels; unmatched incident
    edges on either side each contribute half an edge operation (an edge
    has two endpoints, so its cost is split between them).
    """
    labels_u = Counter(
        first.edge_label(u, n) for n in first.neighbors(u)
    )
    labels_v = Counter(
        second.edge_label(v, n) for n in second.neighbors(v)
    )
    common = sum(min(c, labels_v.get(k, 0)) for k, c in labels_u.items())
    unmatched = (first.degree(u) - common) + (second.degree(v) - common)
    return unmatched / 2.0


def _assignment_cost_matrix(
    first: LabeledGraph, second: LabeledGraph
) -> tuple[np.ndarray, list[VertexId], list[VertexId]]:
    rows = sorted(first.vertices(), key=repr)
    cols = sorted(second.vertices(), key=repr)
    n, m = len(rows), len(cols)
    size = n + m
    matrix = np.full((size, size), 0.0)
    for i, u in enumerate(rows):
        for j, v in enumerate(cols):
            substitution = 0.0 if first.label(u) == second.label(v) else 1.0
            matrix[i, j] = substitution + _local_edge_cost(first, u, second, v)
    big = float(size * size + 1)
    # Deletion block (u → epsilon): only the diagonal entry is allowed.
    for i, u in enumerate(rows):
        matrix[i, m:size] = big
        matrix[i, m + i] = 1.0 + first.degree(u) / 2.0
    # Insertion block (epsilon → v).
    for i in range(n, size):
        matrix[i, :m] = big
        matrix[i, m:size] = 0.0
    for j, v in enumerate(cols):
        matrix[n + j, j] = 1.0 + second.degree(v) / 2.0
    return matrix, rows, cols


def _edit_cost_of_mapping(
    first: LabeledGraph,
    second: LabeledGraph,
    mapping: dict[VertexId, VertexId],
) -> int:
    """Exact unit-cost edit distance induced by a full vertex *mapping*.

    Vertices of *first* absent from the mapping are deleted; vertices of
    *second* not in its image are inserted.  Edge costs follow from the
    mapping deterministically.
    """
    cost = 0
    image = set(mapping.values())
    cost += sum(1 for u in first.vertices() if u not in mapping)
    cost += sum(1 for v in second.vertices() if v not in image)
    cost += sum(
        1
        for u, v in mapping.items()
        if first.label(u) != second.label(v)
    )
    # Edge deletions / substitut-free matches.
    matched_second_edges: set[frozenset] = set()
    for a, b in first.edges():
        if a in mapping and b in mapping and second.has_edge(mapping[a], mapping[b]):
            matched_second_edges.add(frozenset((mapping[a], mapping[b])))
        else:
            cost += 1  # edge deleted
    for a, b in second.edges():
        if frozenset((a, b)) not in matched_second_edges:
            cost += 1  # edge inserted
    return cost


def ged_bipartite_upper_bound(
    first: LabeledGraph, second: LabeledGraph
) -> int:
    """Assignment-based upper bound on GED (Riesen–Bunke style)."""
    trip("ged.bipartite")
    get_registry().counter("ged.bipartite.calls").add(1)
    if first.num_vertices == 0 and second.num_vertices == 0:
        return 0
    if first.num_vertices == 0:
        return second.num_vertices + second.num_edges
    if second.num_vertices == 0:
        return first.num_vertices + first.num_edges
    matrix, rows, cols = _assignment_cost_matrix(first, second)
    row_idx, col_idx = linear_sum_assignment(matrix)
    mapping: dict[VertexId, VertexId] = {}
    for i, j in zip(row_idx, col_idx):
        if i < len(rows) and j < len(cols):
            mapping[rows[i]] = cols[j]
    return _edit_cost_of_mapping(first, second, mapping)
