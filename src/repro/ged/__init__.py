"""Graph edit distance: lower bounds, bipartite approximation, exact A*.

The package exposes a single dispatcher :func:`ged` selecting the method
by name, plus the individual implementations.  CATAPULT computes pattern
diversity with the label-count lower bound ``GED_l``; MIDAS tightens it to
``GED'_l`` (Lemma 6.1).
"""

from __future__ import annotations

from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from .beam import ged_beam_upper_bound
from .bipartite import ged_bipartite_upper_bound
from .exact import ged_exact
from .lower_bounds import (
    ged_label_lower_bound,
    ged_tight_lower_bound,
    relaxed_edge_count,
    vertex_term,
)

GED_METHODS = {
    "lower": ged_label_lower_bound,
    "tight_lower": ged_tight_lower_bound,
    "bipartite": ged_bipartite_upper_bound,
    "beam": ged_beam_upper_bound,
    "exact": ged_exact,
}


def ged(
    first: LabeledGraph, second: LabeledGraph, method: str = "tight_lower"
) -> int:
    """Graph edit distance between two graphs using *method*.

    ``method`` is one of ``lower`` (CATAPULT's GED_l), ``tight_lower``
    (MIDAS's GED'_l, the default), ``bipartite`` (assignment-based upper
    bound) or ``exact`` (A*, tiny graphs only).
    """
    try:
        implementation = GED_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown GED method {method!r}; choose from {sorted(GED_METHODS)}"
        ) from None
    registry = get_registry()
    registry.counter("ged.calls").add(1)
    # Literal metric names (not f-strings) keep the catalogue in
    # docs/OBSERVABILITY.md greppable; beam/bipartite count themselves.
    if method == "lower":
        registry.counter("ged.lower.calls").add(1)
    elif method == "tight_lower":
        registry.counter("ged.tight_lower.calls").add(1)
    elif method == "exact":
        registry.counter("ged.exact.calls").add(1)
    return implementation(first, second)


__all__ = [
    "GED_METHODS",
    "ged",
    "ged_beam_upper_bound",
    "ged_bipartite_upper_bound",
    "ged_exact",
    "ged_label_lower_bound",
    "ged_tight_lower_bound",
    "relaxed_edge_count",
    "vertex_term",
]
