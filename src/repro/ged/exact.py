"""Exact graph edit distance via A* search.

Exact GED is exponential, but canned patterns are tiny (≤ 12 edges), and
the reproduction needs ground truth to (a) validate that the bounds in
:mod:`repro.ged.lower_bounds` and :mod:`repro.ged.bipartite` bracket the
true distance and (b) serve as the reference diversity when experiments
request it.  The search maps the vertices of the first graph one at a
time to vertices of the second graph or to ε (deletion); leftover second
vertices are inserted at the end.  ``g`` is the exact edit cost of the
decided prefix; ``h`` is an admissible label-count heuristic on the
undecided remainder.

Unit costs: every vertex/edge insertion, deletion and label substitution
costs 1.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..resilience.budget import current_budget
from ..resilience.faults import trip

_EPS = object()  # deletion target


def _heuristic(
    first: LabeledGraph,
    second: LabeledGraph,
    remaining_first: list[VertexId],
    unused_second: set[VertexId],
) -> int:
    """Admissible lower bound on the cost of completing a partial mapping.

    Counts unavoidable vertex operations among the undecided vertices via
    label multiset mismatch; edge costs are ignored (hence admissible).
    """
    labels_a = Counter(first.label(v) for v in remaining_first)
    labels_b = Counter(second.label(v) for v in unused_second)
    common = sum(min(c, labels_b.get(k, 0)) for k, c in labels_a.items())
    return max(len(remaining_first), len(unused_second)) - common


def _prefix_edge_cost(
    first: LabeledGraph,
    second: LabeledGraph,
    order: list[VertexId],
    depth: int,
    assignment: tuple,
) -> int:
    """Edge edit cost decided by the first *depth* assignments."""
    mapping = {
        order[i]: assignment[i] for i in range(depth) if assignment[i] is not _EPS
    }
    decided = set(order[:depth])
    cost = 0
    matched: set[frozenset] = set()
    for i in range(depth):
        u = order[i]
        for j in range(i):
            w = order[j]
            has_a = first.has_edge(u, w)
            mu = assignment[i]
            mw = assignment[j]
            has_b = (
                mu is not _EPS
                and mw is not _EPS
                and second.has_edge(mu, mw)
            )
            if has_a and has_b:
                matched.add(frozenset((mu, mw)))
            elif has_a:
                cost += 1  # deletion of a first-graph edge
            # Insertions are counted once below, from the second graph's
            # edge list, to avoid double charging.
    used = {a for a in assignment[:depth] if a is not _EPS}
    for x, y in second.edges():
        if x in used and y in used and frozenset((x, y)) not in matched:
            cost += 1
    _ = decided
    return cost


def ged_exact(
    first: LabeledGraph,
    second: LabeledGraph,
    limit: int | None = None,
) -> int:
    """Exact unit-cost GED between two small graphs.

    Parameters
    ----------
    limit:
        Optional cost cap; the search stops early and returns *limit*
        when the true distance is ≥ limit.  Useful as a budget guard.
    """
    trip("ged.exact")
    budget = current_budget()
    order = sorted(first.vertices(), key=repr)
    targets = sorted(second.vertices(), key=repr)
    if not order:
        return second.num_vertices + second.num_edges
    if not targets:
        return first.num_vertices + first.num_edges

    counter = itertools.count()  # tie-breaker for the heap

    def initial_h() -> int:
        return _heuristic(first, second, order, set(targets))

    # State: (f, tie, depth, assignment tuple)
    start = (initial_h(), next(counter), 0, ())
    heap = [start]
    best_seen: dict[tuple, int] = {}
    while heap:
        if budget is not None:
            budget.spend(1, site="ged.exact")
        f, _, depth, assignment = heapq.heappop(heap)
        if limit is not None and f >= limit:
            return limit
        if depth == len(order):
            # Complete: add insertion cost for untouched second vertices
            # and their incident edges (already included below).
            return f
        u = order[depth]
        used = {a for a in assignment if a is not _EPS}
        choices: list = [t for t in targets if t not in used]
        choices.append(_EPS)
        for target in choices:
            new_assignment = assignment + (target,)
            g_vertex = 0
            for i, a in enumerate(new_assignment):
                if a is _EPS:
                    g_vertex += 1
                elif first.label(order[i]) != second.label(a):
                    g_vertex += 1
            g_edges = _prefix_edge_cost(
                first, second, order, depth + 1, new_assignment
            )
            g = g_vertex + g_edges
            remaining = order[depth + 1 :]
            unused = set(targets) - {
                a for a in new_assignment if a is not _EPS
            }
            if depth + 1 == len(order):
                # Insert the remaining second vertices and their edges
                # not yet accounted for (edges touching an unused vertex).
                g += len(unused)
                for x, y in second.edges():
                    if x in unused or y in unused:
                        g += 1
                h = 0
            else:
                h = _heuristic(first, second, remaining, unused)
            state_key = (depth + 1, new_assignment)
            f_new = g + h
            prior = best_seen.get(state_key)
            if prior is not None and prior <= f_new:
                continue
            best_seen[state_key] = f_new
            heapq.heappush(heap, (f_new, next(counter), depth + 1, new_assignment))
    raise RuntimeError("A* exhausted without reaching a goal state")
