"""Beam-search graph edit distance (anytime upper bound).

The assignment-based bound of :mod:`repro.ged.bipartite` commits to one
vertex mapping; beam search explores the same A* state space as
:mod:`repro.ged.exact` but keeps only the ``beam_width`` most promising
partial mappings per level, yielding a tunable upper bound:

* ``beam_width = 1`` is a greedy mapping (fast, loose);
* growing widths converge to the exact distance;
* the result is always an achievable edit cost, hence ≥ exact GED and a
  valid upper bound — and in practice tighter than the bipartite bound
  on the small patterns this library manipulates.
"""

from __future__ import annotations

from collections import Counter

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..obs import get_registry
from ..resilience.budget import current_budget
from ..resilience.faults import trip

_EPS = object()

DEFAULT_BEAM_WIDTH = 8


def _label_heuristic(
    first: LabeledGraph,
    second: LabeledGraph,
    remaining_first: list[VertexId],
    unused_second: set[VertexId],
) -> int:
    labels_a = Counter(first.label(v) for v in remaining_first)
    labels_b = Counter(second.label(v) for v in unused_second)
    common = sum(min(c, labels_b.get(k, 0)) for k, c in labels_a.items())
    return max(len(remaining_first), len(unused_second)) - common


def _mapping_cost(
    first: LabeledGraph,
    second: LabeledGraph,
    order: list[VertexId],
    assignment: tuple,
) -> int:
    """Exact edit cost of a complete assignment (ε entries = deletion)."""
    cost = 0
    mapping: dict[VertexId, VertexId] = {}
    for vertex, target in zip(order, assignment):
        if target is _EPS:
            cost += 1
        else:
            mapping[vertex] = target
            if first.label(vertex) != second.label(target):
                cost += 1
    image = set(mapping.values())
    cost += sum(1 for v in second.vertices() if v not in image)
    matched: set[frozenset] = set()
    for u, v in first.edges():
        if (
            u in mapping
            and v in mapping
            and second.has_edge(mapping[u], mapping[v])
        ):
            matched.add(frozenset((mapping[u], mapping[v])))
        else:
            cost += 1
    for x, y in second.edges():
        if frozenset((x, y)) not in matched:
            cost += 1
    return cost


def _partial_cost(
    first: LabeledGraph,
    second: LabeledGraph,
    order: list[VertexId],
    assignment: tuple,
) -> int:
    """Edit cost decided by the prefix (used for beam ranking)."""
    cost = 0
    mapping: dict[VertexId, VertexId] = {}
    for vertex, target in zip(order, assignment):
        if target is _EPS:
            cost += 1
        else:
            mapping[vertex] = target
            if first.label(vertex) != second.label(target):
                cost += 1
    decided = set(order[: len(assignment)])
    for u, v in first.edges():
        if u in decided and v in decided:
            mapped = (
                u in mapping
                and v in mapping
                and second.has_edge(mapping[u], mapping[v])
            )
            if not mapped:
                cost += 1
    return cost


def ged_beam_upper_bound(
    first: LabeledGraph,
    second: LabeledGraph,
    beam_width: int = DEFAULT_BEAM_WIDTH,
) -> int:
    """Beam-search upper bound on unit-cost GED."""
    if beam_width < 1:
        raise ValueError("beam_width must be positive")
    trip("ged.beam")
    budget = current_budget()
    registry = get_registry()
    registry.counter("ged.beam.calls").add(1)
    order = sorted(first.vertices(), key=lambda v: (-first.degree(v), repr(v)))
    targets = sorted(second.vertices(), key=repr)
    if not order:
        return second.num_vertices + second.num_edges
    if not targets:
        return first.num_vertices + first.num_edges

    nodes_expanded = 0
    nodes_pruned = 0
    beam: list[tuple] = [()]
    for depth, vertex in enumerate(order):
        if budget is not None:
            budget.spend(len(beam), site="ged.beam")
        scored: list[tuple[int, int, tuple]] = []
        tiebreak = 0
        for assignment in beam:
            used = {a for a in assignment if a is not _EPS}
            choices = [
                t
                for t in targets
                if t not in used and second.label(t) == first.label(vertex)
            ]
            # Allow one label-mismatching option and deletion so the
            # search cannot dead-end.
            mismatches = [t for t in targets if t not in used][:2]
            for target in dict.fromkeys(choices[: beam_width] + mismatches):
                candidate = assignment + (target,)
                g = _partial_cost(first, second, order, candidate)
                remaining = order[depth + 1 :]
                unused = set(targets) - {
                    a for a in candidate if a is not _EPS
                }
                h = _label_heuristic(first, second, remaining, unused)
                tiebreak += 1
                scored.append((g + h, tiebreak, candidate))
            candidate = assignment + (_EPS,)
            g = _partial_cost(first, second, order, candidate)
            tiebreak += 1
            scored.append((g + 1, tiebreak, candidate))
        scored.sort(key=lambda item: (item[0], item[1]))
        nodes_expanded += len(scored)
        nodes_pruned += max(0, len(scored) - beam_width)
        beam = [candidate for _, _, candidate in scored[:beam_width]]
    registry.counter("ged.beam.nodes_expanded").add(nodes_expanded)
    registry.counter("ged.beam.prunes").add(nodes_pruned)
    return min(
        _mapping_cost(first, second, order, assignment)
        for assignment in beam
    )
