"""Picklable kernels for :class:`~repro.parallel.pool.KernelPool`.

Each kernel is a top-level function with the ``kernel(payload, chunk)``
contract (one result per chunk item, each a pure function of
``(payload, item)``), so results are independent of chunk boundaries and
the pool's ordered reduction reproduces the serial loop exactly.  The
three kernels mirror the hot paths a maintenance round spends its time
in (paper, Sections 5–6): pairwise GED evaluation, VF2 containment over
the database sample, and CATAPULT candidate scoring.

Heavy imports happen inside the function bodies: this module is imported
by the pool machinery and must stay cycle-free, and fork workers inherit
the parent's already-imported modules anyway.
"""

from __future__ import annotations

from ..graph.labeled_graph import LabeledGraph


def ged_pairs_kernel(payload, chunk):
    """``chunk``: list of ``(first, second)`` pairs; payload: GED method.

    Returns ``[(value, fidelity), ...]`` — the fidelity tag records any
    trip down the degradation ladder inside the worker.
    """
    from ..resilience.degrade import resilient_ged

    method = payload
    results = []
    for first, second in chunk:
        outcome = resilient_ged(first, second, method=method)
        results.append((outcome.value, outcome.fidelity))
    return results


def contains_kernel(payload, chunk):
    """``chunk``: list of host graphs; payload: the pattern.

    Returns one containment verdict per host (pattern ⊆ host).
    """
    from ..isomorphism.matcher import contains

    pattern = payload
    return [contains(host, pattern) for host in chunk]


def contains_seeded_kernel(payload, chunk):
    """``chunk``: list of ``(host, domains)`` pairs; payload: the pattern.

    The coverage-engine variant of :func:`contains_kernel`: each host
    arrives with precomputed VF2 candidate domains.  Domains are sound
    (they never exclude a vertex of a real embedding) so verdicts are
    identical to the unseeded kernel's.
    """
    from ..isomorphism.matcher import contains

    pattern = payload
    return [
        contains(host, pattern, domains=domains) for host, domains in chunk
    ]


def contains_view_kernel(payload, chunk):
    """``chunk``: ``(graph_id, domains)`` pairs; payload: the view handle.

    The persistent-worker variant of :func:`contains_seeded_kernel`:
    payload is ``(view_id, generation, pattern)`` and hosts are looked
    up in the fork-inherited :mod:`repro.parallel.shared` registry, so
    a fan-out ships only graph IDs + seed domains — never the host
    graphs themselves.  ``domains`` may be None (unseeded verification).
    A worker whose inherited view is missing or at the wrong generation
    raises rather than answering from stale graphs; the pool's
    epoch-stamped refork makes that unreachable in normal operation.
    Verdicts are identical to the host-shipping kernels'.
    """
    from ..isomorphism.matcher import contains
    from .shared import resolve_view

    view_id, generation, pattern = payload
    graphs = resolve_view(view_id, generation).graphs
    return [
        contains(graphs[graph_id], pattern, domains=domains)
        for graph_id, domains in chunk
    ]


def mccs_kernel(payload, chunk):
    """``chunk``: list of graphs; payload: the seed graph.

    Returns the MCCS similarity of each chunk graph to the seed
    (the fine-clustering packing score).
    """
    from ..clustering.mccs import mccs_similarity

    seed = payload
    return [mccs_similarity(seed, graph) for graph in chunk]


def candidate_score_kernel(payload, chunk):
    """``chunk``: candidate graphs; payload: frozen selection context.

    Payload is ``(selected_graphs, csg_hosts, cluster_weights, oracle,
    ged_method)`` — everything :func:`repro.catapult.selection.score_candidate`
    needs.  The oracle is a pickled copy, so its memo fills per worker;
    scores are unaffected (cover sets are deterministic) but the parent
    oracle's ``isomorphism_tests`` counter only reflects parent-side work.
    """
    from ..catapult.selection import score_candidate

    selected_graphs, csg_hosts, cluster_weights, oracle, ged_method = payload
    return [
        score_candidate(
            graph, selected_graphs, csg_hosts, cluster_weights, oracle, ged_method
        )
        for graph in chunk
    ]


def shard_postings_kernel(payload, chunk):
    """``chunk``: list of ``(shard, ((graph_id, graph), ...))`` items.

    Returns one ``(shard, posting_delta, keys_by_graph)`` triple per
    item: the covindex posting-bitset delta and the per-graph invariant
    keys of that shard's member graphs.  Used by the SQLite store to fan
    a large insert batch out per shard; the ordered reduction makes the
    merged deltas identical to the serial loop at any worker count.
    """
    from ..covindex.index import graph_posting_keys

    del payload
    results = []
    for shard, members in chunk:
        posting_delta: dict = {}
        keys_by_graph: dict = {}
        for graph_id, graph in members:
            keys = graph_posting_keys(graph)
            keys_by_graph[graph_id] = sorted(keys)
            bit = 1 << graph_id
            for key in keys:
                posting_delta[key] = posting_delta.get(key, 0) | bit
        results.append((shard, posting_delta, keys_by_graph))
    return results


def pairwise_ged_matrix(
    graphs: list[LabeledGraph],
    method: str = "tight_lower",
    pool=None,
) -> dict[tuple[int, int], tuple[int, str]]:
    """All unordered pairwise GEDs of *graphs* as ``{(i, j): (value, fidelity)}``.

    Keys use index pairs with ``i < j``.  Computed through *pool* (the
    ambient pool by default) when worthwhile, serially otherwise; the
    result is identical either way.
    """
    from .pool import current_pool

    active = pool if pool is not None else current_pool()
    pairs = [
        (i, j)
        for i in range(len(graphs))
        for j in range(i + 1, len(graphs))
    ]
    if not pairs:
        return {}
    items = [(graphs[i], graphs[j]) for i, j in pairs]
    if active.worth_parallelizing(len(items)):
        values = active.map(ged_pairs_kernel, items, payload=method)
    else:
        values = ged_pairs_kernel(method, items)
    return dict(zip(pairs, values))


__all__ = [
    "candidate_score_kernel",
    "contains_kernel",
    "contains_seeded_kernel",
    "contains_view_kernel",
    "ged_pairs_kernel",
    "mccs_kernel",
    "pairwise_ged_matrix",
    "shard_postings_kernel",
]
