"""Deterministic parallel execution of the maintenance kernels.

See :mod:`repro.parallel.pool` for the executor design (chunked fan-out,
ordered reduction, budget propagation into workers, pytest-safe serial
fallback, persistent epoch-stamped workers),
:mod:`repro.parallel.shared` for the fork-inherited host-view registry
that lets kernels receive graph IDs instead of pickled graphs, and
``docs/PERFORMANCE.md`` for the operator guide.
"""

from .kernels import (
    candidate_score_kernel,
    contains_kernel,
    contains_seeded_kernel,
    contains_view_kernel,
    ged_pairs_kernel,
    mccs_kernel,
    pairwise_ged_matrix,
    shard_postings_kernel,
)
from .pool import (
    CHUNKS_PER_WORKER,
    MIN_PARALLEL_ITEMS,
    KernelPool,
    current_pool,
    shared_pool,
    shutdown_shared_pools,
    use_pool,
)
from .shared import (
    HostView,
    get_view,
    publish_view,
    resolve_view,
    retire_view,
    view_epoch,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "HostView",
    "KernelPool",
    "MIN_PARALLEL_ITEMS",
    "candidate_score_kernel",
    "contains_kernel",
    "contains_seeded_kernel",
    "contains_view_kernel",
    "current_pool",
    "ged_pairs_kernel",
    "get_view",
    "mccs_kernel",
    "pairwise_ged_matrix",
    "publish_view",
    "resolve_view",
    "retire_view",
    "shard_postings_kernel",
    "shared_pool",
    "shutdown_shared_pools",
    "use_pool",
    "view_epoch",
]
