"""Deterministic parallel execution of the maintenance kernels.

See :mod:`repro.parallel.pool` for the executor design (chunked fan-out,
ordered reduction, budget propagation into workers, pytest-safe serial
fallback) and ``docs/PERFORMANCE.md`` for the operator guide.
"""

from .kernels import (
    candidate_score_kernel,
    contains_kernel,
    ged_pairs_kernel,
    mccs_kernel,
    pairwise_ged_matrix,
    shard_postings_kernel,
)
from .pool import (
    CHUNKS_PER_WORKER,
    MIN_PARALLEL_ITEMS,
    KernelPool,
    current_pool,
    shared_pool,
    shutdown_shared_pools,
    use_pool,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "KernelPool",
    "MIN_PARALLEL_ITEMS",
    "candidate_score_kernel",
    "contains_kernel",
    "current_pool",
    "ged_pairs_kernel",
    "mccs_kernel",
    "pairwise_ged_matrix",
    "shard_postings_kernel",
    "shared_pool",
    "shutdown_shared_pools",
    "use_pool",
]
