"""A deterministic process pool for the maintenance kernels.

:class:`KernelPool` fans a list of independent work items out to worker
processes in fixed-size chunks and reduces the results *in submission
order*, so the output of :meth:`KernelPool.map` is byte-identical to the
serial loop regardless of worker count or scheduling.  The kernels it
runs (``repro.parallel.kernels``) are pure functions of their inputs —
parallelism never changes a computed value, only wall-clock time.

Design constraints, in order:

* **Determinism** — ordered reduction over deterministic chunking; a
  kernel's result for an item may not depend on its chunk neighbours.
* **Resilience** — the parent's ambient :class:`~repro.resilience.budget.Budget`
  is re-materialised inside each worker task (remaining wall-clock and
  state allowance at fan-out time), so deadlines keep firing under the
  pool.  Worker-side :class:`~repro.exceptions.ResilienceError`\\ s are
  shipped back as plain tuples (the exception classes have keyword-only
  constructors that do not survive pickling) and re-raised in the
  parent.  Worker state spends are *not* charged back to the parent
  budget — each worker polices its own copy of the remaining allowance,
  so a state budget bounds per-worker work, not the fleet total.
* **Safety in tests** — the pool silently degrades to the serial path
  inside pytest (``PYTEST_CURRENT_TEST``), unless constructed with
  ``force=True``.  On platforms without the ``fork`` start method the
  degradation is *not* silent: it bumps ``parallel.fallback`` and emits
  a one-time ``RuntimeWarning``, because losing parallelism there is a
  deployment surprise rather than a test convenience.  Serial and
  parallel paths return identical values, so callers never branch on
  which one ran.

Workers are **persistent**: forked lazily on the first parallel ``map``
and reused across fan-outs, so worker-startup cost is paid once per
configuration, not once per batch.  Fork children inherit module
globals at creation time — that is what lets fault-injection plans
(:mod:`repro.resilience.faults`) keep firing at kernel sites inside
workers, and what lets :mod:`repro.parallel.shared` hand kernels whole
host-graph views without pickling them (tasks carry only graph IDs +
seed domains).  Because children see a frozen copy of the parent,
the pool stamps the :func:`~repro.parallel.shared.view_epoch` it forked
at and transparently restarts its workers when a view has been
republished since (``parallel.worker_restarts``) — once per committed
batch, not per fan-out.

Each task is shipped as one pre-pickled envelope and its size recorded
under ``parallel.bytes_pickled``, making "fan-out no longer re-pickles
the hosts" a measurable, regression-gated property rather than a hope
(see the covix bench figure).

Observability counters incremented inside workers stay in the worker's
registry copy; the parent records fan-out activity under ``parallel.*``
instead.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import pickle
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any

from ..exceptions import BudgetExhausted, DeadlineExceeded, ResilienceError
from ..obs import get_registry
from ..resilience.budget import Budget, current_budget, use_budget
from . import shared

#: Below this many items a fan-out costs more than it saves; call sites
#: consult :meth:`KernelPool.worth_parallelizing` which applies it.
MIN_PARALLEL_ITEMS = 8

#: Default chunking: enough chunks per worker to smooth skew without
#: drowning in inter-process pickling overhead.
CHUNKS_PER_WORKER = 4


def _in_pytest() -> bool:
    return "PYTEST_CURRENT_TEST" in os.environ


def _fork_context():
    """The ``fork`` multiprocessing context, or None where unsupported."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, RuntimeError):  # pragma: no cover - exotic platforms
        pass
    return None


_warned_no_fork = False


def _warn_no_fork_once() -> None:
    global _warned_no_fork
    if _warned_no_fork:
        return
    _warned_no_fork = True
    warnings.warn(
        "the 'fork' start method is unavailable on this platform; "
        "KernelPool degrades to the serial path (identical results, "
        "no parallel speedup)",
        RuntimeWarning,
        stacklevel=3,
    )


def _budget_spec() -> tuple[float | None, int | None] | None:
    """Snapshot the ambient budget's remaining allowance for a worker."""
    budget = current_budget()
    if budget is None:
        return None
    states_left = None
    if budget.max_states is not None:
        states_left = max(0, budget.max_states - budget.states)
    return (budget.remaining_seconds(), states_left)


def _run_chunk(
    kernel: Callable[[Any, list], list],
    payload: Any,
    chunk: list,
    budget_spec: tuple[float | None, int | None] | None,
    degrade: bool,
    caching: bool,
) -> tuple:
    """Worker-side task wrapper: install ambient state, run, ship back.

    Resilience errors are returned as ``(kind, message, site)`` tuples
    because their keyword-only constructors break default exception
    pickling; any other exception propagates through the future as-is.
    """
    from ..cache.stores import set_caching
    from ..resilience.degrade import set_degradation

    set_degradation(degrade)
    set_caching(caching)
    budget = None
    if budget_spec is not None:
        remaining, states_left = budget_spec
        budget = Budget(deadline_seconds=remaining, max_states=states_left)
    try:
        if budget is not None:
            with use_budget(budget):
                return ("ok", kernel(payload, chunk))
        return ("ok", kernel(payload, chunk))
    except DeadlineExceeded as exc:
        return ("deadline", str(exc), exc.site)
    except BudgetExhausted as exc:
        return ("budget", str(exc), exc.site)
    except ResilienceError as exc:
        return ("resilience", str(exc), getattr(exc, "site", ""))


def _run_chunk_envelope(data: bytes) -> tuple:
    """Unpack one pre-pickled task envelope and run it.

    The parent pickles each task exactly once (and counts the bytes
    under ``parallel.bytes_pickled``); the worker sees a single opaque
    blob, so the per-task wire cost is observable at the call site
    instead of hidden inside the executor.
    """
    return _run_chunk(*pickle.loads(data))


class KernelPool:
    """Chunked fan-out / ordered reduction over persistent workers.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` means the serial path.
    chunk_size:
        Items per worker task; default splits the input into
        ``workers × CHUNKS_PER_WORKER`` chunks.
    force:
        Run real worker processes even inside pytest (the parallel test
        suite uses this; everything else should leave it off).
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int | None = None,
        force: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.force = force
        self._executor: ProcessPoolExecutor | None = None
        self._forked_epoch = -1

    # ------------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """True when ``map`` will actually fan out to worker processes."""
        if self.workers <= 1:
            return False
        if not self.force and _in_pytest():
            return False
        return _fork_context() is not None

    def worth_parallelizing(self, num_items: int) -> bool:
        """Call-site gate: parallel, and enough items to amortise it."""
        if not self.is_parallel:
            return False
        return self.force or num_items >= MIN_PARALLEL_ITEMS

    # ------------------------------------------------------------------
    def _chunks(self, items: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(items) / (self.workers * CHUNKS_PER_WORKER)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """The live executor, reforked if a host view was republished.

        Children inherit :mod:`repro.parallel.shared`'s view registry at
        fork time; a publish after that leaves them stale, so the pool
        restarts them — at most once per committed batch, because only
        republishing bumps the epoch.
        """
        if (
            self._executor is not None
            and self._forked_epoch != shared.view_epoch()
        ):
            get_registry().counter("parallel.worker_restarts").add(1)
            self.shutdown()
        if self._executor is None:
            self._forked_epoch = shared.view_epoch()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_fork_context()
            )
            get_registry().gauge("parallel.workers").set(self.workers)
        return self._executor

    # ------------------------------------------------------------------
    def map(
        self,
        kernel: Callable[[Any, list], list],
        items: Sequence,
        payload: Any = None,
    ) -> list:
        """Apply *kernel* to *items* in chunks; ordered, flattened results.

        The kernel contract: ``kernel(payload, chunk) -> list`` with one
        result per chunk item, each result a pure function of
        ``(payload, item)``.  The serial path calls the kernel once over
        all items, so results are identical either way.
        """
        items = list(items)
        if not items:
            return []
        registry = get_registry()
        if not self.is_parallel:
            if self.workers > 1:
                registry.counter("parallel.serial_fallbacks").add(1)
                if _fork_context() is None:
                    registry.counter("parallel.fallback").add(1)
                    _warn_no_fork_once()
            results = list(kernel(payload, items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"kernel {kernel.__name__} returned {len(results)} "
                    f"results for {len(items)} items"
                )
            return results
        budget = current_budget()
        if budget is not None:
            budget.check("parallel.map")
        spec = _budget_spec()
        from ..cache.stores import caching_enabled
        from ..resilience.degrade import degradation_enabled

        degrade = degradation_enabled()
        caching = caching_enabled()
        chunks = self._chunks(items)
        registry.counter("parallel.fanouts").add(1)
        registry.counter("parallel.tasks").add(len(chunks))
        executor = self._ensure_executor()
        envelopes = [
            pickle.dumps(
                (kernel, payload, chunk, spec, degrade, caching),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            for chunk in chunks
        ]
        registry.counter("parallel.bytes_pickled").add(
            sum(len(envelope) for envelope in envelopes)
        )
        futures = [
            executor.submit(_run_chunk_envelope, envelope)
            for envelope in envelopes
        ]
        results: list = []
        failure: tuple | None = None
        for future in futures:
            outcome = future.result()
            if outcome[0] == "ok":
                if failure is None:
                    results.extend(outcome[1])
            elif failure is None:
                failure = outcome
        if failure is not None:
            kind, message, site = failure
            if kind == "deadline":
                raise DeadlineExceeded(message, site=site)
            if kind == "budget":
                raise BudgetExhausted(message, site=site)
            raise ResilienceError(message)
        if len(results) != len(items):
            raise RuntimeError(
                f"kernel {kernel.__name__} returned {len(results)} "
                f"results for {len(items)} items"
            )
        return results

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "KernelPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelPool workers={self.workers} parallel={self.is_parallel}>"


# ----------------------------------------------------------------------
# ambient pool + shared registry
# ----------------------------------------------------------------------
_SERIAL_POOL = KernelPool(workers=1)

_current_pool: ContextVar[KernelPool | None] = ContextVar(
    "repro_kernel_pool", default=None
)


def current_pool() -> KernelPool:
    """The ambient pool installed by :func:`use_pool` (serial default)."""
    pool = _current_pool.get()
    return pool if pool is not None else _SERIAL_POOL


@contextmanager
def use_pool(pool: KernelPool | None):
    """Install *pool* as the ambient pool for the dynamic extent.

    ``use_pool(None)`` restores the serial default for the block.
    """
    token = _current_pool.set(pool)
    try:
        yield pool if pool is not None else _SERIAL_POOL
    finally:
        _current_pool.reset(token)


_shared_pools: dict[int, KernelPool] = {}


def shared_pool(workers: int) -> KernelPool:
    """A process-wide pool per worker count, reused across calls.

    ``ExecutionConfig.apply`` goes through here so repeated maintenance
    rounds with the same configuration share one set of forked workers.
    """
    if workers <= 1:
        return _SERIAL_POOL
    pool = _shared_pools.get(workers)
    if pool is None:
        pool = KernelPool(workers=workers)
        _shared_pools[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Shut down every pool created by :func:`shared_pool`."""
    for pool in _shared_pools.values():
        pool.shutdown()
    _shared_pools.clear()


atexit.register(shutdown_shared_pools)


__all__ = [
    "CHUNKS_PER_WORKER",
    "KernelPool",
    "MIN_PARALLEL_ITEMS",
    "current_pool",
    "shared_pool",
    "shutdown_shared_pools",
    "use_pool",
]
