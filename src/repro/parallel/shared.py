"""Fork-inherited read-only host views for persistent kernel workers.

The original :class:`~repro.parallel.pool.KernelPool` re-pickled every
host graph on every fan-out — the dominant cost of parallel coverage
rounds once graphs outnumber workers.  This module gives fan-outs a
zero-copy alternative on fork platforms:

1. The parent process *publishes* a view — a dict of host graphs —
   into this module's process-global registry (:func:`publish_view`).
2. Forked workers inherit the registry (copy-on-write pages, no
   pickling); a kernel resolves its graphs by ``(view_id, generation)``
   with :func:`resolve_view` and receives only graph IDs + seed
   domains per task.
3. After a committed batch mutates the view, the owner republishes it:
   the view's **generation** counter advances and the module-wide
   **epoch** advances with it.  The pool compares the epoch it forked
   at against the current one before each fan-out and restarts its
   workers when stale, so children never compute against a superseded
   view; ``resolve_view`` double-checks the generation inside the
   worker and fails loudly rather than answer from stale state.

Views are process-local state, deliberately excluded from pickling
(publishers drop their tokens in ``__getstate__`` and republish
lazily), so deep-copied owners — e.g. the transactional snapshot
backups taken by ``Midas.apply_update`` — get fresh views instead of
aliasing a live one.

Metrics: ``parallel.view_publishes`` counts publishes,
``parallel.views`` gauges the live registry size (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..obs import get_registry


@dataclass(frozen=True)
class HostView:
    """One published read-only view of host graphs."""

    view_id: int
    generation: int
    graphs: Mapping[int, object] = field(repr=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HostView id={self.view_id} gen={self.generation} "
            f"|D|={len(self.graphs)}>"
        )


_views: dict[int, HostView] = {}
_next_view_id = 0
_next_generation = 0
_epoch = 0


def publish_view(
    graphs: Mapping[int, object], view_id: int | None = None
) -> HostView:
    """Publish (or republish) *graphs* as a fork-inherited view.

    Passing an existing *view_id* replaces that view under a fresh
    generation — how an owner invalidates workers after a committed
    batch.  Every publish bumps the module epoch, which tells pools
    their forked children predate the current state.
    """
    global _next_view_id, _next_generation, _epoch
    if view_id is None:
        view_id = _next_view_id
        _next_view_id += 1
    _next_generation += 1
    _epoch += 1
    view = HostView(
        view_id=view_id, generation=_next_generation, graphs=graphs
    )
    _views[view_id] = view
    registry = get_registry()
    registry.counter("parallel.view_publishes").add(1)
    registry.gauge("parallel.views").set(len(_views))
    return view


def retire_view(view_id: int) -> None:
    """Drop a view from the registry (idempotent; no epoch bump).

    Retiring does not restart workers: children holding the old pages
    just never get tasks for it again, and the pages are reclaimed on
    the next epoch-triggered refork.
    """
    if _views.pop(view_id, None) is not None:
        get_registry().gauge("parallel.views").set(len(_views))


def get_view(view_id: int) -> HostView | None:
    """The currently registered view for *view_id*, if any (parent side)."""
    return _views.get(view_id)


def view_epoch() -> int:
    """Monotone counter of publishes; pools fork-stamp against this."""
    return _epoch


def resolve_view(view_id: int, generation: int) -> HostView:
    """Worker-side lookup of a view, validated against *generation*.

    Raises ``RuntimeError`` when the worker's inherited registry does
    not hold exactly the requested generation — the belt-and-braces
    guard under the pool's epoch-based restart: a stale worker must
    fail loudly, never answer from superseded graphs.
    """
    view = _views.get(view_id)
    if view is None:
        raise RuntimeError(
            f"host view {view_id} is not present in this worker "
            "(forked before it was published?)"
        )
    if view.generation != generation:
        raise RuntimeError(
            f"host view {view_id} is at generation {view.generation}, "
            f"task expects {generation} (stale worker)"
        )
    return view


__all__ = [
    "HostView",
    "get_view",
    "publish_view",
    "resolve_view",
    "retire_view",
    "view_epoch",
]
