"""Frequent connected subgraph mining (the road CATAPULT chose not to take).

CATAPULT motivates its weighted-random-walk candidate generation by the
cost of the alternative: mining frequent *subgraphs* (not just trees)
from the database and selecting patterns among them.  This module
implements that alternative — a pattern-growth frequent connected
subgraph miner in the style of gSpan, with canonical-certificate
deduplication and exact transactional covers — so the design choice can
be measured instead of assumed (benchmark A-ABL4).

Growth differs from tree mining in one step: besides attaching a pendant
vertex, an embedding may also close a cycle by adding an edge between
two already-matched vertices, so cyclic patterns (rings, the chemical
bread-and-butter) are reachable.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph, normalize_edge_label
from ..isomorphism.matcher import find_embeddings

DEFAULT_MAX_EDGES = 5
DEFAULT_EMBEDDING_CAP = 256


@dataclass
class MinedSubgraph:
    """A frequent connected subgraph with its exact cover."""

    graph: LabeledGraph
    key: tuple
    cover: set[int] = field(default_factory=set)

    @property
    def support_count(self) -> int:
        return len(self.cover)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MinedSubgraph |E|={self.graph.num_edges} "
            f"sup={len(self.cover)}>"
        )


class SubgraphMiner:
    """Level-wise frequent connected subgraph miner."""

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        min_support: float,
        max_edges: int = DEFAULT_MAX_EDGES,
        embedding_cap: int = DEFAULT_EMBEDDING_CAP,
    ) -> None:
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        if max_edges < 1:
            raise ValueError("max_edges must be >= 1")
        self._graphs = dict(graphs)
        self.min_support = min_support
        self.max_edges = max_edges
        self.embedding_cap = embedding_cap

    def _min_count(self) -> int:
        count = len(self._graphs) * self.min_support
        rounded = int(count)
        return rounded if rounded == count else rounded + 1

    # ------------------------------------------------------------------
    def _seeds(self) -> dict[tuple, MinedSubgraph]:
        seeds: dict[tuple, MinedSubgraph] = {}
        for graph_id, graph in self._graphs.items():
            for u, v in graph.edges():
                la, lb = normalize_edge_label(graph.label(u), graph.label(v))
                pattern = LabeledGraph()
                pattern.add_vertex(0, la)
                pattern.add_vertex(1, lb)
                pattern.add_edge(0, 1)
                key = canonical_certificate(pattern)
                entry = seeds.get(key)
                if entry is None:
                    entry = MinedSubgraph(graph=pattern, key=key)
                    seeds[key] = entry
                entry.cover.add(graph_id)
        return seeds

    def _grow(self, parent: MinedSubgraph) -> dict[tuple, MinedSubgraph]:
        """All one-edge extensions: pendant vertices AND cycle closures."""
        children: dict[tuple, MinedSubgraph] = {}
        pattern = parent.graph
        new_vertex = pattern.num_vertices
        for graph_id in parent.cover:
            host = self._graphs[graph_id]
            embeddings = find_embeddings(
                host, pattern, limit=self.embedding_cap
            )
            local_seen: set[tuple] = set()
            for embedding in embeddings:
                used = set(embedding.values())
                reverse = {h: p for p, h in embedding.items()}
                for pattern_vertex, host_vertex in embedding.items():
                    for neighbor in host.neighbors(host_vertex):
                        if neighbor in used:
                            # Cycle closure between matched vertices.
                            other = reverse[neighbor]
                            if pattern.has_edge(pattern_vertex, other):
                                continue
                            grown = pattern.copy()
                            grown.add_edge(pattern_vertex, other)
                        else:
                            grown = pattern.copy()
                            grown.add_vertex(
                                new_vertex, host.label(neighbor)
                            )
                            grown.add_edge(pattern_vertex, new_vertex)
                        key = canonical_certificate(grown)
                        entry = children.get(key)
                        if entry is None:
                            entry = MinedSubgraph(
                                graph=grown.relabeled(), key=key
                            )
                            children[key] = entry
                        if key not in local_seen:
                            entry.cover.add(graph_id)
                            local_seen.add(key)
        return children

    # ------------------------------------------------------------------
    def mine(self) -> list[MinedSubgraph]:
        """All frequent connected subgraphs up to ``max_edges``."""
        minimum = self._min_count()
        frequent: dict[tuple, MinedSubgraph] = {}
        level = {
            key: entry
            for key, entry in self._seeds().items()
            if entry.support_count >= minimum
        }
        while level:
            next_candidates: dict[tuple, MinedSubgraph] = {}
            for key, entry in level.items():
                frequent[key] = entry
                if entry.num_edges >= self.max_edges:
                    continue
                for child_key, child in self._grow(entry).items():
                    existing = next_candidates.get(child_key)
                    if existing is None:
                        next_candidates[child_key] = child
                    else:
                        existing.cover |= child.cover
            level = {
                key: entry
                for key, entry in next_candidates.items()
                if entry.support_count >= minimum
                and key not in frequent
            }
        return sorted(
            frequent.values(), key=lambda s: (s.num_edges, repr(s.key))
        )


def fsm_candidates(
    graphs: Mapping[int, LabeledGraph],
    min_support: float,
    size_range: tuple[int, int],
    max_candidates: int | None = None,
) -> list[LabeledGraph]:
    """Candidate patterns from frequent subgraph mining.

    The FSM-based alternative to walk-based FCP generation: mine all
    frequent connected subgraphs in the budgeted size window and return
    them ranked by support (capped at *max_candidates*).
    """
    lo, hi = size_range
    miner = SubgraphMiner(graphs, min_support, max_edges=hi)
    mined = [s for s in miner.mine() if lo <= s.num_edges <= hi]
    mined.sort(key=lambda s: (-s.support_count, s.num_edges, repr(s.key)))
    if max_candidates is not None:
        mined = mined[:max_candidates]
    return [s.graph for s in mined]
