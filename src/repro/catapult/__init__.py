"""The CATAPULT / CATAPULT++ canned-pattern selectors."""

from .fsm import MinedSubgraph, SubgraphMiner, fsm_candidates
from .candidate import (
    CandidateGenerator,
    CandidatePattern,
    EdgeGate,
    EdgePriority,
    grow_candidate,
)
from .pipeline import Catapult, CatapultConfig, CatapultPlusPlus, CatapultResult
from .random_walk import (
    RandomWalker,
    csg_edge_weights,
    decay_weights,
    edge_label_document_frequency,
)
from .selection import GreedySelector, cluster_coverage

__all__ = [
    "CandidateGenerator",
    "CandidatePattern",
    "Catapult",
    "CatapultConfig",
    "CatapultPlusPlus",
    "CatapultResult",
    "EdgeGate",
    "EdgePriority",
    "GreedySelector",
    "MinedSubgraph",
    "SubgraphMiner",
    "fsm_candidates",
    "RandomWalker",
    "cluster_coverage",
    "csg_edge_weights",
    "decay_weights",
    "edge_label_document_frequency",
    "grow_candidate",
]
