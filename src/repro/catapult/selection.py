"""Greedy canned-pattern selection (the CATAPULT selector).

CATAPULT iterates: score every final candidate pattern with
``s_p = ccov × lcov × div/cog`` (Definition 2.1), add the best to the
pattern set, decay the weights of its CSG edges (multiplicative weights
update) and regenerate candidates, until γ patterns are selected or no
admissible candidate remains (paper, Section 2.3).

The selector honours the per-size quota of the pattern budget and rejects
candidates isomorphic to already-selected patterns.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..csg.summary import SummaryGraph
from ..exceptions import ResilienceError
from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.matcher import contains
from ..parallel.kernels import candidate_score_kernel
from ..parallel.pool import current_pool
from ..resilience.budget import current_budget
from ..resilience.degrade import anytime_degradation, degradation_enabled
from ..patterns.budget import PatternBudget
from ..patterns.metrics import CoverageOracle, catapult_pattern_score
from ..patterns.pattern import PatternSet
from .candidate import CandidateGenerator, CandidatePattern
from .random_walk import decay_weights

MWU_DECAY = 0.5


def score_candidate(
    graph: LabeledGraph,
    selected_graphs: list[LabeledGraph],
    csg_hosts: Mapping[int, LabeledGraph],
    cluster_weights: Mapping[int, float],
    oracle: CoverageOracle,
    ged_method: str,
) -> float:
    """The CATAPULT score of one candidate against a frozen context.

    A pure module-level function so the scoring loop can fan out to
    worker processes (:func:`repro.parallel.kernels.candidate_score_kernel`);
    :meth:`GreedySelector._score` delegates here on the serial path.
    """
    ccov = 0.0
    for cluster_id, host in csg_hosts.items():
        weight = cluster_weights.get(cluster_id, 0.0)
        if weight > 0.0 and contains(host, graph):
            ccov += weight
    return catapult_pattern_score(
        graph, selected_graphs, ccov, oracle, ged_method=ged_method
    )


def cluster_coverage(
    pattern: LabeledGraph,
    summaries: Mapping[int, SummaryGraph],
    cluster_weights: Mapping[int, float],
) -> float:
    """``ccov(p) = Σ_i cw_i · I_i`` with I_i = CSG of C_i contains p."""
    total = 0.0
    for cluster_id, summary in summaries.items():
        weight = cluster_weights.get(cluster_id, 0.0)
        if weight <= 0.0:
            continue
        if contains(summary.as_labeled_graph(), pattern):
            total += weight
    return total


class GreedySelector:
    """The CATAPULT selection loop over pre-built CSGs."""

    def __init__(
        self,
        generator: CandidateGenerator,
        summaries: Mapping[int, SummaryGraph],
        cluster_weights: Mapping[int, float],
        oracle: CoverageOracle,
        budget: PatternBudget,
        ged_method: str = "lower",
    ) -> None:
        self.generator = generator
        self.summaries = dict(summaries)
        self.cluster_weights = dict(cluster_weights)
        self.oracle = oracle
        self.budget = budget
        self.ged_method = ged_method
        # Set by select(): True when the loop stopped early on a budget.
        self.degraded = False
        self._weights = {
            cluster_id: generator.weights_for(summary)
            for cluster_id, summary in self.summaries.items()
        }
        # Materialised CSG hosts, rebuilt once instead of per score call.
        self._csg_hosts = {
            cluster_id: summary.as_labeled_graph()
            for cluster_id, summary in self.summaries.items()
        }

    # ------------------------------------------------------------------
    def _admissible(
        self,
        candidate: CandidatePattern,
        selected: PatternSet,
        per_size: dict[int, int],
    ) -> bool:
        size = candidate.num_edges
        if not self.budget.admits_size(size):
            return False
        if per_size.get(size, 0) >= self.budget.per_size_cap:
            return False
        if selected.has_isomorphic(candidate.graph):
            return False
        return True

    def _score(
        self, candidate: CandidatePattern, selected: PatternSet
    ) -> float:
        return score_candidate(
            candidate.graph,
            [p.graph for p in selected],
            self._csg_hosts,
            self.cluster_weights,
            self.oracle,
            self.ged_method,
        )

    def _score_many(
        self, candidates: list[CandidatePattern], selected: PatternSet
    ) -> list[float]:
        """Scores for *candidates*, fanned out when a pool is ambient.

        Parallel and serial paths call the same pure
        :func:`score_candidate`, so the scores are identical; workers
        receive a pickled copy of the oracle, so only parent-side VF2
        tests show up in ``oracle.isomorphism_tests``.
        """
        pool = current_pool()
        if not pool.worth_parallelizing(len(candidates)):
            return [self._score(candidate, selected) for candidate in candidates]
        payload = (
            [p.graph for p in selected],
            self._csg_hosts,
            self.cluster_weights,
            self.oracle,
            self.ged_method,
        )
        return pool.map(
            candidate_score_kernel,
            [candidate.graph for candidate in candidates],
            payload=payload,
        )

    # ------------------------------------------------------------------
    def select(self, max_rounds: int | None = None) -> PatternSet:
        """Run the greedy loop and return the selected pattern set.

        Selection is *anytime*: greedy rounds are independent, so if the
        ambient budget expires mid-loop the patterns selected so far are
        returned (a smaller but internally consistent pattern set) and
        :attr:`degraded` is set.
        """
        self.degraded = False
        ambient = current_budget()
        selected = PatternSet()
        per_size: dict[int, int] = {}
        rounds = 0
        stale_rounds = 0
        limit = max_rounds if max_rounds is not None else self.budget.gamma * 4
        try:
            while len(selected) < self.budget.gamma and rounds < limit:
                if ambient is not None:
                    ambient.check("catapult.select")
                rounds += 1
                candidates = self.generator.generate(
                    self.summaries, self._weights
                )
                admissible = [
                    candidate
                    for candidate in candidates
                    if self._admissible(candidate, selected, per_size)
                ]
                scores = self._score_many(admissible, selected)
                scored = [
                    (score, candidate)
                    for score, candidate in zip(scores, admissible)
                    if score > 0.0
                ]
                if not scored:
                    stale_rounds += 1
                    if stale_rounds >= 2:
                        break
                    continue
                scored.sort(
                    key=lambda item: (-item[0], item[1].num_edges)
                )
                best_score, best = scored[0]
                selected.add(best.graph, provenance="catapult")
                per_size[best.num_edges] = per_size.get(best.num_edges, 0) + 1
                stale_rounds = 0
                # Multiplicative weights update on the winning CSG's edges.
                cluster_weights = self._weights.get(best.cluster_id)
                if cluster_weights is not None:
                    decay_weights(
                        cluster_weights, set(best.csg_edges), MWU_DECAY
                    )
        except ResilienceError:
            if not degradation_enabled():
                raise
            self.degraded = True
            anytime_degradation("catapult.select")
        return selected
