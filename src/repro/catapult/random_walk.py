"""Weighted random walks over cluster summary graphs.

CATAPULT extracts candidate patterns from each CSG with weighted random
walks (paper, Section 2.3): each summary edge gets weight
``w_e = lcov(e, D) × lcov(e, C)`` — the product of the edge label's
coverage in the whole database and in the cluster — and walk traversal
counts then identify the structurally important edges.

The walker is seeded and purely local: vertices are entered with
probability proportional to incident edge weight, and successive steps
pick incident edges with probability proportional to (possibly
multiplicatively decayed) weight.
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from ..csg.summary import SummaryGraph
from ..graph.labeled_graph import EdgeLabel, LabeledGraph, edge_key

DEFAULT_NUM_WALKS = 100
DEFAULT_WALK_LENGTH = 12


def edge_label_document_frequency(
    graphs: Mapping[int, LabeledGraph]
) -> dict[EdgeLabel, int]:
    """For each edge label, the number of graphs containing it."""
    frequency: dict[EdgeLabel, int] = {}
    for graph in graphs.values():
        for label in graph.edge_label_set():
            frequency[label] = frequency.get(label, 0) + 1
    return frequency


def csg_edge_weights(
    summary: SummaryGraph,
    database_frequency: Mapping[EdgeLabel, int],
    database_size: int,
) -> dict[tuple[int, int], float]:
    """``w_e = lcov(e, D) × lcov(e, C)`` for every summary edge.

    The cluster-level coverage comes from the summary's edge → graph-ID
    annotations: the set of member graphs containing an edge with the
    same label (union over the summary edges carrying the label).
    """
    members = summary.member_ids
    cluster_size = len(members)
    if database_size <= 0 or cluster_size == 0:
        return {edge: 0.0 for edge in summary.edges()}
    by_label: dict[EdgeLabel, set[int]] = {}
    for u, v in summary.edges():
        label = summary.edge_label(u, v)
        by_label.setdefault(label, set()).update(
            summary.edge_graph_ids(u, v)
        )
    weights: dict[tuple[int, int], float] = {}
    for u, v in summary.edges():
        label = summary.edge_label(u, v)
        lcov_database = database_frequency.get(label, 0) / database_size
        lcov_cluster = len(by_label[label]) / cluster_size
        weights[edge_key(u, v)] = lcov_database * lcov_cluster
    return weights


class RandomWalker:
    """Seeded weighted random walks collecting edge traversal counts."""

    def __init__(
        self,
        summary: SummaryGraph,
        weights: Mapping[tuple[int, int], float],
        rng: random.Random,
    ) -> None:
        self.summary = summary
        self.weights = dict(weights)
        self._rng = rng

    def _entry_distribution(self) -> tuple[list[int], list[float]]:
        vertices = self.summary.vertices()
        scores = []
        for vertex in vertices:
            incident = sum(
                self.weights.get(edge_key(vertex, n), 0.0)
                for n in self.summary.neighbors(vertex)
            )
            scores.append(incident)
        total = sum(scores)
        if total <= 0:
            scores = [1.0] * len(vertices)
        return vertices, scores

    def traversal_counts(
        self,
        num_walks: int = DEFAULT_NUM_WALKS,
        walk_length: int = DEFAULT_WALK_LENGTH,
    ) -> dict[tuple[int, int], int]:
        """Edge → number of traversals over *num_walks* walks."""
        counts: dict[tuple[int, int], int] = dict.fromkeys(
            self.summary.edges(), 0
        )
        if self.summary.num_edges == 0:
            return counts
        vertices, entry_weights = self._entry_distribution()
        for _ in range(num_walks):
            current = self._rng.choices(vertices, weights=entry_weights)[0]
            for _ in range(walk_length):
                neighbors = sorted(self.summary.neighbors(current))
                if not neighbors:
                    break
                step_weights = [
                    self.weights.get(edge_key(current, n), 0.0)
                    for n in neighbors
                ]
                if sum(step_weights) <= 0:
                    step_weights = [1.0] * len(neighbors)
                nxt = self._rng.choices(neighbors, weights=step_weights)[0]
                counts[edge_key(current, nxt)] += 1
                current = nxt
        return counts


def decay_weights(
    weights: dict[tuple[int, int], float],
    selected_edges: set[tuple[int, int]],
    decay: float = 0.5,
) -> None:
    """Multiplicative-weights update after a pattern is selected.

    Edges of the selected pattern lose ``decay`` of their weight so later
    iterations explore other regions (paper, Section 2.3, citing Arora
    et al.).  Mutates *weights* in place.
    """
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must be in (0, 1]")
    for edge in selected_edges:
        if edge in weights:
            weights[edge] *= 1.0 - decay
