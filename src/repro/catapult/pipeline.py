"""End-to-end CATAPULT and CATAPULT++ pipelines.

CATAPULT (paper, Section 2.3): cluster the database on frequent-subtree
feature vectors, summarise each cluster into a CSG, then greedily select
canned patterns from the CSGs by weighted random walks.

CATAPULT++ (Section 3.3) is the scaffolding variant MIDAS builds on:
frequent **closed** trees replace frequent subtrees as clustering
features, and the FCT-/IFE-indices are constructed so that downstream
coverage computations are prefiltered.  Running either pipeline from
scratch is the "maintenance-from-scratch" baseline of the experiments.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..clustering.maintenance import DEFAULT_MAX_CLUSTER_SIZE, ClusterSet
from ..csg.maintenance import CSGSet
from ..execution import ExecutionConfig
from ..graph.database import GraphDatabase
from ..index.maintenance import IndexPair
from ..obs import capture, get_registry, span
from ..patterns.budget import PatternBudget
from ..patterns.metrics import CoverageOracle
from ..patterns.pattern import PatternSet
from ..resilience.budget import Budget, use_budget
from ..trees.features import FeatureSpace
from ..trees.maintenance import FCTSet
from ..trees.mining import DEFAULT_MAX_EDGES, TreeMiner
from ..utils.sampling import LazySampler
from ..utils.timing import Stopwatch
from .candidate import CandidateGenerator
from .selection import GreedySelector


@dataclass(kw_only=True)
class CatapultConfig:
    """Configuration shared by CATAPULT, CATAPULT++ and MIDAS.

    Keyword-only since the ``repro.api`` redesign: positional
    construction was never used in-tree and keyword-only fields let the
    config hierarchy grow without positional-order hazards.  The shared
    :class:`~repro.execution.ExecutionConfig` carries the *how* (workers,
    caching, deadline, degradation) next to the algorithmic *what*.
    """

    budget: PatternBudget = field(default_factory=PatternBudget)
    sup_min: float = 0.5
    feature_max_edges: int = DEFAULT_MAX_EDGES
    num_clusters: int = 8
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE
    sample_cap: int = 400
    num_walks: int = 100
    walk_length: int = 12
    seed: int = 0
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.sup_min <= 1.0:
            raise ValueError("sup_min must be in (0, 1]")
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        if self.sample_cap < 1:
            raise ValueError("sample_cap must be positive")


@dataclass
class CatapultResult:
    """Everything a from-scratch run produces (MIDAS reuses all of it)."""

    patterns: PatternSet
    clusters: ClusterSet
    csgs: CSGSet
    fct_set: FCTSet
    feature_space: FeatureSpace
    sampler: LazySampler
    oracle: CoverageOracle
    index_pair: IndexPair | None
    stopwatch: Stopwatch

    @property
    def selection_seconds(self) -> float:
        return self.stopwatch.get("selection")

    @property
    def total_seconds(self) -> float:
        return self.stopwatch.total()


class Catapult:
    """The baseline selector (frequent subtrees, no indices)."""

    name = "catapult"
    use_closed_features = False
    build_indices = False

    def __init__(self, config: CatapultConfig | None = None) -> None:
        self.config = config or CatapultConfig()

    # ------------------------------------------------------------------
    def _feature_list(self, fct_set: FCTSet):
        if self.use_closed_features:
            features = fct_set.fcts()
        else:
            features = fct_set.frequent()
        # Clustering needs at least one dimension to be meaningful.
        return features if features else fct_set.pool()

    def run(
        self, database: GraphDatabase, budget: Budget | None = None
    ) -> CatapultResult:
        """Select a canned pattern set for *database* from scratch.

        Runs under ``config.execution`` (workers, caching, deadline,
        degradation).  When a budget is active the expensive phases
        degrade gracefully instead of overrunning: mining and selection
        are anytime (partial results), and embedding counts in the
        indices fall back to capped counts.  The run still returns a
        complete, internally consistent :class:`CatapultResult`.

        The *budget* parameter is deprecated: pass
        ``ExecutionConfig(deadline_ms=...)`` on the config (or use
        ``repro.api.select``) instead.  An explicit budget still wins
        over the config's deadline for backward compatibility.
        """
        if budget is not None:
            warnings.warn(
                "Catapult.run(budget=...) is deprecated; set "
                "ExecutionConfig(deadline_ms=...) on the config or use "
                "repro.api.select(..., config=...)",
                DeprecationWarning,
                stacklevel=2,
            )
        config = self.config
        graphs = dict(database.items())
        get_registry().counter("catapult.runs").add(1)
        execution = getattr(config, "execution", None) or ExecutionConfig()
        with execution.apply():
            with use_budget(budget) if budget is not None else nullcontext():
                return self._run(database, graphs, config)

    def _run(self, database, graphs, config) -> CatapultResult:
        with capture("catapult.run") as run_span:
            with span("mining"):
                fct_set = FCTSet(
                    graphs, config.sup_min, config.feature_max_edges
                )
            features = self._feature_list(fct_set)
            feature_space = FeatureSpace(features)
            with span("clustering"):
                clusters = ClusterSet.build(
                    graphs,
                    feature_space,
                    config.num_clusters,
                    seed=config.seed,
                    max_cluster_size=config.max_cluster_size,
                )
            with span("csg"):
                csgs = CSGSet.build(clusters, graphs)
            index_pair: IndexPair | None = None
            if self.build_indices:
                with span("indexing"):
                    index_pair = IndexPair.build(fct_set, graphs)
            sampler = LazySampler(
                database.ids(), max_size=config.sample_cap, seed=config.seed
            )
            sample_graphs = {gid: graphs[gid] for gid in sampler.sample_ids}
            oracle = CoverageOracle(sample_graphs, index_pair=index_pair)
            with span("selection"):
                generator = CandidateGenerator(
                    graphs,
                    config.budget,
                    seed=config.seed,
                    num_walks=config.num_walks,
                    walk_length=config.walk_length,
                )
                selector = GreedySelector(
                    generator,
                    csgs.summaries(),
                    clusters.cluster_weights(),
                    oracle,
                    config.budget,
                    ged_method="lower" if not self.use_closed_features else "tight_lower",
                )
                patterns = selector.select()
            if index_pair is not None:
                index_pair.sync_patterns(patterns.graphs())
        return CatapultResult(
            patterns=patterns,
            clusters=clusters,
            csgs=csgs,
            fct_set=fct_set,
            feature_space=feature_space,
            sampler=sampler,
            oracle=oracle,
            index_pair=index_pair,
            stopwatch=Stopwatch.from_span(run_span),
        )


class CatapultPlusPlus(Catapult):
    """CATAPULT with FCT features and FCT/IFE indices (Section 3.3)."""

    name = "catapult++"
    use_closed_features = True
    build_indices = True
