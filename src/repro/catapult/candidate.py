"""Candidate pattern generation from cluster summary graphs.

For each pattern size in the budget, CATAPULT proposes *potential
candidate patterns* (PCP) from walk statistics and derives one *final
candidate pattern* (FCP) per (CSG, size): a connected subgraph of that
size built from the most frequently traversed edges (paper, Sections 2.3
and 5.2, Figure 6).

The generator supports MIDAS's coverage-based early termination through
an ``edge_gate`` callback: before an edge is appended to the partially
constructed candidate, the gate may veto it (Equation 2), aborting the
growth — exactly the pruning of Section 5.2, kept decoupled so CATAPULT
runs without it.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from ..csg.summary import SummaryGraph
from ..graph.labeled_graph import EdgeLabel, LabeledGraph, edge_key
from ..patterns.budget import PatternBudget
from .random_walk import (
    DEFAULT_NUM_WALKS,
    DEFAULT_WALK_LENGTH,
    RandomWalker,
    csg_edge_weights,
    edge_label_document_frequency,
)

#: Gate deciding whether a CSG edge may extend the growing candidate.
#: Receives the edge's label and must return True to admit it.
EdgeGate = Callable[[EdgeLabel], bool]

#: Optional guidance signal in [0, 1]: how much an edge label should be
#: favoured when seeding and growing candidates (Section 5.2's "guide the
#: generation towards promising candidates").  MIDAS supplies the
#: uncovered-specificity of the edge; None means unbiased walks.
EdgePriority = Callable[[EdgeLabel], float]

#: Floor keeping zero-priority edges usable (a promising candidate still
#: needs common edges to be connected).
PRIORITY_FLOOR = 0.05


def _biased_count(
    count: int,
    label: EdgeLabel,
    edge_priority: EdgePriority | None,
) -> float:
    if edge_priority is None:
        return float(count)
    return count * (PRIORITY_FLOOR + edge_priority(label))


@dataclass
class CandidatePattern:
    """A final candidate pattern (FCP) proposed for selection."""

    graph: LabeledGraph
    cluster_id: int
    traversal_score: int
    csg_edges: frozenset[tuple[int, int]]

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CandidatePattern |E|={self.num_edges} "
            f"cluster={self.cluster_id} walks={self.traversal_score}>"
        )


def _extract_pattern(
    summary: SummaryGraph, edges: list[tuple[int, int]]
) -> LabeledGraph:
    """Materialise CSG edges as a standalone pattern graph."""
    pattern = LabeledGraph()
    mapping: dict[int, int] = {}
    for u, v in edges:
        for vertex in (u, v):
            if vertex not in mapping:
                mapping[vertex] = len(mapping)
                pattern.add_vertex(mapping[vertex], summary.label(vertex))
        pattern.add_edge(mapping[u], mapping[v])
    return pattern


def grow_candidate(
    summary: SummaryGraph,
    counts: Mapping[tuple[int, int], int],
    seed_edge: tuple[int, int],
    target_size: int,
    edge_gate: EdgeGate | None = None,
    edge_priority: EdgePriority | None = None,
) -> tuple[list[tuple[int, int]], int] | None:
    """Grow one candidate from *seed_edge* to *target_size* edges.

    At each step the most-traversed CSG edge adjacent to the partial
    candidate is appended (traversal counts biased by *edge_priority*
    when given); *edge_gate* may veto an edge, terminating the growth
    early (Section 5.2).  Returns the CSG edge list and the total
    traversal count, or None when the growth was pruned/stuck before
    reaching the target size.
    """
    if edge_gate is not None and not edge_gate(summary.edge_label(*seed_edge)):
        return None
    chosen = [seed_edge]
    chosen_set = {edge_key(*seed_edge)}
    vertices = {seed_edge[0], seed_edge[1]}
    total = counts.get(edge_key(*seed_edge), 0)
    while len(chosen) < target_size:
        frontier: list[tuple[float, tuple[int, int]]] = []
        for vertex in vertices:
            for neighbor in summary.neighbors(vertex):
                key = edge_key(vertex, neighbor)
                if key in chosen_set:
                    continue
                score = _biased_count(
                    counts.get(key, 0),
                    summary.edge_label(*key),
                    edge_priority,
                )
                frontier.append((score, key))
        if not frontier:
            return None
        frontier.sort(key=lambda item: (-item[0], item[1]))
        appended = False
        for _, key in frontier:
            if edge_gate is not None and not edge_gate(
                summary.edge_label(*key)
            ):
                # Equation 2 fired: terminate this candidate entirely.
                return None
            chosen.append(key)
            chosen_set.add(key)
            vertices.update(key)
            total += counts.get(key, 0)
            appended = True
            break
        if not appended:
            return None
    return chosen, total


class CandidateGenerator:
    """FCP generation across the CSGs of (evolved) clusters."""

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        budget: PatternBudget,
        seed: int = 0,
        num_walks: int = DEFAULT_NUM_WALKS,
        walk_length: int = DEFAULT_WALK_LENGTH,
        seeds_per_size: int = 4,
        fcps_per_size: int = 2,
    ) -> None:
        self._graphs = dict(graphs)
        self.budget = budget
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.seeds_per_size = seeds_per_size
        self.fcps_per_size = fcps_per_size
        self._rng = random.Random(seed)
        self._db_frequency = edge_label_document_frequency(self._graphs)

    def weights_for(
        self, summary: SummaryGraph
    ) -> dict[tuple[int, int], float]:
        return csg_edge_weights(
            summary, self._db_frequency, len(self._graphs)
        )

    def generate_for_summary(
        self,
        summary: SummaryGraph,
        weights: Mapping[tuple[int, int], float] | None = None,
        edge_gate: EdgeGate | None = None,
        edge_priority: EdgePriority | None = None,
    ) -> list[CandidatePattern]:
        """FCPs of every budgeted size from one CSG.

        For each size, walks are summarised once and the top
        ``seeds_per_size`` edges (by traversal count, biased by
        *edge_priority* when given) seed PCP growth; the best-scoring
        completed PCPs become the FCPs for that size.
        """
        if summary.num_edges == 0:
            return []
        if weights is None:
            weights = self.weights_for(summary)
        if edge_priority is not None:
            # Bias the walk itself toward uncovered-specific regions so
            # promising edges actually accumulate traversal counts.
            weights = {
                edge: _biased_count(1, summary.edge_label(*edge), edge_priority)
                * weight
                for edge, weight in weights.items()
            }
        walker = RandomWalker(summary, weights, self._rng)
        counts = walker.traversal_counts(self.num_walks, self.walk_length)
        ranked_edges = sorted(
            counts,
            key=lambda edge: (
                -_biased_count(
                    counts[edge], summary.edge_label(*edge), edge_priority
                ),
                edge,
            ),
        )
        if edge_gate is not None:
            # Seeds must themselves pass the coverage gate, otherwise
            # every growth attempt dies on its first edge (Section 5.2).
            ranked_edges = [
                edge
                for edge in ranked_edges
                if edge_gate(summary.edge_label(*edge))
            ]
        candidates: list[CandidatePattern] = []
        for size in self.budget.sizes():
            if size > summary.num_edges:
                break
            # PCP library for this size: one growth per seed edge.
            proposals: list[tuple[list[tuple[int, int]], int]] = []
            for seed_edge in ranked_edges[: self.seeds_per_size]:
                grown = grow_candidate(
                    summary, counts, seed_edge, size, edge_gate, edge_priority
                )
                if grown is not None:
                    proposals.append(grown)
            proposals.sort(key=lambda item: -item[1])
            # Keep the top FCPs, deduplicated by their CSG edge sets.
            seen_edge_sets: set[frozenset] = set()
            for edges, score in proposals:
                if len(seen_edge_sets) >= self.fcps_per_size:
                    break
                edge_set = frozenset(edge_key(*e) for e in edges)
                if edge_set in seen_edge_sets:
                    continue
                pattern = _extract_pattern(summary, edges)
                if not pattern.is_connected():
                    continue
                seen_edge_sets.add(edge_set)
                candidates.append(
                    CandidatePattern(
                        graph=pattern,
                        cluster_id=summary.cluster_id
                        if summary.cluster_id is not None
                        else -1,
                        traversal_score=score,
                        csg_edges=edge_set,
                    )
                )
        return candidates

    def generate(
        self,
        summaries: Mapping[int, SummaryGraph],
        weights_by_cluster: (
            Mapping[int, dict[tuple[int, int], float]] | None
        ) = None,
        edge_gate: EdgeGate | None = None,
        edge_priority: EdgePriority | None = None,
    ) -> list[CandidatePattern]:
        """FCPs across all supplied CSGs (deterministic cluster order)."""
        candidates: list[CandidatePattern] = []
        for cluster_id in sorted(summaries):
            summary = summaries[cluster_id]
            weights = (
                weights_by_cluster.get(cluster_id)
                if weights_by_cluster is not None
                else None
            )
            candidates.extend(
                self.generate_for_summary(
                    summary, weights, edge_gate, edge_priority
                )
            )
        return candidates
