"""Command-line interface for the MIDAS reproduction.

Usage::

    python -m repro demo                      # the quickstart walkthrough
    python -m repro bench --figure fig12      # regenerate one paper figure
    python -m repro bench --all               # regenerate every figure
    python -m repro dataset --profile aids --count 100 --out db.json
    python -m repro check --oracle covindex --seed 7 --budget 50
    python -m repro check --replay artifact.json
    python -m repro serve --port 8373         # the pattern-serving service
    python -m repro serve --smoke             # CI gate: hit every endpoint
    python -m repro serve --journal wal/      # durable, crash-recoverable
    python -m repro serve-bench --out BENCH_serve.json
    python -m repro serve-bench --overload    # admission-control probe
    python -m repro crashtest --smoke         # CI gate: crash + recover
    python -m repro crashtest                 # the full crash-site matrix
    python -m repro info                      # version + experiment index

The ``bench`` subcommand drives exactly the same experiment code the
``benchmarks/`` pytest suite uses (:mod:`repro.bench.experiments`), so
console runs and benchmark runs always agree.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .bench import ExperimentScale
from .exceptions import ResilienceError
from .obs import (
    render_metrics_report,
    set_trace_memory,
    span,
    write_metrics_json,
)
from .execution import ExecutionConfig
from .bench.experiments import (
    ablations,
    covix,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    perf,
    store as store_experiment,
)

FIGURES = {
    "fig09": ("Fig 9 — user study (PubChem-like)", fig09.run),
    "fig10": ("Fig 10 — user-specified queries", fig10.run),
    "fig11": ("Fig 11 — threshold sweeps", fig11.run),
    "fig12": ("Fig 12 — FCT & index costs", fig12.run),
    "fig13": ("Fig 13 — MIDAS vs NoMaintain", fig13.run),
    "fig14": ("Fig 14 — baselines (AIDS-like)", fig14.run),
    "fig15": ("Fig 15 — baselines (PubChem-like)", fig15.run),
    "fig16": ("Fig 16 — scalability", fig16.run),
    "abl1": ("Ablation 1 — FCT vs FS", ablations.run_fct_vs_fs),
    "abl2": ("Ablation 2 — pruning on/off", ablations.run_pruning),
    "abl3": ("Ablation 3 — GFD distances", ablations.run_distance_measures),
    "abl4": ("Ablation 4 — walks vs FSM", ablations.run_walks_vs_fsm),
    "perf": ("Perf — parallel determinism + cache speedup", perf.run),
    "covix": ("Covix — coverage engine equivalence + VF2 reduction", covix.run),
    "store": (
        "Store — out-of-core SQLite backend vs in-memory",
        store_experiment.run,
    ),
}

#: Per-figure wall-clock guard for ``bench --all`` when no explicit
#: ``--deadline-ms`` is given: one runaway figure cannot hang the whole
#: harness (15 minutes dwarfs every figure's normal small-scale runtime).
DEFAULT_FIGURE_DEADLINE_MS = 15 * 60 * 1000

SCALES = {
    "small": ExperimentScale(
        base_graphs=80,
        family_batch=30,
        queries=60,
        gamma=10,
        eta_max=7,
        sample_cap=100,
        num_clusters=4,
    ),
    "medium": ExperimentScale(),
    "large": ExperimentScale(
        base_graphs=400,
        family_batch=120,
        queries=300,
        gamma=24,
        eta_max=10,
        sample_cap=300,
        num_clusters=10,
    ),
}


def _show_tables(result) -> None:
    tables = result if isinstance(result, tuple) else (result,)
    for table in tables:
        print()
        table.show()


def _check_metrics_path(args: argparse.Namespace) -> bool:
    """Fail fast on an unwritable ``--metrics-out`` before a long run."""
    target = getattr(args, "metrics_out", None)
    if not target:
        return True
    from pathlib import Path

    parent = Path(target).resolve().parent
    if not parent.is_dir():
        print(
            f"--metrics-out: directory {parent} does not exist",
            file=sys.stderr,
        )
        return False
    return True


def _export_metrics(args: argparse.Namespace) -> None:
    """Honour ``--metrics-out`` / ``--show-metrics`` after a run."""
    if getattr(args, "metrics_out", None):
        write_metrics_json(args.metrics_out)
        print(f"\nmetrics written to {args.metrics_out}")
    if getattr(args, "show_metrics", False):
        print()
        print(render_metrics_report())


def _execution_from_args(
    args: argparse.Namespace, deadline_ms: float | None = None
) -> ExecutionConfig:
    """Build the shared execution policy from the normalized CLI flags.

    The flag spellings mirror the :class:`~repro.execution.ExecutionConfig`
    field names one-to-one (``--workers``, ``--cache``, ``--deadline-ms``,
    ``--degrade``) so the CLI and the ``repro.api`` facade stay in sync.
    """
    if deadline_ms is None:
        deadline_ms = getattr(args, "deadline_ms", None)
    return ExecutionConfig(
        workers=getattr(args, "workers", 1),
        cache=getattr(args, "cache", "off") == "on",
        covindex=getattr(args, "covindex", "off") == "on",
        fragments=getattr(args, "fragments", "off") == "on",
        check=getattr(args, "check", "off") == "on",
        deadline_ms=deadline_ms,
        degrade=getattr(args, "degrade", "on") != "off",
        store=getattr(args, "store", None),
        substrate=getattr(args, "substrate", None),
    )


def cmd_demo(args: argparse.Namespace) -> int:
    # Defer the import: examples/ is not a package, so load by path.
    import runpy
    from pathlib import Path

    quickstart = (
        Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "quickstart.py"
    )
    if not quickstart.exists():
        print("examples/quickstart.py not found", file=sys.stderr)
        return 1
    if not _check_metrics_path(args):
        return 2
    try:
        with _execution_from_args(args).apply():
            runpy.run_path(str(quickstart), run_name="__main__")
    except ResilienceError as exc:
        # The walkthrough overran the demo deadline; everything up to
        # here already printed, and the metrics still get exported.
        print(f"\n[demo stopped by deadline: {exc}]")
    _export_metrics(args)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    targets = list(FIGURES) if args.all else [args.figure]
    if not targets or targets == [None]:
        print("specify --figure <name> or --all", file=sys.stderr)
        return 2
    if not _check_metrics_path(args):
        return 2
    if getattr(args, "trace_memory", False):
        set_trace_memory(True)
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is None and args.all:
        deadline_ms = DEFAULT_FIGURE_DEADLINE_MS
    execution = _execution_from_args(args, deadline_ms=deadline_ms)
    outcomes: list[tuple[str, float, str]] = []
    for name in targets:
        title, runner = FIGURES[name]
        print(f"\n### {name}: {title} (scale={args.scale})")
        start = time.perf_counter()
        try:
            # ``apply()`` arms a fresh per-figure deadline: one runaway
            # figure times out on its own instead of starving the rest.
            with execution.apply(), span(f"bench.{name}"):
                result = runner(scale)
        except ResilienceError as exc:
            elapsed = time.perf_counter() - start
            outcomes.append((name, elapsed, "TIMEOUT"))
            print(
                f"  [{name} TIMEOUT after {elapsed:.1f}s: "
                f"{type(exc).__name__}: {exc}]",
                file=sys.stderr,
            )
            continue
        except Exception as exc:  # noqa: BLE001 - collect, report, go on
            elapsed = time.perf_counter() - start
            outcomes.append((name, elapsed, "FAILED"))
            print(
                f"  [{name} FAILED after {elapsed:.1f}s: "
                f"{type(exc).__name__}: {exc}]",
                file=sys.stderr,
            )
            continue
        elapsed = time.perf_counter() - start
        outcomes.append((name, elapsed, "ok"))
        _show_tables(result)
        print(f"  [{name} completed in {elapsed:.1f}s]")
    failures = [name for name, _, status in outcomes if status != "ok"]
    if len(outcomes) > 1:
        print(f"\n### summary ({args.scale} scale)")
        for name, elapsed, status in outcomes:
            print(f"  {name:<6} {status:<7} {elapsed:8.1f}s")
        print(
            f"  {len(outcomes) - len(failures)}/{len(outcomes)} experiments "
            f"succeeded in {sum(e for _, e, _ in outcomes):.1f}s total"
        )
    _export_metrics(args)
    return 1 if failures else 0


def cmd_dataset(args: argparse.Namespace) -> int:
    from .bench.common import dataset
    from .graph.io import write_database

    database = dataset(args.profile, args.count, args.seed)
    write_database(args.out, database)
    summary = database.summary()
    print(
        f"wrote {summary['graphs']} graphs "
        f"(avg |V|={summary['avg_vertices']:.1f}, "
        f"avg |E|={summary['avg_edges']:.1f}) to {args.out}"
    )
    return 0


def _bootstrap_service(args: argparse.Namespace):
    """Load or generate a database, then bootstrap the maintainer for it.

    Shared by ``serve`` and ``serve-bench`` so both commands serve an
    identically configured pattern set.
    """
    from . import api
    from .bench.common import dataset
    from .graph.io import FormatError, read_database
    from .midas.config import MidasConfig
    from .patterns.budget import PatternBudget

    if args.db:
        try:
            database = read_database(args.db)
        except (OSError, FormatError, ValueError) as exc:
            print(f"cannot load {args.db}: {exc}", file=sys.stderr)
            return None
        source = args.db
    else:
        database = dataset(args.profile, args.count, args.seed)
        source = f"synthetic {args.profile} x{args.count} (seed {args.seed})"
    store_spec = getattr(args, "store", None)
    if store_spec:
        # Ingest the dataset into the requested backend so the whole
        # serve/maintenance path runs against it (docs/STORAGE.md).
        from .store import open_store

        try:
            backing = open_store(store_spec)
        except (OSError, ValueError) as exc:
            print(f"cannot open store {store_spec!r}: {exc}", file=sys.stderr)
            return None
        backing.ingest(dict(database.items()))
        database = backing
        source = f"{source} via {store_spec}"
    config = MidasConfig(
        budget=PatternBudget(args.eta_min, args.eta_max, args.gamma),
        num_clusters=args.clusters,
        sample_cap=args.sample_cap,
        seed=args.seed,
    )
    started = time.perf_counter()
    midas = api.bootstrap(
        database, config=config, execution=_execution_from_args(args)
    )
    print(
        f"bootstrapped {len(midas.patterns)} patterns over "
        f"{len(database)} graphs ({source}) "
        f"in {time.perf_counter() - started:.1f}s"
    )
    return midas


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .resilience.faults import arm_crash_from_env
    from .serve import PatternServer, PatternService, endpoints
    from .serve.bench import run_smoke

    if not _check_metrics_path(args):
        return 2
    # The crashtest harness plants a hard crash in this process through
    # the environment; a normal run arms nothing (empty variable).
    armed = arm_crash_from_env()
    if armed:
        print(f"crash site armed: {armed}", flush=True)

    journal_dir = getattr(args, "journal", None)
    service_kwargs = {
        "fsync": args.fsync,
        "queue_limit": args.queue_limit,
        "checkpoint_every": args.checkpoint_every,
    }
    if args.segment_bytes:
        service_kwargs["segment_max_bytes"] = args.segment_bytes

    recoverable = False
    if journal_dir:
        from .journal import load_latest_checkpoint

        recoverable = load_latest_checkpoint(journal_dir) is not None
    if recoverable:
        # The journal already holds a checkpoint: recover the previous
        # incarnation instead of bootstrapping a fresh maintainer.
        started = time.perf_counter()
        service = PatternService(
            None, journal_dir=journal_dir, **service_kwargs
        )
        recovery = service.last_recovery
        print(
            f"recovered version {recovery.head_version} "
            f"({recovery.replayed_commits} commits replayed, "
            f"{len(recovery.pending)} updates re-queued) from "
            f"{journal_dir} in {time.perf_counter() - started:.2f}s",
            flush=True,
        )
    else:
        midas = _bootstrap_service(args)
        if midas is None:
            return 2
        if args.smoke:
            code = run_smoke(midas)
            _export_metrics(args)
            return code
        service = PatternService(
            midas, journal_dir=journal_dir, **service_kwargs
        )

    server = PatternServer(service, host=args.host, port=args.port)

    async def _run() -> None:
        host, port = await server.start()
        print(f"serving on http://{host}:{port} (Ctrl-C to stop)", flush=True)
        for line in endpoints():
            print(f"  {line}")
        sys.stdout.flush()
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    _export_metrics(args)
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from .serve.bench import run_bench, run_overload

    if not _check_metrics_path(args):
        return 2
    midas = _bootstrap_service(args)
    if midas is None:
        return 2
    if args.overload:
        figure = run_overload(
            midas,
            queue_limit=args.queue_limit,
            seed=args.seed,
        )
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(figure, handle, indent=2, sort_keys=True)
            handle.write("\n")
        outcomes = figure["outcomes"]
        print(
            f"\noverload: {outcomes['accepted']} accepted, "
            f"{outcomes['shed']} shed with 429, queue bounded: "
            f"{figure['queue_bounded']}, degraded health observed: "
            f"{figure['degraded_health_observed']}"
        )
        print(f"wrote {args.out}")
        _export_metrics(args)
        ok = (
            figure["queue_bounded"]
            and outcomes["shed"] > 0
            and figure["retry_after"]["present_on_all_429s"]
            and figure["accepted_resolved"] == outcomes["accepted"]
        )
        return 0 if ok else 1
    figure = run_bench(
        midas,
        duration_seconds=args.duration,
        clients=args.clients,
        update_interval_seconds=args.update_interval,
        update_batch_size=args.update_batch,
        seed=args.seed,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(figure, handle, indent=2, sort_keys=True)
        handle.write("\n")

    throughput = figure["throughput"]
    staleness = figure["staleness"]
    updates = figure["updates"]
    print(
        f"\nserve-bench: {throughput['total_requests']} requests in "
        f"{throughput['elapsed_seconds']:.1f}s — "
        f"{throughput['sustained_qps']:.0f} QPS sustained, "
        f"{throughput['errors']} errors"
    )
    for endpoint, stats in figure["latency_ms"].items():
        print(
            f"  {endpoint:<14} p50 {stats['p50_ms']:7.2f} ms   "
            f"p99 {stats['p99_ms']:7.2f} ms   ({stats['count']} samples)"
        )
    print(
        f"  staleness window: max {staleness['window_ms_max']:.2f} ms, "
        f"mean {staleness['window_ms_mean']:.2f} ms across "
        f"{staleness['snapshots_published']} snapshots"
    )
    outcome_parts = ", ".join(
        f"{state} {count}"
        for state, count in sorted(updates.items())
        if state != "submitted"
    )
    print(f"  updates: {updates['submitted']} submitted ({outcome_parts})")
    print(f"wrote {args.out}")
    _export_metrics(args)
    unapplied = sum(
        count
        for state, count in updates.items()
        if state not in ("submitted", "applied")
    )
    return 1 if throughput["errors"] or unapplied else 0


def cmd_crashtest(args: argparse.Namespace) -> int:
    from .serve.crashtest import run_crashtest

    return run_crashtest(
        tuple(args.site) if args.site else None,
        smoke=args.smoke,
        out=args.out,
        seed=args.seed,
        store=getattr(args, "store", None),
    )


def cmd_check(args: argparse.Namespace) -> int:
    from .check import (
        ORACLES,
        load_artifact,
        oracle_names,
        recorded_mismatch,
        replay,
        run_oracle,
        write_artifact,
    )

    if args.list:
        print("Available oracles (see docs/CORRECTNESS.md):")
        for name in oracle_names():
            print(f"  {name:<10} {ORACLES[name].description}")
        return 0

    if args.replay:
        try:
            artifact = load_artifact(args.replay)
        except (OSError, ValueError) as exc:
            print(f"cannot load {args.replay}: {exc}", file=sys.stderr)
            return 2
        mismatch = replay(artifact)
        recorded = recorded_mismatch(artifact)
        if mismatch is None:
            print(
                f"replay of {args.replay}: clean — recorded mismatch "
                f"[{recorded.oracle}] {recorded.code} no longer reproduces"
            )
            return 0
        print(f"replay of {args.replay}: still failing")
        print(mismatch)
        return 1

    if args.all_oracles:
        targets = oracle_names()
    elif args.oracle:
        targets = [args.oracle]
    else:
        print(
            "specify --oracle NAME, --all-oracles, --replay PATH or --list",
            file=sys.stderr,
        )
        return 2

    failures = 0
    for name in targets:
        report = run_oracle(
            name,
            seed=args.seed,
            budget=args.budget,
            shrink_failures=not args.no_shrink,
        )
        print(report.summary())
        if not report.ok:
            failures += 1
            path = write_artifact(
                f"{args.artifact_dir}/{name}-seed{args.seed}.json", report
            )
            print(f"  artifact written to {path}")
    if len(targets) > 1:
        print(
            f"\n{len(targets) - failures}/{len(targets)} oracles clean "
            f"(seed {args.seed}, budget {args.budget})"
        )
    return 1 if failures else 0


def cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} — MIDAS (SIGMOD 2021) reproduction")
    print("\nExperiment index (see DESIGN.md):")
    for name, (title, _) in FIGURES.items():
        print(f"  {name:<6} {title}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIDAS canned-pattern maintenance — reproduction CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_metrics_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--metrics-out",
            metavar="PATH",
            help="write a JSON metrics snapshot (spans + counters) to PATH",
        )
        sub.add_argument(
            "--show-metrics",
            action="store_true",
            help="print the span-tree/metrics report after the run",
        )

    def add_execution_flags(sub: argparse.ArgumentParser) -> None:
        # One flag per ExecutionConfig field.  The pre-rename spellings
        # (--deadline, --jobs, --caching) still parse, but each is its
        # own help-suppressed action writing to the canonical dest so
        # only the canonical names show up in --help.
        sub.add_argument(
            "--deadline-ms",
            type=float,
            metavar="MS",
            help="wall-clock deadline: per figure for bench, whole run "
            "for demo; expensive kernels degrade to cheaper bounds "
            "instead of overrunning (see docs/ROBUSTNESS.md)",
        )
        sub.add_argument(
            "--deadline",
            type=float,
            dest="deadline_ms",
            default=argparse.SUPPRESS,
            metavar="MS",
            help=argparse.SUPPRESS,
        )
        sub.add_argument(
            "--degrade",
            choices=("on", "off"),
            default="on",
            help="'on' (default) falls down the fidelity ladder under "
            "deadline pressure; 'off' fails hard instead",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the parallel kernels (default 1 "
            "= serial); results are byte-identical at any worker count",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            dest="workers",
            default=argparse.SUPPRESS,
            metavar="N",
            help=argparse.SUPPRESS,
        )
        sub.add_argument(
            "--cache",
            choices=("on", "off"),
            default="off",
            help="'on' memoises GED / embedding / graphlet results under "
            "canonical-form keys (see docs/PERFORMANCE.md)",
        )
        sub.add_argument(
            "--caching",
            choices=("on", "off"),
            dest="cache",
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )
        sub.add_argument(
            "--covindex",
            choices=("on", "off"),
            default="off",
            help="'on' enables the filter-then-verify coverage engine: "
            "posting-list candidate filtering + incremental cover "
            "maintenance; results are identical either way (see "
            "docs/PERFORMANCE.md)",
        )
        sub.add_argument(
            "--fragments",
            choices=("on", "off"),
            default="off",
            help="'on' enables the shared sub-pattern match network "
            "inside coverage engines (requires --covindex on to take "
            "effect): patterns decompose into canonical fragment "
            "chains whose verified views prune candidates before VF2; "
            "results are identical either way (see "
            "docs/PERFORMANCE.md)",
        )
        sub.add_argument(
            "--check",
            choices=("on", "off"),
            default="off",
            help="'on' arms the runtime invariant guards (repro.check): "
            "a violated invariant raises and rolls the maintenance "
            "round back (see docs/CORRECTNESS.md)",
        )
        sub.add_argument(
            "--substrate",
            choices=("numpy", "int"),
            default=None,
            help="bitset substrate for the coverage index: 'numpy' "
            "(vectorized uint64 word arrays; the default when numpy is "
            "importable) or 'int' (the plain-int reference); results "
            "are byte-identical either way (see docs/PERFORMANCE.md)",
        )
        sub.add_argument(
            "--store",
            metavar="SPEC",
            default=None,
            help="graph-store backend spec: 'memory' (default), "
            "'sqlite:PATH' or a .db/.sqlite path for the out-of-core "
            "backend (see docs/STORAGE.md)",
        )
        sub.add_argument(
            "--backend",
            dest="store",
            default=argparse.SUPPRESS,
            metavar="SPEC",
            help=argparse.SUPPRESS,
        )

    demo = subparsers.add_parser("demo", help="run the quickstart demo")
    add_metrics_flags(demo)
    add_execution_flags(demo)
    demo.set_defaults(func=cmd_demo)

    bench = subparsers.add_parser(
        "bench", help="regenerate paper figures/tables"
    )
    bench.add_argument(
        "--figure", choices=sorted(FIGURES), help="one experiment to run"
    )
    bench.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    bench.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="dataset scale (default: small)",
    )
    add_metrics_flags(bench)
    add_execution_flags(bench)
    bench.add_argument(
        "--trace-memory",
        action="store_true",
        help="capture tracemalloc peak memory per span (slower)",
    )
    bench.set_defaults(func=cmd_bench)

    dataset_cmd = subparsers.add_parser(
        "dataset", help="generate a synthetic dataset file"
    )
    dataset_cmd.add_argument(
        "--profile", choices=("aids", "pubchem", "emol"), default="pubchem"
    )
    dataset_cmd.add_argument("--count", type=int, default=100)
    dataset_cmd.add_argument("--seed", type=int, default=0)
    dataset_cmd.add_argument("--out", default="dataset.json")
    dataset_cmd.set_defaults(func=cmd_dataset)

    def add_serve_dataset_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db",
            metavar="PATH",
            help="serve a dataset file written by 'repro dataset' "
            "instead of generating one",
        )
        sub.add_argument(
            "--profile",
            choices=("aids", "pubchem", "emol"),
            default="aids",
            help="synthetic dataset profile when no --db is given "
            "(default: aids)",
        )
        sub.add_argument(
            "--count",
            type=int,
            default=80,
            metavar="N",
            help="graphs to generate when no --db is given (default 80)",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=0,
            help="seed for dataset generation, bootstrap and load "
            "generation (default 0)",
        )
        sub.add_argument(
            "--eta-min",
            type=int,
            default=3,
            metavar="N",
            help="minimum pattern size η_min (default 3)",
        )
        sub.add_argument(
            "--eta-max",
            type=int,
            default=7,
            metavar="N",
            help="maximum pattern size η_max (default 7)",
        )
        sub.add_argument(
            "--gamma",
            type=int,
            default=10,
            metavar="N",
            help="pattern-set size γ (default 10)",
        )
        sub.add_argument(
            "--clusters",
            type=int,
            default=4,
            metavar="N",
            help="clusters for the CATAPULT++ bootstrap (default 4)",
        )
        sub.add_argument(
            "--sample-cap",
            type=int,
            default=100,
            metavar="N",
            help="maintained sample view size cap |D_s| (default 100)",
        )

    serve = subparsers.add_parser(
        "serve",
        help="run the pattern-serving HTTP service (see docs/SERVING.md)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8373,
        help="TCP port; 0 picks a free one (default 8373)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="exercise every endpoint once against an ephemeral server "
        "and exit (the CI serve gate)",
    )
    serve.add_argument(
        "--journal",
        metavar="DIR",
        help="write-ahead journal directory; if DIR already holds a "
        "checkpoint the service recovers from it instead of "
        "bootstrapping (see docs/ROBUSTNESS.md, 'Durability')",
    )
    serve.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="always",
        help="journal fsync policy (default 'always': an acknowledged "
        "update survives a machine crash)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help="bounded update-queue admission limit; a full queue sheds "
        "writes with HTTP 429 + Retry-After (default 256)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="committed rounds between snapshot checkpoints (default 8)",
    )
    serve.add_argument(
        "--segment-bytes",
        type=int,
        default=0,
        metavar="N",
        help="journal segment rotation threshold in bytes "
        "(default: the journal's 4 MiB)",
    )
    add_serve_dataset_flags(serve)
    add_metrics_flags(serve)
    add_execution_flags(serve)
    serve.set_defaults(func=cmd_serve)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="load-test the serving service; writes BENCH_serve.json",
    )
    add_serve_dataset_flags(serve_bench)
    serve_bench.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="S",
        help="load-generation window in seconds (default 5)",
    )
    serve_bench.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="concurrent simulated users (default 8)",
    )
    serve_bench.add_argument(
        "--update-interval",
        type=float,
        default=0.5,
        metavar="S",
        help="seconds between background update batches (default 0.5)",
    )
    serve_bench.add_argument(
        "--update-batch",
        type=int,
        default=3,
        metavar="N",
        help="insertions per background update batch (default 3)",
    )
    serve_bench.add_argument(
        "--out",
        default="BENCH_serve.json",
        metavar="PATH",
        help="where the figure JSON is written (default BENCH_serve.json)",
    )
    serve_bench.add_argument(
        "--overload",
        action="store_true",
        help="run the admission-control overload probe instead of the "
        "load test: hammer POST /updates past the queue limit and "
        "assert shedding (429 + Retry-After), a bounded queue and "
        "degraded /healthz",
    )
    serve_bench.add_argument(
        "--queue-limit",
        type=int,
        default=4,
        metavar="N",
        help="admission limit for --overload (small by design; default 4)",
    )
    add_metrics_flags(serve_bench)
    add_execution_flags(serve_bench)
    serve_bench.set_defaults(func=cmd_serve_bench)

    crashtest = subparsers.add_parser(
        "crashtest",
        help="kill a live serve process at every journal/publish crash "
        "site and assert oracle-clean recovery (docs/ROBUSTNESS.md)",
    )
    crashtest.add_argument(
        "--smoke",
        action="store_true",
        help="run the three-site PR-gate subset instead of the full "
        "crash-site matrix",
    )
    crashtest.add_argument(
        "--site",
        action="append",
        metavar="NAME",
        help="run only this crash site (repeatable; see "
        "repro.resilience.faults.SERVE_SITES)",
    )
    crashtest.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the bootstrap dataset and update stream (default 0)",
    )
    crashtest.add_argument(
        "--out",
        default="BENCH_recovery.json",
        metavar="PATH",
        help="recovery-time figure output (default BENCH_recovery.json)",
    )
    crashtest.add_argument(
        "--store",
        metavar="SPEC",
        default=None,
        help="graph-store backend the crashed service runs against "
        "('memory' default, 'sqlite:PATH'...; the full matrix also "
        "exercises one SQLite-backed site on its own)",
    )
    crashtest.set_defaults(func=cmd_crashtest)

    check = subparsers.add_parser(
        "check",
        help="fuzz the differential-correctness oracles / replay artifacts",
    )
    check.add_argument(
        "--oracle",
        metavar="NAME",
        help="one oracle to fuzz (see --list)",
    )
    check.add_argument(
        "--all-oracles",
        action="store_true",
        help="fuzz every registered oracle in turn",
    )
    check.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; each case derives its own RNG from (seed, case)",
    )
    check.add_argument(
        "--budget",
        type=int,
        default=100,
        metavar="N",
        help="random workloads per oracle (default 100)",
    )
    check.add_argument(
        "--replay",
        metavar="PATH",
        help="re-evaluate a shrunk failure artifact instead of fuzzing",
    )
    check.add_argument(
        "--list",
        action="store_true",
        help="list the registered oracles and exit",
    )
    check.add_argument(
        "--artifact-dir",
        default="check-artifacts",
        metavar="DIR",
        help="where shrunk failure artifacts are written (default "
        "check-artifacts/)",
    )
    check.add_argument(
        "--no-shrink",
        action="store_true",
        help="report the first failing workload without minimising it",
    )
    check.set_defaults(func=cmd_check)

    info = subparsers.add_parser("info", help="version and experiment index")
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
