"""Fine clustering: splitting oversized coarse clusters by MCCS similarity.

Coarse (k-means) clusters may exceed the maximum cluster size N, which
would make cluster-summary-graph generation expensive; CATAPULT then
replaces each oversized cluster with smaller clusters of pairwise-similar
graphs under MCCS similarity (paper, Section 2.3).

The splitter is a greedy packing: take the highest-degree unplaced graph
as a seed, attach the N−1 unplaced graphs most MCCS-similar to it, and
repeat.  This directly targets the paper's requirement that intra-cluster
similarity dominates inter-cluster similarity while guaranteeing the size
bound.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graph.labeled_graph import LabeledGraph
from ..parallel.kernels import mccs_kernel
from ..parallel.pool import current_pool
from .mccs import mccs_similarity


def _seed_similarities(
    seed: int,
    unplaced: list[int],
    graphs: Mapping[int, LabeledGraph],
) -> dict[int, float]:
    """MCCS similarity of every unplaced graph to the seed.

    Fans out through the ambient kernel pool when one is installed;
    ``mccs_similarity`` is a pure function so the scores — and therefore
    the resulting clusters — are identical to the serial loop.
    """
    pool = current_pool()
    if pool.worth_parallelizing(len(unplaced)):
        values = pool.map(
            mccs_kernel,
            [graphs[gid] for gid in unplaced],
            payload=graphs[seed],
        )
    else:
        values = [
            mccs_similarity(graphs[seed], graphs[gid]) for gid in unplaced
        ]
    return dict(zip(unplaced, values))


def fine_split(
    member_ids: list[int],
    graphs: Mapping[int, LabeledGraph],
    max_cluster_size: int,
) -> list[set[int]]:
    """Split *member_ids* into clusters of at most *max_cluster_size*.

    Returns the new clusters as a list of ID sets.  A cluster already
    within the bound is returned unchanged (as a single set).
    """
    if max_cluster_size < 1:
        raise ValueError("max_cluster_size must be >= 1")
    if len(member_ids) <= max_cluster_size:
        return [set(member_ids)]
    # Deterministic processing order: larger graphs first make better
    # seeds because similarity normalises by the smaller edge count.
    unplaced = sorted(
        member_ids, key=lambda gid: (-graphs[gid].num_edges, gid)
    )
    clusters: list[set[int]] = []
    while unplaced:
        seed = unplaced.pop(0)
        cluster = {seed}
        if unplaced and max_cluster_size > 1:
            similarities = _seed_similarities(seed, unplaced, graphs)
            scored = sorted(
                unplaced,
                key=lambda gid: (-similarities[gid], gid),
            )
            take = scored[: max_cluster_size - 1]
            cluster.update(take)
            taken = set(take)
            unplaced = [gid for gid in unplaced if gid not in taken]
        clusters.append(cluster)
    return clusters
