"""Clustering substrate: k-means++, MCCS similarity, fine splitting,
incremental cluster maintenance."""

from .fine import fine_split
from .kmeans import inertia, kmeans, kmeans_plus_plus_seeds
from .maintenance import DEFAULT_MAX_CLUSTER_SIZE, ClusterSet
from .mccs import mccs_edge_count, mccs_mapping, mccs_similarity
from .quality import mccs_contrast, silhouette_score

__all__ = [
    "DEFAULT_MAX_CLUSTER_SIZE",
    "ClusterSet",
    "fine_split",
    "inertia",
    "kmeans",
    "kmeans_plus_plus_seeds",
    "mccs_contrast",
    "mccs_edge_count",
    "mccs_mapping",
    "mccs_similarity",
    "silhouette_score",
]
