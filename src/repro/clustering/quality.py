"""Clustering quality measures.

Used by the experiment drivers to sanity-check that incremental cluster
maintenance does not silently degrade the partition relative to
clustering from scratch: the silhouette coefficient on the feature
vectors and the intra/inter MCCS-similarity contrast the fine-clustering
step is defined by (Section 2.3).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..graph.labeled_graph import LabeledGraph
from .maintenance import ClusterSet
from .mccs import mccs_similarity


def silhouette_score(clusters: ClusterSet) -> float:
    """Mean silhouette coefficient over all clustered graphs.

    Computed on the cluster feature vectors with Euclidean distance.
    Returns 0.0 when fewer than 2 clusters exist (silhouette undefined).
    """
    cluster_ids = clusters.cluster_ids()
    if len(cluster_ids) < 2:
        return 0.0
    vectors: dict[int, np.ndarray] = {}
    membership: dict[int, int] = {}
    for cluster_id in cluster_ids:
        for graph_id in clusters.members(cluster_id):
            vectors[graph_id] = clusters.feature_space.vector_for_known(
                graph_id
            )
            membership[graph_id] = cluster_id
    by_cluster = {
        cid: sorted(clusters.members(cid)) for cid in cluster_ids
    }
    scores: list[float] = []
    for graph_id, vector in vectors.items():
        own = membership[graph_id]
        own_members = [g for g in by_cluster[own] if g != graph_id]
        if not own_members:
            continue  # singleton clusters contribute no silhouette
        a = float(
            np.mean(
                [np.linalg.norm(vector - vectors[g]) for g in own_members]
            )
        )
        b = min(
            float(
                np.mean(
                    [
                        np.linalg.norm(vector - vectors[g])
                        for g in by_cluster[cid]
                    ]
                )
            )
            for cid in cluster_ids
            if cid != own
        )
        denominator = max(a, b)
        scores.append(0.0 if denominator == 0 else (b - a) / denominator)
    return float(np.mean(scores)) if scores else 0.0


def mccs_contrast(
    clusters: ClusterSet,
    graphs: Mapping[int, LabeledGraph],
    pairs_per_cluster: int = 10,
) -> tuple[float, float]:
    """(mean intra-cluster, mean inter-cluster) MCCS similarity.

    Fine clustering exists to make the first exceed the second; sampled
    pairs keep the cost bounded.
    """
    import random

    rng = random.Random(0)
    intra: list[float] = []
    inter: list[float] = []
    cluster_ids = clusters.cluster_ids()
    for cluster_id in cluster_ids:
        members = sorted(clusters.members(cluster_id))
        if len(members) >= 2:
            for _ in range(min(pairs_per_cluster, len(members))):
                a, b = rng.sample(members, 2)
                intra.append(mccs_similarity(graphs[a], graphs[b]))
        others = [c for c in cluster_ids if c != cluster_id]
        if others and members:
            for _ in range(min(pairs_per_cluster, len(members))):
                other = rng.choice(others)
                other_members = sorted(clusters.members(other))
                if not other_members:
                    continue
                a = rng.choice(members)
                b = rng.choice(other_members)
                inter.append(mccs_similarity(graphs[a], graphs[b]))
    mean_intra = float(np.mean(intra)) if intra else 0.0
    mean_inter = float(np.mean(inter)) if inter else 0.0
    return mean_intra, mean_inter
