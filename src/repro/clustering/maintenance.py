"""Cluster construction and incremental maintenance.

Implements CATAPULT's 2-step clustering (coarse k-means on tree feature
vectors, fine MCCS-based splitting of oversized clusters) and the cluster
maintenance of MIDAS (paper, Section 4.3 and Algorithm 1, lines 1–2, 6):

* a newly inserted graph is assigned to the cluster whose centroid is
  nearest to the graph's feature vector;
* a deleted graph simply leaves its cluster;
* clusters pushed past the maximum size N are fine-split in place.

:class:`ClusterSet` keeps incremental centroid sums so assignment is
O(k·|features|), and records which clusters were touched (``C⁺``/``C⁻``)
so CSG maintenance and candidate generation can focus on evolved
clusters only.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from ..trees.features import FeatureSpace
from .fine import fine_split
from .kmeans import kmeans

DEFAULT_MAX_CLUSTER_SIZE = 40


class ClusterSet:
    """A mutable partition of database graphs with nearest-centroid
    assignment and automatic fine-splitting."""

    def __init__(
        self,
        feature_space: FeatureSpace,
        max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
    ) -> None:
        self.feature_space = feature_space
        self.max_cluster_size = max_cluster_size
        self._clusters: dict[int, set[int]] = {}
        self._membership: dict[int, int] = {}
        self._vectors: dict[int, np.ndarray] = {}
        self._sums: dict[int, np.ndarray] = {}
        self._next_cluster_id = 0
        #: Clusters that gained members since the last reset (C⁺).
        self.touched_added: set[int] = set()
        #: Clusters that lost members since the last reset (C⁻).
        self.touched_removed: set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graphs: Mapping[int, LabeledGraph],
        feature_space: FeatureSpace,
        num_clusters: int,
        seed: int = 0,
        max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
    ) -> "ClusterSet":
        """Full 2-step clustering of *graphs* (coarse + fine)."""
        instance = cls(feature_space, max_cluster_size)
        ids = sorted(graphs)
        if not ids:
            return instance
        matrix = feature_space.matrix_for_known(ids)
        k = max(1, min(num_clusters, len(ids)))
        assignments, _ = kmeans(matrix, k, seed=seed)
        coarse: dict[int, list[int]] = {}
        for row, graph_id in enumerate(ids):
            coarse.setdefault(int(assignments[row]), []).append(graph_id)
            instance._vectors[graph_id] = matrix[row]
        for members in coarse.values():
            for part in fine_split(members, graphs, max_cluster_size):
                instance._new_cluster(part)
        instance.reset_touched()
        return instance

    def _new_cluster(self, members: set[int]) -> int:
        cluster_id = self._next_cluster_id
        self._next_cluster_id += 1
        self._clusters[cluster_id] = set(members)
        total = np.zeros(len(self.feature_space), dtype=np.float64)
        for graph_id in members:
            self._membership[graph_id] = cluster_id
            total += self._vectors[graph_id]
        self._sums[cluster_id] = total
        self.touched_added.add(cluster_id)
        return cluster_id

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._clusters)

    def cluster_ids(self) -> list[int]:
        return sorted(self._clusters)

    def members(self, cluster_id: int) -> set[int]:
        return set(self._clusters[cluster_id])

    def cluster_of(self, graph_id: int) -> int:
        return self._membership[graph_id]

    def clusters(self) -> dict[int, set[int]]:
        return {cid: set(m) for cid, m in self._clusters.items()}

    def centroid(self, cluster_id: int) -> np.ndarray:
        members = self._clusters[cluster_id]
        if not members:
            return self._sums[cluster_id].copy()
        return self._sums[cluster_id] / len(members)

    def total_graphs(self) -> int:
        return len(self._membership)

    def cluster_weights(self) -> dict[int, float]:
        """``cw_i = |C_i| / |D|`` (Definition 2.1)."""
        total = self.total_graphs()
        if total == 0:
            return {cid: 0.0 for cid in self._clusters}
        return {
            cid: len(members) / total
            for cid, members in self._clusters.items()
        }

    def reset_touched(self) -> None:
        self.touched_added = set()
        self.touched_removed = set()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def assign(
        self,
        graph_id: int,
        graph: LabeledGraph,
        graphs: Mapping[int, LabeledGraph] | None = None,
    ) -> int:
        """Assign a new graph to the nearest cluster (Algorithm 1, line 1).

        *graphs* supplies member graphs for fine-splitting when the
        target cluster overflows; without it the overflow split degrades
        to an arbitrary balanced cut.
        """
        if graph_id in self._membership:
            raise ValueError(f"graph {graph_id} is already clustered")
        get_registry().counter("clustering.assignments").add(1)
        vector = self.feature_space.vector_for_graph(graph)
        self._vectors[graph_id] = vector
        if not self._clusters:
            return self._new_cluster({graph_id})
        best_cluster = min(
            self._clusters,
            key=lambda cid: (
                float(np.linalg.norm(self.centroid(cid) - vector)),
                cid,
            ),
        )
        self._clusters[best_cluster].add(graph_id)
        self._membership[graph_id] = best_cluster
        self._sums[best_cluster] += vector
        self.touched_added.add(best_cluster)
        if len(self._clusters[best_cluster]) > self.max_cluster_size:
            self._split(best_cluster, graphs)
        return self._membership[graph_id]

    def remove(self, graph_id: int) -> int:
        """Remove a deleted graph from its cluster (Algorithm 1, line 2)."""
        try:
            cluster_id = self._membership.pop(graph_id)
        except KeyError:
            raise ValueError(f"graph {graph_id} is not clustered") from None
        get_registry().counter("clustering.removals").add(1)
        self._clusters[cluster_id].discard(graph_id)
        self._sums[cluster_id] -= self._vectors.pop(graph_id)
        self.touched_removed.add(cluster_id)
        if not self._clusters[cluster_id]:
            del self._clusters[cluster_id]
            del self._sums[cluster_id]
        return cluster_id

    def _split(
        self, cluster_id: int, graphs: Mapping[int, LabeledGraph] | None
    ) -> None:
        get_registry().counter("clustering.fine_splits").add(1)
        members = sorted(self._clusters[cluster_id])
        if graphs is not None:
            parts = fine_split(members, graphs, self.max_cluster_size)
        else:
            parts = [
                set(members[i : i + self.max_cluster_size])
                for i in range(0, len(members), self.max_cluster_size)
            ]
        del self._clusters[cluster_id]
        del self._sums[cluster_id]
        self.touched_removed.add(cluster_id)
        for part in parts:
            self._new_cluster(part)

    def refresh_feature_space(
        self, feature_space: FeatureSpace, known_ids: bool = True
    ) -> None:
        """Swap in a new feature space (after FCT maintenance).

        Vectors and centroid sums are recomputed from the new features'
        cover sets; memberships are untouched.
        """
        self.feature_space = feature_space
        for graph_id in self._membership:
            self._vectors[graph_id] = feature_space.vector_for_known(graph_id)
        for cluster_id, members in self._clusters.items():
            total = np.zeros(len(feature_space), dtype=np.float64)
            for graph_id in members:
                total += self._vectors[graph_id]
            self._sums[cluster_id] = total
        _ = known_ids
