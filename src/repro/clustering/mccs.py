"""Maximum connected common subgraph (MCCS) similarity.

CATAPULT's fine clustering groups graphs by MCCS similarity
``ω(G1, G2) = |G_MCCS| / min(|G1|, |G2|)`` with sizes measured in edges
(paper, Section 2.3, citing Shang et al.).  Exact MCCS is NP-hard; this
module uses a seeded greedy multi-start search that grows a common
connected mapping pair-by-pair:

* every label-compatible vertex pair is a potential seed (capped);
* from a seed, the frontier of label-compatible adjacent pairs is scanned
  and the pair adding the most common edges is appended;
* the best mapping over all starts is returned.

The result is a lower bound on the true MCCS, which is the right
direction for a *similarity* used only to group graphs — and the search
is exact on trees with unique labels (covered by tests).  A step budget
bounds worst-case cost.
"""

from __future__ import annotations

from ..graph.labeled_graph import LabeledGraph, VertexId

DEFAULT_SEED_CAP = 24
DEFAULT_STEP_BUDGET = 4000


def _common_edges_added(
    first: LabeledGraph,
    second: LabeledGraph,
    mapping: dict[VertexId, VertexId],
    u: VertexId,
    v: VertexId,
) -> int:
    """Edges gained by extending *mapping* with the pair (u, v)."""
    gained = 0
    for mapped_u, mapped_v in mapping.items():
        if first.has_edge(u, mapped_u) and second.has_edge(v, mapped_v):
            gained += 1
    return gained


def mccs_mapping(
    first: LabeledGraph,
    second: LabeledGraph,
    seed_cap: int = DEFAULT_SEED_CAP,
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> dict[VertexId, VertexId]:
    """Greedy common-connected-subgraph mapping (first → second)."""
    if first.num_vertices == 0 or second.num_vertices == 0:
        return {}
    seeds: list[tuple[VertexId, VertexId]] = []
    second_by_label: dict[str, list[VertexId]] = {}
    for v in sorted(second.vertices(), key=repr):
        second_by_label.setdefault(second.label(v), []).append(v)
    for u in sorted(first.vertices(), key=lambda x: (-first.degree(x), repr(x))):
        for v in second_by_label.get(first.label(u), ()):
            seeds.append((u, v))
            if len(seeds) >= seed_cap:
                break
        if len(seeds) >= seed_cap:
            break

    best_mapping: dict[VertexId, VertexId] = {}
    best_edges = -1
    steps = 0
    for seed_u, seed_v in seeds:
        mapping = {seed_u: seed_v}
        used_second = {seed_v}
        edges = 0
        while True:
            steps += 1
            if steps > step_budget:
                break
            best_pair: tuple[VertexId, VertexId] | None = None
            best_gain = 0
            for mapped_u, mapped_v in list(mapping.items()):
                for u in first.neighbors(mapped_u):
                    if u in mapping:
                        continue
                    label = first.label(u)
                    for v in second.neighbors(mapped_v):
                        if v in used_second or second.label(v) != label:
                            continue
                        gain = _common_edges_added(first, second, mapping, u, v)
                        if gain > best_gain:
                            best_gain = gain
                            best_pair = (u, v)
            if best_pair is None or best_gain == 0:
                break
            mapping[best_pair[0]] = best_pair[1]
            used_second.add(best_pair[1])
            edges += best_gain
        if edges > best_edges:
            best_edges = edges
            best_mapping = mapping
        if steps > step_budget:
            break
    return best_mapping


def mccs_edge_count(
    first: LabeledGraph,
    second: LabeledGraph,
    seed_cap: int = DEFAULT_SEED_CAP,
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> int:
    """Number of edges of the (greedy) MCCS — the paper's ``|G_MCCS|``."""
    mapping = mccs_mapping(first, second, seed_cap, step_budget)
    edges = 0
    items = list(mapping.items())
    for i, (u, mu) in enumerate(items):
        for v, mv in items[i + 1 :]:
            if first.has_edge(u, v) and second.has_edge(mu, mv):
                edges += 1
    return edges


def mccs_similarity(
    first: LabeledGraph,
    second: LabeledGraph,
    seed_cap: int = DEFAULT_SEED_CAP,
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> float:
    """``ω_MCCS = |G_MCCS| / min(|G1|, |G2|)`` with edge sizes."""
    smaller = min(first.num_edges, second.num_edges)
    if smaller == 0:
        return 0.0
    return mccs_edge_count(first, second, seed_cap, step_budget) / smaller
