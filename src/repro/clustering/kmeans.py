"""k-means with k-means++ seeding.

CATAPULT's coarse clustering is feature-vector k-means whose seeds come
from the k-means++ procedure of Arthur & Vassilvitskii (paper, Section
2.3, reference [8]).  Implemented here from scratch on numpy arrays with
an explicit seed so clustering is reproducible.
"""

from __future__ import annotations

import random

import numpy as np


def kmeans_plus_plus_seeds(
    points: np.ndarray, k: int, rng: random.Random
) -> np.ndarray:
    """Choose *k* initial centroids with the k-means++ D² weighting."""
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    first = rng.randrange(n)
    centroids = [points[first]]
    squared = np.sum((points - centroids[0]) ** 2, axis=1)
    for _ in range(1, k):
        total = float(squared.sum())
        if total <= 0:
            # All remaining points coincide with a centroid; pick any.
            index = rng.randrange(n)
        else:
            threshold = rng.random() * total
            cumulative = np.cumsum(squared)
            index = int(np.searchsorted(cumulative, threshold, side="right"))
            index = min(index, n - 1)
        centroids.append(points[index])
        squared = np.minimum(
            squared, np.sum((points - points[index]) ** 2, axis=1)
        )
    return np.vstack(centroids)


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster *points* into *k* groups.

    Returns ``(assignments, centroids)`` where ``assignments[i]`` is the
    cluster index of row *i*.  Empty clusters are re-seeded with the point
    farthest from its centroid, so exactly *k* non-empty clusters are
    produced whenever ``k <= len(points)``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if k >= n:
        # Degenerate: every point its own cluster (ids 0..n-1).
        return np.arange(n), points.copy()
    rng = random.Random(seed)
    centroids = kmeans_plus_plus_seeds(points, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        # Assignment step.
        distances = np.linalg.norm(
            points[:, None, :] - centroids[None, :, :], axis=2
        )
        new_assignments = distances.argmin(axis=1)
        # Update step.
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = points[new_assignments == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster with the worst-fitting point.
                residual = distances[np.arange(n), new_assignments]
                worst = int(residual.argmax())
                new_centroids[cluster] = points[worst]
                new_assignments[worst] = cluster
        shift = float(np.linalg.norm(new_centroids - centroids))
        assignments = new_assignments
        centroids = new_centroids
        if shift <= tolerance:
            break
    return assignments, centroids


def inertia(
    points: np.ndarray, assignments: np.ndarray, centroids: np.ndarray
) -> float:
    """Sum of squared distances of points to their assigned centroids."""
    return float(
        np.sum((points - centroids[assignments]) ** 2)
    )
