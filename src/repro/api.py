"""The supported entry points: select, bootstrap, maintain.

This facade is the single documented way to drive the reproduction —
everything else (pipeline classes, the maintainer, the kernels) is
implementation surface that may move between releases.  The three calls
mirror the lifecycle of a visual graph query interface's canned pattern
set (paper, Sections 2–3):

>>> import repro
>>> result = repro.api.select(database, repro.PatternBudget(3, 5, 8))
>>> midas = repro.api.bootstrap(database)
>>> report = repro.api.maintain(midas, repro.BatchUpdate.of(insertions=[g]))

Every call accepts an optional :class:`~repro.execution.ExecutionConfig`
— the shared *how* knob bundle (workers, cache, covindex, deadline_ms,
degrade) that replaced the per-call resilience kwargs.  Results are the existing
dataclasses (:class:`~repro.catapult.pipeline.CatapultResult`,
:class:`~repro.midas.maintainer.MaintenanceReport`), so downstream code
keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from .catapult.pipeline import Catapult, CatapultConfig, CatapultPlusPlus, CatapultResult
from .execution import ExecutionConfig
from .graph.database import BatchUpdate, GraphDatabase
from .midas.config import MidasConfig
from .midas.maintainer import MaintenanceReport, Midas
from .patterns.budget import PatternBudget


def _with_execution(config, execution: ExecutionConfig | None):
    return config if execution is None else replace(config, execution=execution)


def select(
    database: GraphDatabase,
    budget: PatternBudget | None = None,
    *,
    config: CatapultConfig | None = None,
    execution: ExecutionConfig | None = None,
    plus_plus: bool = True,
) -> CatapultResult:
    """Select a canned pattern set for *database* from scratch.

    Parameters
    ----------
    database:
        The graph database to select patterns for.
    budget:
        Pattern budget (η_min, η_max, γ); overrides ``config.budget``
        when both are given.
    config:
        Full pipeline configuration; defaults to ``CatapultConfig()``.
    execution:
        Execution policy override (workers, cache, covindex, deadline,
        degrade); replaces ``config.execution`` when given.
    plus_plus:
        Run CATAPULT++ (closed features + FCT/IFE indices, the variant
        MIDAS builds on) rather than baseline CATAPULT.
    """
    config = config or CatapultConfig()
    if budget is not None:
        config = replace(config, budget=budget)
    config = _with_execution(config, execution)
    pipeline = CatapultPlusPlus(config) if plus_plus else Catapult(config)
    return pipeline.run(database)


def bootstrap(
    database: GraphDatabase,
    *,
    config: MidasConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> Midas:
    """Build a maintainer over *database* with one CATAPULT++ run."""
    config = _with_execution(config or MidasConfig(), execution)
    return Midas.bootstrap(database, config)


def maintain(
    midas: Midas,
    batch: BatchUpdate,
    *,
    config: MidasConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> MaintenanceReport:
    """Apply one batch update through the maintainer.

    *config* replaces the maintainer's configuration for this and all
    subsequent rounds; *execution* overrides just the execution policy
    the same way.  Both default to whatever the maintainer already has.
    """
    if config is not None:
        midas.config = config
    if execution is not None:
        midas.config = _with_execution(midas.config, execution)
    return midas.apply_update(batch)


__all__ = ["bootstrap", "maintain", "select"]
