"""The supported entry points: open_store, select, bootstrap, maintain.

This facade is the single documented way to drive the reproduction —
everything else (pipeline classes, the maintainer, the kernels) is
implementation surface that may move between releases.  The calls
mirror the lifecycle of a visual graph query interface's canned pattern
set (paper, Sections 2–3):

>>> import repro
>>> store = repro.api.open_store("sqlite:catalog.db")
>>> result = repro.api.select(store, repro.PatternBudget(3, 5, 8))
>>> midas = repro.api.bootstrap(store)
>>> report = repro.api.maintain(midas, repro.BatchUpdate.of(insertions=[g]))

``select`` and ``bootstrap`` accept any
:class:`~repro.store.base.GraphStore` — the in-memory
:class:`~repro.graph.database.GraphDatabase` or the out-of-core SQLite
backend — or a store spec string/path resolved through
:func:`open_store` (docs/STORAGE.md).  Every call accepts an optional
:class:`~repro.execution.ExecutionConfig` — the shared *how* knob
bundle (workers, cache, covindex, store, deadline_ms, degrade) that
replaced the per-call resilience kwargs.  Results are the existing
dataclasses (:class:`~repro.catapult.pipeline.CatapultResult`,
:class:`~repro.midas.maintainer.MaintenanceReport`), so downstream code
keeps working unchanged.

The pre-1.1 signatures took the database as a keyword named
``database``; that spelling still works through a
:class:`DeprecationWarning` shim and will be removed in a later
release.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from pathlib import Path

from .catapult.pipeline import Catapult, CatapultConfig, CatapultPlusPlus, CatapultResult
from .execution import ExecutionConfig
from .graph.database import BatchUpdate, GraphDatabase
from .midas.config import MidasConfig
from .midas.maintainer import MaintenanceReport, Midas
from .patterns.budget import PatternBudget
from .store.base import GraphStore
from .store.base import open_store as open_store


def _with_execution(config, execution: ExecutionConfig | None):
    return config if execution is None else replace(config, execution=execution)


def _resolve_store(store, database, caller: str) -> GraphStore:
    """Resolve the positional *store* argument, honouring the deprecated
    ``database=`` keyword spelling."""
    if database is not None:
        if store is not None:
            raise TypeError(
                f"{caller}() got both 'store' and the deprecated "
                f"'database' argument; pass one"
            )
        warnings.warn(
            f"the 'database' keyword of repro.api.{caller}() is "
            f"deprecated; pass the store positionally (any GraphStore, "
            f"or a spec for open_store)",
            DeprecationWarning,
            stacklevel=3,
        )
        store = database
    if store is None:
        raise TypeError(f"{caller}() missing required argument: 'store'")
    if isinstance(store, GraphStore):
        return store
    if isinstance(store, (str, Path)):
        return open_store(store)
    raise TypeError(
        f"{caller}() expected a GraphStore or store spec, "
        f"got {type(store).__name__}"
    )


def select(
    store: GraphStore | str | Path | None = None,
    budget: PatternBudget | None = None,
    *,
    config: CatapultConfig | None = None,
    execution: ExecutionConfig | None = None,
    plus_plus: bool = True,
    database: GraphDatabase | None = None,
) -> CatapultResult:
    """Select a canned pattern set for the graphs in *store* from scratch.

    Parameters
    ----------
    store:
        The graph store to select patterns for: any
        :class:`~repro.store.base.GraphStore`, or a spec string/path
        resolved through :func:`open_store` (``"memory"``,
        ``"sqlite:PATH"``, a ``.json`` dataset, a ``.db`` file...).
    budget:
        Pattern budget (η_min, η_max, γ); overrides ``config.budget``
        when both are given.
    config:
        Full pipeline configuration; defaults to ``CatapultConfig()``.
    execution:
        Execution policy override (workers, cache, covindex, store,
        deadline, degrade); replaces ``config.execution`` when given.
    plus_plus:
        Run CATAPULT++ (closed features + FCT/IFE indices, the variant
        MIDAS builds on) rather than baseline CATAPULT.
    database:
        Deprecated alias for *store* (pre-1.1 keyword spelling).
    """
    resolved = _resolve_store(store, database, "select")
    config = config or CatapultConfig()
    if budget is not None:
        config = replace(config, budget=budget)
    config = _with_execution(config, execution)
    pipeline = CatapultPlusPlus(config) if plus_plus else Catapult(config)
    return pipeline.run(resolved)


def bootstrap(
    store: GraphStore | str | Path | None = None,
    *,
    config: MidasConfig | None = None,
    execution: ExecutionConfig | None = None,
    database: GraphDatabase | None = None,
) -> Midas:
    """Build a maintainer over *store* with one CATAPULT++ run.

    *store* is any :class:`~repro.store.base.GraphStore` or a spec for
    :func:`open_store`; *database* is the deprecated pre-1.1 keyword
    spelling of the same argument.
    """
    resolved = _resolve_store(store, database, "bootstrap")
    config = _with_execution(config or MidasConfig(), execution)
    return Midas.bootstrap(resolved, config)


def maintain(
    midas: Midas,
    batch: BatchUpdate,
    *,
    config: MidasConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> MaintenanceReport:
    """Apply one batch update through the maintainer.

    *config* replaces the maintainer's configuration for this and all
    subsequent rounds; *execution* overrides just the execution policy
    the same way.  Both default to whatever the maintainer already has.
    """
    if config is not None:
        midas.config = config
    if execution is not None:
        midas.config = _with_execution(midas.config, execution)
    return midas.apply_update(batch)


__all__ = ["bootstrap", "maintain", "open_store", "select"]
