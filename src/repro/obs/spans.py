"""Hierarchical timing spans producing a nested trace tree.

A :class:`Span` is one node of a trace tree: a name, accumulated
wall-clock seconds, a call count, optional peak-memory capture
(``tracemalloc``) and child spans.  Spans aggregate *by name within
their parent*: entering ``span("fct")`` twice under the same parent
yields one node with ``calls == 2`` and summed seconds — the shape a
cost breakdown wants, with bounded memory even across thousands of
maintenance rounds.

Two entry points:

* :func:`span` — open (or re-enter) a named child of the current span on
  the process-default :class:`Tracer`;
* :func:`capture` — open a *fresh, detached* subtree that is merged into
  the global tree on exit.  ``Midas.apply_update`` uses this so each
  :class:`~repro.midas.maintainer.MaintenanceReport` carries exactly its
  own round's tree while the global tree keeps the aggregate.

The span stack is thread-local, so concurrent threads each build their
own path under the shared root.  The documented span hierarchy lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from contextlib import contextmanager


class Span:
    """One node of the trace tree (aggregated by name within a parent)."""

    __slots__ = (
        "name",
        "seconds",
        "calls",
        "memory_peak_bytes",
        "last_seconds",
        "_children",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        #: Peak traced memory (bytes) observed during this span, when
        #: memory tracing was enabled; None otherwise.
        self.memory_peak_bytes: int | None = None
        #: Duration of the most recent completed entry (not serialised).
        self.last_seconds = 0.0
        self._children: dict[str, Span] = {}

    # ------------------------------------------------------------------
    @property
    def children(self) -> list["Span"]:
        return list(self._children.values())

    def child(self, name: str) -> "Span":
        """Get-or-create the child span called *name*."""
        node = self._children.get(name)
        if node is None:
            node = Span(name)
            self._children[name] = node
        return node

    def find(self, path: str) -> "Span | None":
        """Look up a descendant by ``/``-separated path, or None."""
        node = self
        for part in path.split("/"):
            node = node._children.get(part)
            if node is None:
                return None
        return node

    def walk(self):
        """Yield (depth, span) over the subtree, preorder."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    # ------------------------------------------------------------------
    def merge(self, other: "Span") -> None:
        """Fold *other*'s aggregates and subtree into this node."""
        self.seconds += other.seconds
        self.calls += other.calls
        self.last_seconds = other.last_seconds
        if other.memory_peak_bytes is not None:
            self.memory_peak_bytes = max(
                self.memory_peak_bytes or 0, other.memory_peak_bytes
            )
        for child in other.children:
            self.child(child.name).merge(child)

    def to_dict(self) -> dict:
        """JSON-ready nested representation of the subtree."""
        node: dict = {
            "name": self.name,
            "seconds": self.seconds,
            "calls": self.calls,
        }
        if self.memory_peak_bytes is not None:
            node["memory_peak_bytes"] = self.memory_peak_bytes
        if self._children:
            node["children"] = [c.to_dict() for c in self.children]
        return node

    def render(self, total_seconds: float | None = None) -> str:
        """Human-readable tree report of the subtree.

        Each line shows the span name, accumulated seconds, call count,
        share of the parent's time and (when captured) peak memory.
        """
        lines: list[str] = []
        self._render_into(lines, prefix="", parent_seconds=total_seconds)
        return "\n".join(lines)

    def _render_into(
        self, lines: list[str], prefix: str, parent_seconds: float | None
    ) -> None:
        share = ""
        if parent_seconds:
            share = f"  {100.0 * self.seconds / parent_seconds:5.1f}%"
        memory = ""
        if self.memory_peak_bytes is not None:
            memory = f"  peak={self.memory_peak_bytes / 1024.0:.1f}KB"
        lines.append(
            f"{prefix}{self.name:<24} {self.seconds:9.4f}s  "
            f"x{self.calls}{share}{memory}"
        )
        children = self.children
        for i, child in enumerate(children):
            last = i == len(children) - 1
            branch = "└─ " if last else "├─ "
            child_prefix = prefix.replace("├─ ", "│  ").replace("└─ ", "   ")
            child._render_into(
                lines, child_prefix + branch, self.seconds or None
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} {self.seconds:.4f}s x{self.calls} "
            f"children={len(self._children)}>"
        )


class Tracer:
    """A trace tree plus the (thread-local) stack of open spans."""

    def __init__(self, name: str = "root", trace_memory: bool = False) -> None:
        self.root = Span(name)
        #: When True, every span captures tracemalloc peak memory.
        self.trace_memory = trace_memory
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack()[-1]

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, trace_memory: bool | None = None):
        """Open the child span *name* under the current span.

        Yields the (aggregated) :class:`Span` node; on exit its call
        count is incremented and the elapsed wall-clock time added.
        Exception-safe: the stack is restored and the time recorded even
        when the body raises.
        """
        stack = self._stack()
        node = stack[-1].child(name)
        stack.append(node)
        memory = self.trace_memory if trace_memory is None else trace_memory
        started_tracing = False
        if memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            # Peaks are measured from span entry; an inner memory span
            # resets the shared peak, so nested peaks are innermost-wins.
            tracemalloc.reset_peak()
        start = time.perf_counter()
        try:
            yield node
        finally:
            elapsed = time.perf_counter() - start
            node.seconds += elapsed
            node.calls += 1
            node.last_seconds = elapsed
            if memory:
                _, peak = tracemalloc.get_traced_memory()
                node.memory_peak_bytes = max(
                    node.memory_peak_bytes or 0, peak
                )
                if started_tracing:
                    tracemalloc.stop()
            stack.pop()

    @contextmanager
    def capture(self, name: str, trace_memory: bool | None = None):
        """Record a fresh detached subtree, merging it into the tree.

        Unlike :meth:`span`, the yielded node is *new on every call* —
        nested spans aggregate inside it alone — so the caller owns an
        exact per-invocation snapshot.  On exit the subtree is folded
        into the enclosing span's child of the same name, keeping the
        global tree an aggregate over all captures.
        """
        stack = self._stack()
        parent = stack[-1]
        fresh = Span(name)
        stack.append(fresh)
        memory = self.trace_memory if trace_memory is None else trace_memory
        started_tracing = False
        if memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            tracemalloc.reset_peak()
        start = time.perf_counter()
        try:
            yield fresh
        finally:
            elapsed = time.perf_counter() - start
            fresh.seconds = elapsed
            fresh.calls = 1
            fresh.last_seconds = elapsed
            if memory:
                _, peak = tracemalloc.get_traced_memory()
                fresh.memory_peak_bytes = peak
                if started_tracing:
                    tracemalloc.stop()
            stack.pop()
            parent.child(name).merge(fresh)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop the recorded tree (open spans keep their identity)."""
        self.root = Span(self.root.name)
        self._local = threading.local()

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def render(self) -> str:
        return self.root.render()


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the default; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def set_trace_memory(enabled: bool) -> None:
    """Toggle tracemalloc peak capture on the default tracer's spans."""
    _default_tracer.trace_memory = enabled


def span(name: str, trace_memory: bool | None = None):
    """Open a named span on the default tracer (see :meth:`Tracer.span`)."""
    return _default_tracer.span(name, trace_memory=trace_memory)


def capture(name: str, trace_memory: bool | None = None):
    """Record a detached subtree on the default tracer (see
    :meth:`Tracer.capture`)."""
    return _default_tracer.capture(name, trace_memory=trace_memory)
