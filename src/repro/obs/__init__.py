"""Observability: metrics registry, hierarchical spans, export surface.

The operator guide — metric catalogue, span hierarchy, report format,
worked ``--metrics-out`` example — is ``docs/OBSERVABILITY.md``.

Layer map:

* :mod:`repro.obs.registry` — process-wide counters/gauges/histograms;
* :mod:`repro.obs.spans` — hierarchical wall-clock spans with optional
  tracemalloc peak-memory capture;
* :mod:`repro.obs.compat` — the legacy :class:`Stopwatch` shim;
* :mod:`repro.obs.export` — JSON snapshot + human-readable tree report.
"""

from .compat import Stopwatch, timed
from .export import (
    SNAPSHOT_SCHEMA,
    metrics_snapshot,
    render_metrics_report,
    reset_all,
    write_metrics_json,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from .spans import (
    Span,
    Tracer,
    capture,
    get_tracer,
    set_trace_memory,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "Span",
    "Stopwatch",
    "Tracer",
    "capture",
    "counter",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "metrics_snapshot",
    "render_metrics_report",
    "reset_all",
    "set_registry",
    "set_trace_memory",
    "set_tracer",
    "span",
    "timed",
    "write_metrics_json",
]
