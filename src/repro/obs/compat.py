"""Back-compat shim: the legacy :class:`Stopwatch` over the span layer.

Historically every phase of :class:`~repro.midas.maintainer.Midas` and
the CATAPULT pipelines timed itself through a flat ``Stopwatch`` of
named laps.  The hierarchical spans of :mod:`repro.obs.spans` subsume
it: the maintainer and pipelines now record spans, and the ``Stopwatch``
each report still exposes is derived from the round's span subtree via
:meth:`Stopwatch.from_span` — one lap per direct child span.

``Stopwatch`` remains fully usable standalone (``measure`` still
accumulates laps) so existing callers and tests keep working, but new
code should open spans instead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .spans import Span


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations (seconds).

    A flat, single-level view of timing: the legacy interface of
    :class:`MaintenanceReport` and :class:`CatapultResult`.  Reports
    built from spans carry a stopwatch whose laps mirror the direct
    children of the round's span subtree (:meth:`from_span`).
    """

    laps: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_span(cls, span: Span) -> "Stopwatch":
        """A stopwatch whose laps are *span*'s direct children."""
        return cls(
            laps={child.name: child.seconds for child in span.children}
        )

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the elapsed time to lap *name*."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        return self.laps.get(name, 0.0)

    def total(self) -> float:
        return sum(self.laps.values())

    def reset(self) -> None:
        self.laps.clear()


@contextmanager
def timed():
    """Yield a zero-arg callable returning elapsed seconds so far."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
