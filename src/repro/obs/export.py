"""Export surface: JSON snapshots and the human-readable tree report.

Two consumers:

* ``python -m repro bench/demo --metrics-out PATH`` dumps a JSON
  snapshot (:func:`write_metrics_json`) combining the default tracer's
  span tree with every registry metric;
* ``--show-metrics`` (and ``REPRO_METRICS_REPORT=1`` for the benchmark
  suite) prints :func:`render_metrics_report`, the per-phase cost
  breakdown operators read alongside each figure table.

``docs/OBSERVABILITY.md`` documents the snapshot schema and how to read
the report.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import MetricsRegistry, get_registry
from .spans import Tracer, get_tracer

#: Schema tag stamped into every JSON snapshot.
SNAPSHOT_SCHEMA = "repro.obs/1"


def metrics_snapshot(
    tracer: Tracer | None = None, registry: MetricsRegistry | None = None
) -> dict:
    """A JSON-ready snapshot of the span tree and every metric."""
    tracer = tracer or get_tracer()
    registry = registry or get_registry()
    snapshot = {"schema": SNAPSHOT_SCHEMA, "spans": tracer.to_dict()}
    snapshot.update(registry.snapshot())
    return snapshot


def write_metrics_json(
    path: str | Path,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> dict:
    """Write :func:`metrics_snapshot` to *path*; returns the snapshot."""
    snapshot = metrics_snapshot(tracer, registry)
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=False))
    return snapshot


def render_metrics_report(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> str:
    """The operator-facing text report: span tree + counters + histograms."""
    tracer = tracer or get_tracer()
    registry = registry or get_registry()
    sections = ["== span tree (wall-clock) ==", tracer.render()]
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    if counters:
        sections.append("")
        sections.append("== counters ==")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            sections.append(f"{name:<{width}}  {value}")
    gauges = snapshot["gauges"]
    if gauges:
        sections.append("")
        sections.append("== gauges ==")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            sections.append(f"{name:<{width}}  {value:g}")
    histograms = snapshot["histograms"]
    if histograms:
        sections.append("")
        sections.append("== histograms ==")
        for name, summary in histograms.items():
            sections.append(
                f"{name}  count={summary['count']} total={summary['total']:g} "
                f"mean={summary['mean']:g} min={summary['min']} "
                f"max={summary['max']}"
            )
    return "\n".join(sections)


def reset_all(
    tracer: Tracer | None = None, registry: MetricsRegistry | None = None
) -> None:
    """Reset the span tree and zero every metric (one observation epoch)."""
    (tracer or get_tracer()).reset()
    (registry or get_registry()).reset()
