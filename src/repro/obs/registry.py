"""Process-wide metrics registry: counters, gauges and histograms.

The paper's claims are performance claims — PMT/PGT maintenance times,
index maintenance cost, classifier behaviour — so the hot paths (VF2,
GED, FCT mining, clustering, CSG integration, index maintenance, the
swap) report what they did through a small, dependency-free metrics
layer:

* :class:`Counter` — a monotonically increasing count (states explored,
  backtracks, trees mined, …);
* :class:`Gauge` — a point-in-time value (pool size, pattern count);
* :class:`Histogram` — a value distribution with count/total/min/max and
  a bounded reservoir for percentiles (update latencies, batch sizes).

All three live in a :class:`MetricsRegistry`.  A thread-safe process
default is reachable through :func:`get_registry` and the module-level
:func:`counter` / :func:`gauge` / :func:`histogram` helpers, which is
what the instrumented subsystems use; tests may install an isolated
registry with :func:`set_registry`.

Every metric name in use is catalogued in ``docs/OBSERVABILITY.md``
(enforced by ``tests/test_docs.py``).
"""

from __future__ import annotations

import threading

#: Cap on values kept per histogram for percentile estimation; beyond it
#: only the running aggregates (count/total/min/max) stay exact.
RESERVOIR_CAP = 4096


class Counter:
    """A monotonically increasing integer metric."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time numeric metric (last value wins)."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A value distribution: exact aggregates + a bounded reservoir."""

    kind = "histogram"
    __slots__ = ("name", "_count", "_total", "_min", "_max", "_values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._reset_locked()

    def _reset_locked(self) -> None:
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._values: list[float] = []

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._values) < RESERVOIR_CAP:
                self._values.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile over the reservoir (None when empty)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._values:
                return None
            ordered = sorted(self._values)
        rank = round((q / 100.0) * (len(ordered) - 1))
        return ordered[rank]

    def summary(self) -> dict[str, float | int | None]:
        return {
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
        }

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls):
        # Lock-free fast path: dict reads are atomic under the GIL and
        # metrics are never replaced once registered, so the hot
        # instrumentation paths (one lookup per filter query) skip the
        # lock entirely after first use.
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def counter_values(self) -> dict[str, int]:
        """Current value of every counter (for delta computation)."""
        with self._lock:
            return {
                name: metric.value
                for name, metric in self._metrics.items()
                if isinstance(metric, Counter)
            }

    def counter_deltas(self, before: dict[str, int]) -> dict[str, int]:
        """Counter increases since a :meth:`counter_values` snapshot."""
        deltas = {}
        for name, value in self.counter_values().items():
            change = value - before.get(name, 0)
            if change:
                deltas[name] = change
        return deltas

    def snapshot(self) -> dict[str, dict]:
        """A JSON-ready view of every metric, grouped by kind."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            "counters": {
                name: m.value
                for name, m in sorted(metrics.items())
                if isinstance(m, Counter)
            },
            "gauges": {
                name: m.value
                for name, m in sorted(metrics.items())
                if isinstance(m, Gauge)
            },
            "histograms": {
                name: m.summary()
                for name, m in sorted(metrics.items())
                if isinstance(m, Histogram)
            },
        }

    def reset(self) -> None:
        """Zero every metric, keeping registrations."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def clear(self) -> None:
        """Drop every metric registration."""
        with self._lock:
            self._metrics.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def counter(name: str) -> Counter:
    """Get-or-create a counter on the default registry."""
    return _default_registry.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return _default_registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return _default_registry.histogram(name)
