"""Persisting pattern sets.

A deployed GUI needs its displayed panel to survive restarts and be
shippable between the maintenance backend and the interface frontend.
These helpers serialise a :class:`~repro.patterns.pattern.PatternSet`
(IDs, provenance and graphs) to JSON and back, preserving pattern IDs so
index TP/EP columns stay valid across a reload.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..graph.io import FormatError, graph_from_dict, graph_to_dict
from .pattern import PatternSet

FORMAT_TAG = "repro-patternset-v1"


def pattern_set_to_dict(patterns: PatternSet) -> dict:
    return {
        "format": FORMAT_TAG,
        "patterns": [
            {
                "id": pattern.pattern_id,
                "provenance": pattern.provenance,
                "graph": graph_to_dict(pattern.graph),
            }
            for pattern in patterns
        ],
    }


def pattern_set_from_dict(payload: dict) -> PatternSet:
    if payload.get("format") != FORMAT_TAG:
        raise FormatError(
            f"unsupported pattern set format: {payload.get('format')!r}"
        )
    patterns = PatternSet()
    entries = sorted(payload["patterns"], key=lambda e: e["id"])
    for entry in entries:
        graph = graph_from_dict(entry["graph"])
        # Preserve original IDs by advancing the allocator.
        patterns.reserve_through(entry["id"])
        restored = patterns.add(graph, entry.get("provenance", ""))
        if restored.pattern_id != entry["id"]:
            raise FormatError("non-monotonic pattern ids in payload")
    return patterns


def dumps_pattern_set(patterns: PatternSet) -> str:
    return json.dumps(pattern_set_to_dict(patterns))


def loads_pattern_set(text: str) -> PatternSet:
    return pattern_set_from_dict(json.loads(text))


def write_pattern_set(path: str | Path, patterns: PatternSet) -> None:
    Path(path).write_text(dumps_pattern_set(patterns))


def read_pattern_set(path: str | Path) -> PatternSet:
    return loads_pattern_set(Path(path).read_text())
