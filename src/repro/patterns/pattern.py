"""Canned patterns and pattern sets.

A *canned pattern* is a small connected labelled graph displayed on the
visual query interface; the GUI exposes γ of them at a time (paper,
Sections 1–2).  :class:`PatternSet` is the mutable collection MIDAS
maintains: patterns carry stable integer IDs (used as TP/EP matrix
columns) and a provenance tag recording which algorithm produced them.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class CannedPattern:
    """One pattern on the interface."""

    pattern_id: int
    graph: LabeledGraph
    provenance: str = ""
    key: tuple = field(default=None, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.graph.is_connected():
            raise ValueError("canned patterns must be connected")
        if self.key is None:
            object.__setattr__(
                self, "key", canonical_certificate(self.graph)
            )

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CannedPattern #{self.pattern_id} |V|={self.num_vertices} "
            f"|E|={self.num_edges} from={self.provenance or '?'}>"
        )


class PatternSet:
    """The ordered set of canned patterns currently on the GUI."""

    def __init__(self) -> None:
        self._patterns: dict[int, CannedPattern] = {}
        self._keys: set[tuple] = set()
        self._next_id = 0

    # ------------------------------------------------------------------
    # container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[CannedPattern]:
        for pattern_id in sorted(self._patterns):
            yield self._patterns[pattern_id]

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._patterns

    def get(self, pattern_id: int) -> CannedPattern:
        return self._patterns[pattern_id]

    def ids(self) -> list[int]:
        return sorted(self._patterns)

    def graphs(self) -> dict[int, LabeledGraph]:
        """Mapping pattern-ID → graph (the view index columns use)."""
        return {pid: p.graph for pid, p in self._patterns.items()}

    def patterns(self) -> list[CannedPattern]:
        return list(self)

    def has_isomorphic(self, graph: LabeledGraph) -> bool:
        """True when an isomorphic pattern is already displayed."""
        return canonical_certificate(graph) in self._keys

    def size_distribution(self) -> list[int]:
        """Edge counts of the displayed patterns (for the KS test)."""
        return sorted(p.num_edges for p in self)

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------
    def next_pattern_id(self) -> int:
        """The id the next :meth:`add` will assign."""
        return self._next_id

    def reserve_through(self, pattern_id: int) -> None:
        """Advance the allocator so the next assigned id is ≥ *pattern_id*.

        Deserialisers use this to re-create explicit id spaces without
        reaching into allocator internals (mirrors
        :meth:`repro.store.base.GraphStore.reserve_through`).
        """
        self._next_id = max(self._next_id, pattern_id)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, graph: LabeledGraph, provenance: str = "") -> CannedPattern:
        """Display a new pattern; isomorphic duplicates are rejected."""
        pattern = CannedPattern(self._next_id, graph, provenance)
        if pattern.key in self._keys:
            raise ValueError("an isomorphic pattern is already displayed")
        self._next_id += 1
        self._patterns[pattern.pattern_id] = pattern
        self._keys.add(pattern.key)
        return pattern

    def remove(self, pattern_id: int) -> CannedPattern:
        try:
            pattern = self._patterns.pop(pattern_id)
        except KeyError:
            raise KeyError(f"no pattern with id {pattern_id}") from None
        self._keys.discard(pattern.key)
        return pattern

    def swap(
        self, old_id: int, graph: LabeledGraph, provenance: str = ""
    ) -> CannedPattern:
        """Replace pattern *old_id* with a new pattern atomically."""
        if old_id not in self._patterns:
            raise KeyError(f"no pattern with id {old_id}")
        incoming = CannedPattern(self._next_id, graph, provenance)
        if incoming.key in self._keys and incoming.key != self._patterns[old_id].key:
            raise ValueError("an isomorphic pattern is already displayed")
        self.remove(old_id)
        self._next_id += 1
        self._patterns[incoming.pattern_id] = incoming
        self._keys.add(incoming.key)
        return incoming

    def copy(self) -> "PatternSet":
        clone = PatternSet()
        clone._patterns = dict(self._patterns)
        clone._keys = set(self._keys)
        clone._next_id = self._next_id
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PatternSet γ={len(self._patterns)}>"
