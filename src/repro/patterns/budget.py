"""The pattern budget ``b = (η_min, η_max, γ)``.

Definition 3.1: η_min/η_max bound pattern sizes (in edges), γ is the
number of patterns displayed, and at most ``⌈γ / (η_max − η_min + 1)⌉``
patterns of each size are shown so the display spans the size range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PatternBudget:
    """Size and count constraints on the displayed pattern set."""

    eta_min: int = 3
    eta_max: int = 12
    gamma: int = 30

    def __post_init__(self) -> None:
        if self.eta_min <= 2:
            raise ValueError(
                "eta_min must exceed 2 (the paper handles <=2 separately)"
            )
        if self.eta_max < self.eta_min:
            raise ValueError("eta_max must be >= eta_min")
        if self.gamma < 1:
            raise ValueError("gamma must be positive")

    @property
    def num_sizes(self) -> int:
        return self.eta_max - self.eta_min + 1

    @property
    def per_size_cap(self) -> int:
        """Maximum number of displayed patterns of any single size."""
        return math.ceil(self.gamma / self.num_sizes)

    def sizes(self) -> range:
        """The admissible pattern sizes (in edges)."""
        return range(self.eta_min, self.eta_max + 1)

    def admits_size(self, num_edges: int) -> bool:
        return self.eta_min <= num_edges <= self.eta_max

    def size_quota(self) -> dict[int, int]:
        """Per-size display quota honouring both γ and the per-size cap.

        Quotas are distributed round-robin from the smallest size so that
        they sum to exactly γ and no quota exceeds :attr:`per_size_cap`.
        """
        quota = dict.fromkeys(self.sizes(), 0)
        remaining = self.gamma
        while remaining > 0:
            progressed = False
            for size in self.sizes():
                if remaining == 0:
                    break
                if quota[size] < self.per_size_cap:
                    quota[size] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                break
        return quota
