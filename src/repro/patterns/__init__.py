"""Canned patterns: containers, budgets and quality metrics."""

from .budget import PatternBudget
from .metrics import (
    CoverageOracle,
    catapult_pattern_score,
    cognitive_load,
    diversity,
    label_cover,
    label_coverage,
    midas_pattern_score,
    pattern_set_quality,
)
from .pattern import CannedPattern, PatternSet
from .serialization import (
    dumps_pattern_set,
    loads_pattern_set,
    read_pattern_set,
    write_pattern_set,
)

__all__ = [
    "CannedPattern",
    "CoverageOracle",
    "PatternBudget",
    "PatternSet",
    "catapult_pattern_score",
    "dumps_pattern_set",
    "loads_pattern_set",
    "read_pattern_set",
    "write_pattern_set",
    "cognitive_load",
    "diversity",
    "label_cover",
    "label_coverage",
    "midas_pattern_score",
    "pattern_set_quality",
]
