"""Quality metrics of canned patterns and pattern sets.

Implements every measure of Sections 2.2 and 6.1:

* subgraph coverage ``scov`` and label coverage ``lcov``;
* cognitive load ``cog(p) = |E_p| × ρ_p``;
* diversity ``div(p, P∖p) = min GED`` (method selectable: CATAPULT uses
  the GED_l lower bound, MIDAS the tighter GED'_l);
* the CATAPULT pattern score ``s_p = ccov × lcov × div/cog``
  (Definition 2.1) and the MIDAS score ``s'_p = scov × lcov × div/cog``;
* set-level aggregates ``f_scov``, ``f_lcov``, ``f_div``, ``f_cog`` and
  the multiplicative set score ``s'_P``;
* the loss/benefit scores of the swap strategy (Definition 6.2, read as
  marginal set-coverage deltas).

:class:`CoverageOracle` is the workhorse: it memoises the cover set of
each pattern (by canonical key) over a fixed sample of the database,
optionally routing through the FCT/IFE containment prefilter so repeated
swap evaluations stay cheap.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Mapping

from ..cache.stores import cached_ged_value, caching_enabled, get_caches
from ..covindex.engine import CoverageEngine, covindex_enabled
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..index.maintenance import IndexPair
from ..isomorphism.matcher import contains
from ..obs import get_registry
from ..parallel import shared
from ..parallel.kernels import contains_view_kernel
from ..parallel.pool import current_pool
from .pattern import CannedPattern, PatternSet


def cognitive_load(pattern: LabeledGraph) -> float:
    """``cog(p) = |E_p| × ρ_p`` where ρ is graph density (Section 2.2)."""
    return pattern.num_edges * pattern.density()


def diversity(
    pattern: LabeledGraph,
    others: Iterable[LabeledGraph],
    method: str = "tight_lower",
) -> float:
    """``div(p, P∖p) = min_{p_i} GED(p, p_i)``; +inf with no others.

    Distances route through the canonical-form GED cache when caching
    is enabled (:mod:`repro.cache`); a hit is byte-identical to
    recomputing because only full-fidelity values are served.
    """
    distances = [
        cached_ged_value(pattern, other, method) for other in others
    ]
    return float(min(distances)) if distances else float("inf")


def label_cover(
    pattern: LabeledGraph, graphs: Mapping[int, LabeledGraph]
) -> set[int]:
    """Graphs containing at least one edge label of *pattern*."""
    wanted = pattern.edge_label_set()
    covered: set[int] = set()
    for graph_id, graph in graphs.items():
        if graph.edge_label_set() & wanted:
            covered.add(graph_id)
    return covered


def label_coverage(
    pattern: LabeledGraph, graphs: Mapping[int, LabeledGraph]
) -> float:
    """``lcov(p, D)`` over the supplied graphs."""
    if not graphs:
        return 0.0
    return len(label_cover(pattern, graphs)) / len(graphs)


class CoverageOracle:
    """Memoised subgraph/label coverage over a (sampled) database view.

    Parameters
    ----------
    graphs:
        The graphs coverage is evaluated on — typically the lazy sample
        ``D_s``, but the full database works too.
    index_pair:
        Optional FCT/IFE indices; when provided, containment checks only
        run on graphs surviving the count prefilter (Section 6.1).
    engine:
        Optional :class:`~repro.covindex.engine.CoverageEngine` over the
        same view.  When attached (or auto-built because the ambient
        ``covindex`` toggle is on), cover queries route through its
        posting-list filter and VF2 domain seeding instead of the
        FCT/IFE prefilter, and :meth:`apply_update` maintains verdicts
        incrementally.  Cover sets are identical either way — the filter
        only skips hosts proven not to match.
    """

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        index_pair: IndexPair | None = None,
        engine: CoverageEngine | None = None,
    ) -> None:
        self._graphs = dict(graphs)
        self._index_pair = index_pair
        if engine is None and covindex_enabled():
            engine = CoverageEngine(self._graphs)
        self._engine = engine
        self._cover_cache: dict[tuple, frozenset[int]] = {}
        self._lcov_cache: dict[tuple, frozenset[int]] = {}
        # Token of this oracle's published host view (repro.parallel.shared),
        # allocated lazily on the first parallel verification.
        self._view_token: int | None = None
        #: Number of VF2 containment tests actually executed (for the
        #: index-effectiveness experiments).
        self.isomorphism_tests = 0

    def __getstate__(self):
        # Published host views are process-local, fork-inherited state;
        # a pickled or deep-copied oracle (e.g. the transactional
        # snapshot backup in Midas.apply_update) must not alias the live
        # view, so the copy drops the token and republishes lazily.
        state = self.__dict__.copy()
        state["_view_token"] = None
        return state

    @property
    def universe_size(self) -> int:
        return len(self._graphs)

    @property
    def delta_capable(self) -> bool:
        """Whether :meth:`apply_update` preserves per-graph verdicts."""
        return self._engine is not None

    def graph_ids(self) -> set[int]:
        return set(self._graphs)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def apply_update(
        self,
        added: Mapping[int, LabeledGraph],
        removed_ids: Iterable[int],
    ) -> None:
        """Reconcile the oracle's view with a database batch in place.

        The memo tables key by pattern certificate but their *values*
        are graph-id sets over the old view, so every entry is stale
        the moment the view changes — both tables are dropped
        unconditionally (this was silently wrong before: a deleted
        graph stayed in cached cover sets and ``scov`` never moved).
        With an engine attached the per-graph verdicts survive inside
        its bitsets, so the next :meth:`cover` call re-verifies only
        the filtered delta instead of the whole view.
        """
        removed = [gid for gid in removed_ids if gid in self._graphs]
        for graph_id in removed:
            del self._graphs[graph_id]
        for graph_id, graph in added.items():
            self._graphs[graph_id] = graph
        if self._engine is not None:
            self._engine.apply_update(added, removed)
        if self._view_token is not None:
            # Republish under the same token: the generation bump is what
            # invalidates persistent workers holding the pre-batch view.
            shared.publish_view(self._graphs, view_id=self._view_token)
        self._cover_cache.clear()
        self._lcov_cache.clear()

    def preregister(self, patterns: Iterable[LabeledGraph]) -> None:
        """Register *patterns* with the attached engine ahead of queries.

        A no-op without an engine.  The maintainer calls this right
        after reconciling a batch so the displayed set's registrations
        (and, when the fragment network is on, their shared fragment
        chains) are warm before the scoring passes start querying —
        the network sees the whole overlapping set at once instead of
        discovering it pattern by pattern.
        """
        if self._engine is None:
            return
        for pattern in patterns:
            self._engine.register(canonical_certificate(pattern), pattern)

    # ------------------------------------------------------------------
    def cover(self, pattern: LabeledGraph) -> frozenset[int]:
        """``G_scov(p)`` within this oracle's graph view (cached).

        Containment checks consult the canonical-form embedding cache
        when caching is enabled, and the remaining (uncached) hosts fan
        out through the ambient :class:`~repro.parallel.pool.KernelPool`
        when one is installed.  Both paths return the same cover set as
        the plain serial loop; ``isomorphism_tests`` counts only the
        VF2 tests actually executed.
        """
        key = canonical_certificate(pattern)
        cached = self._cover_cache.get(key)
        if cached is not None:
            return cached
        if self._engine is not None:
            result = self._engine_cover(key, pattern)
        else:
            result = self._scan_cover(pattern)
        self._cover_cache[key] = result
        return result

    def _scan_cover(self, pattern: LabeledGraph) -> frozenset[int]:
        """The unfiltered path: FCT/IFE prefilter + full verification."""
        if self._index_pair is not None:
            candidates = self._index_pair.candidate_graphs(
                pattern, self._graphs
            )
        else:
            candidates = set(self._graphs)
        caches = get_caches() if caching_enabled() else None
        covered = set()
        pending: list[int] = []
        for graph_id in sorted(candidates):
            if caches is not None:
                verdict = caches.embeddings.get_contains(
                    pattern, self._graphs[graph_id]
                )
                if verdict is not None:
                    if verdict:
                        covered.add(graph_id)
                    continue
            pending.append(graph_id)
        verdicts = self._verify(pattern, pending)
        for graph_id, verdict in zip(pending, verdicts):
            if verdict:
                covered.add(graph_id)
        return frozenset(covered)

    def _engine_cover(
        self, key: tuple, pattern: LabeledGraph
    ) -> frozenset[int]:
        """The engine path: posting-list filter + lazy delta verification.

        Only graphs whose verdict is unknown (fresh view, or inserted
        since the last query of this pattern) reach verification, and
        each verification is seeded with the engine's vertex domains.

        Verification runs on the engine's *stored* pattern for *key*,
        not the caller's object: isomorphic patterns share the canonical
        key but may permute vertex IDs, and the seeded domains are keyed
        by the stored pattern's vertex IDs.  The verdicts (and the
        embedding-cache keys, which are canonical) are identical either
        way.
        """
        engine = self._engine
        engine.register(key, pattern)
        pattern = engine.pattern(key)
        pending = engine.pending(key)
        caches = get_caches() if caching_enabled() else None
        unresolved: list[int] = []
        for graph_id in pending:
            if caches is not None:
                verdict = caches.embeddings.get_contains(
                    pattern, self._graphs[graph_id]
                )
                if verdict is not None:
                    engine.commit(key, graph_id, verdict)
                    continue
            unresolved.append(graph_id)
        domains = {
            graph_id: engine.vertex_domains(key, graph_id)
            for graph_id in unresolved
        }
        verdicts = self._verify(pattern, unresolved, domains)
        for graph_id, verdict in zip(unresolved, verdicts):
            engine.commit(key, graph_id, verdict)
        return engine.cover_ids(key)

    def _host_view(self) -> shared.HostView:
        """This oracle's live published host view (publish on first use).

        Parallel verification ships only ``(graph_id, domains)`` pairs;
        workers resolve the graphs from the fork-inherited view this
        returns.  The token is allocated once and retired when the
        oracle is garbage-collected; :meth:`apply_update` republishes
        under the same token so stale workers are invalidated by the
        generation/epoch bump.
        """
        if self._view_token is not None:
            view = shared.get_view(self._view_token)
            if view is not None and view.graphs is self._graphs:
                return view
        view = shared.publish_view(self._graphs, view_id=self._view_token)
        if self._view_token is None:
            self._view_token = view.view_id
            weakref.finalize(self, shared.retire_view, view.view_id)
        return view

    def _verify(
        self,
        pattern: LabeledGraph,
        pending: list[int],
        domains: Mapping[int, Mapping] | None = None,
    ) -> list[bool]:
        """Run VF2 on *pending* hosts (pool fan-out when worthwhile).

        Verdicts are written back to the embedding cache when caching is
        enabled; ``isomorphism_tests`` counts exactly these tests.
        """
        get_registry().counter("vf2.cover_calls").add(len(pending))
        caches = get_caches() if caching_enabled() else None
        pool = current_pool()
        if pool.worth_parallelizing(len(pending)):
            view = self._host_view()
            verdicts = pool.map(
                contains_view_kernel,
                [
                    (
                        graph_id,
                        None if domains is None else domains[graph_id],
                    )
                    for graph_id in pending
                ],
                payload=(view.view_id, view.generation, pattern),
            )
        else:
            verdicts = [
                contains(
                    self._graphs[graph_id],
                    pattern,
                    domains=None if domains is None else domains[graph_id],
                )
                for graph_id in pending
            ]
        self.isomorphism_tests += len(pending)
        if caches is not None:
            for graph_id, verdict in zip(pending, verdicts):
                host = self._graphs[graph_id]
                caches.embeddings.put_contains(pattern, host, verdict)
                caches.embeddings.bind(graph_id, host)
        return verdicts

    def scov(self, pattern: LabeledGraph) -> float:
        """``scov(p) = |G_p| / |D_s|``."""
        if not self._graphs:
            return 0.0
        return len(self.cover(pattern)) / len(self._graphs)

    def label_cover(self, pattern: LabeledGraph) -> frozenset[int]:
        key = canonical_certificate(pattern)
        cached = self._lcov_cache.get(key)
        if cached is not None:
            return cached
        result = frozenset(label_cover(pattern, self._graphs))
        self._lcov_cache[key] = result
        return result

    def lcov(self, pattern: LabeledGraph) -> float:
        if not self._graphs:
            return 0.0
        return len(self.label_cover(pattern)) / len(self._graphs)

    def graphs_with_edge_label(self, label: tuple[str, str]) -> set[int]:
        """Graphs in this view containing an edge with *label*."""
        return {
            graph_id
            for graph_id, graph in self._graphs.items()
            if label in graph.edge_label_set()
        }

    # ------------------------------------------------------------------
    # set-level aggregates
    # ------------------------------------------------------------------
    def union_cover(
        self, patterns: Iterable[LabeledGraph]
    ) -> frozenset[int]:
        covered: set[int] = set()
        for pattern in patterns:
            covered |= self.cover(pattern)
        return frozenset(covered)

    def unique_cover(
        self,
        pattern: LabeledGraph,
        others: Iterable[LabeledGraph],
    ) -> frozenset[int]:
        """``G_scov(p) ∖ ⋃_{p'≠p} G_scov(p')`` (Definition 5.5)."""
        return self.cover(pattern) - self.union_cover(others)

    def set_scov(self, patterns: Iterable[LabeledGraph]) -> float:
        if not self._graphs:
            return 0.0
        return len(self.union_cover(patterns)) / len(self._graphs)

    def set_lcov(self, patterns: Iterable[LabeledGraph]) -> float:
        if not self._graphs:
            return 0.0
        covered: set[int] = set()
        for pattern in patterns:
            covered |= self.label_cover(pattern)
        return len(covered) / len(self._graphs)

    # ------------------------------------------------------------------
    # swap scores (Definition 6.2)
    # ------------------------------------------------------------------
    def loss_score(
        self, pattern: LabeledGraph, others: Iterable[LabeledGraph]
    ) -> float:
        """Set coverage lost if *pattern* were removed from P."""
        if not self._graphs:
            return 0.0
        return len(self.unique_cover(pattern, others)) / len(self._graphs)

    def benefit_score(
        self, candidate: LabeledGraph, current: Iterable[LabeledGraph]
    ) -> float:
        """Set coverage gained if *candidate* were added to P."""
        if not self._graphs:
            return 0.0
        gained = self.cover(candidate) - self.union_cover(current)
        return len(gained) / len(self._graphs)


# ----------------------------------------------------------------------
# pattern scores
# ----------------------------------------------------------------------
def midas_pattern_score(
    pattern: LabeledGraph,
    others: list[LabeledGraph],
    oracle: CoverageOracle,
    ged_method: str = "tight_lower",
) -> float:
    """``s'_p = scov(p) × lcov(p) × div(p, P∖p) / cog(p)`` (Section 6.1)."""
    load = cognitive_load(pattern)
    if load <= 0:
        return 0.0
    div = diversity(pattern, others, method=ged_method)
    if div == float("inf"):
        div = pattern.num_edges + pattern.num_vertices  # lone pattern
    return oracle.scov(pattern) * oracle.lcov(pattern) * div / load


def catapult_pattern_score(
    pattern: LabeledGraph,
    others: list[LabeledGraph],
    cluster_coverage: float,
    oracle: CoverageOracle,
    ged_method: str = "lower",
) -> float:
    """``s_p = ccov × lcov × div/cog`` (Definition 2.1)."""
    load = cognitive_load(pattern)
    if load <= 0:
        return 0.0
    div = diversity(pattern, others, method=ged_method)
    if div == float("inf"):
        div = pattern.num_edges + pattern.num_vertices
    return cluster_coverage * oracle.lcov(pattern) * div / load


def pattern_set_quality(
    pattern_set: PatternSet | list[CannedPattern],
    oracle: CoverageOracle,
    ged_method: str = "tight_lower",
) -> dict[str, float]:
    """The four set-level measures plus the multiplicative set score.

    Returns ``{"scov", "lcov", "div", "cog", "score"}`` where score is
    ``f_scov × f_lcov × f_div / f_cog`` (Section 6.1).
    """
    patterns = [
        p.graph for p in (pattern_set if isinstance(pattern_set, list) else list(pattern_set))
    ]
    if not patterns:
        return {"scov": 0.0, "lcov": 0.0, "div": 0.0, "cog": 0.0, "score": 0.0}
    f_scov = oracle.set_scov(patterns)
    f_lcov = oracle.set_lcov(patterns)
    divs = [
        diversity(p, patterns[:i] + patterns[i + 1 :], method=ged_method)
        for i, p in enumerate(patterns)
    ]
    finite = [d for d in divs if d != float("inf")]
    f_div = min(finite) if finite else 0.0
    f_cog = max(cognitive_load(p) for p in patterns)
    score = f_scov * f_lcov * f_div / f_cog if f_cog > 0 else 0.0
    return {
        "scov": f_scov,
        "lcov": f_lcov,
        "div": f_div,
        "cog": f_cog,
        "score": score,
    }
