"""Runtime invariant guards: cheap always-on assertions, opt-in.

Production code marks structural invariants with guard calls that are
free when checking is off (one global load per call site)::

    from ..check.invariants import check_enabled
    ...
    if check_enabled():
        check_engine(self)

Checking is enabled ambiently — ``ExecutionConfig(check=True)`` /
``--check`` on the CLI, or :func:`use_check` in tests — mirroring the
cache and covindex toggles.  A failed guard raises a typed
:class:`~repro.exceptions.InvariantViolation`; inside a transactional
``Midas.apply_update`` round the resilience layer maps that to a
rolled-back round (re-raised as ``RolledBack`` with the violation
chained), so a corrupted round can never commit.

Every guard evaluation bumps ``check.assertions`` and every failure
bumps ``check.violations`` (catalogued in ``docs/OBSERVABILITY.md``);
the invariant catalogue itself lives in ``docs/CORRECTNESS.md``.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..exceptions import InvariantViolation
from ..obs import get_registry

# ----------------------------------------------------------------------
# ambient enable flag (mirrors repro.cache.stores / repro.covindex.engine)
# ----------------------------------------------------------------------
_enabled = False


def set_check(enabled: bool) -> None:
    """Globally enable/disable invariant checking (CLI ``--check``)."""
    global _enabled
    _enabled = enabled


def check_enabled() -> bool:
    return _enabled


@contextmanager
def use_check(enabled: bool = True):
    """Enable (or disable) checking for the dynamic extent of the block."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous


# ----------------------------------------------------------------------
# the guard primitive
# ----------------------------------------------------------------------
def invariant(condition: bool, name: str, detail: str = "") -> None:
    """Assert *condition*; raise :class:`InvariantViolation` otherwise.

    Callers gate on :func:`check_enabled` *before* computing anything
    non-trivial for *condition*, so disabled guards cost one global
    load.  This function itself does not re-check the flag: an explicit
    call always counts and always raises on failure, which is what the
    guard helpers below and direct test use want.
    """
    registry = get_registry()
    registry.counter("check.assertions").add(1)
    if condition:
        return
    registry.counter("check.violations").add(1)
    raise InvariantViolation(name, detail)


# ----------------------------------------------------------------------
# guard helpers (the invariant catalogue, see docs/CORRECTNESS.md)
# ----------------------------------------------------------------------
def check_engine(engine) -> None:
    """Bitset consistency of a :class:`~repro.covindex.engine.CoverageEngine`.

    * ``verdict ⊆ seen`` — a graph can only match after its verdict is
      known;
    * ``seen ⊆ universe`` — no verdict bits survive for graphs outside
      the indexed view;
    * the incremental cover-set mirror agrees with the match bits;
    * every graph of the view is indexed (posting membership recorded).
    """
    universe = engine.index.universe_bits
    for key, (match, seen) in engine.export_verdicts().items():
        invariant(
            match & ~seen == 0,
            "covindex.verdict_subset_seen",
            f"pattern {key!r} has match bits outside seen bits",
        )
        invariant(
            seen & ~universe == 0,
            "covindex.seen_subset_universe",
            f"pattern {key!r} has verdict bits for unindexed graphs",
        )
        invariant(
            sum(1 << gid for gid in engine._cover_sets[key]) == match,
            "covindex.cover_mirror_agrees",
            f"pattern {key!r} cover-set mirror drifted from match bits",
        )
    for graph_id in engine.graphs:
        invariant(
            bool(universe & (1 << graph_id)),
            "covindex.graph_indexed",
            f"graph {graph_id} is in the view but not in the index universe",
        )
    if engine.network is not None:
        check_fragment_network(engine.network, universe)


def check_fragment_network(network, universe: int | None = None) -> None:
    """Structural consistency of a :class:`FragmentNetwork`.

    * every materialized fragment view obeys the engine's verdict
      algebra (``match ⊆ seen ⊆ universe``);
    * actual view residency never exceeds the configured byte budget;
    * per-fragment refcounts agree with the registered pattern chains.
    """
    if universe is None:
        universe = network._index.universe_value
    for fragment_key in network.fragment_keys():
        state = network.fragment(fragment_key)
        if not state.materialized:
            continue
        invariant(
            state.match_bits & ~state.seen_bits == 0,
            "covindex.frag_match_subset_seen",
            f"fragment {fragment_key!r} has match bits outside seen bits",
        )
        invariant(
            state.seen_bits & ~universe == 0,
            "covindex.frag_seen_subset_universe",
            f"fragment {fragment_key!r} has verdict bits for unindexed "
            "graphs",
        )
    invariant(
        network.view_bytes() <= network.budget_bytes,
        "covindex.frag_budget_respected",
        f"materialized views hold {network.view_bytes()} bytes, budget "
        f"{network.budget_bytes}",
    )
    expected: dict[tuple, int] = {}
    for key in list(network._chains):
        for fragment_key in network.chain(key):
            expected[fragment_key] = expected.get(fragment_key, 0) + 1
    actual = {
        fragment_key: network.fragment(fragment_key).refcount
        for fragment_key in network.fragment_keys()
    }
    invariant(
        expected == actual,
        "covindex.frag_refcounts_agree",
        "fragment refcounts drifted from the registered chains",
    )


def check_coverage_index(index, graphs) -> None:
    """Posting-list consistency of a :class:`CoverageIndex` over *graphs*.

    Every graph of the view must be registered under exactly the posting
    keys it satisfies, and no posting list may be empty (empty lists are
    deleted eagerly by ``remove_graph``).
    """
    from ..covindex.index import graph_posting_keys

    invariant(
        set(index._keys_by_graph) == set(graphs),
        "covindex.index_view_agrees",
        f"indexed ids {sorted(index._keys_by_graph)} != view ids "
        f"{sorted(graphs)}",
    )
    for graph_id, graph in graphs.items():
        expected = graph_posting_keys(graph)
        invariant(
            index._keys_by_graph.get(graph_id) == expected,
            "covindex.posting_membership",
            f"graph {graph_id} posting keys drifted",
        )
    for key, bits in index.posting_items():
        invariant(
            bits != 0,
            "covindex.no_empty_postings",
            f"posting list {key!r} is empty but still present",
        )


def check_cache_fidelity(existing_rank: int, new_rank: int, key: str) -> None:
    """Fidelity-rank monotonicity of a cache upgrade (never downgrade)."""
    invariant(
        new_rank >= existing_rank,
        "cache.fidelity_monotone",
        f"entry {key} would downgrade fidelity rank "
        f"{existing_rank} -> {new_rank}",
    )


def check_pattern_budget(patterns, budget) -> None:
    """Pattern-set bounds after a maintenance round (Definition 3.1).

    The displayed set never exceeds γ patterns and every displayed
    pattern stays inside the ``[η_min, η_max]`` size band (the η ≤ 2
    tray is maintained separately and is not part of this set).
    """
    invariant(
        len(patterns) <= budget.gamma,
        "midas.pattern_count_bound",
        f"{len(patterns)} patterns displayed, budget gamma={budget.gamma}",
    )
    for pattern in patterns:
        invariant(
            budget.eta_min <= pattern.num_edges <= budget.eta_max,
            "midas.pattern_size_bound",
            f"pattern with {pattern.num_edges} edges outside "
            f"[{budget.eta_min}, {budget.eta_max}]",
        )


__all__ = [
    "check_cache_fidelity",
    "check_coverage_index",
    "check_enabled",
    "check_engine",
    "check_fragment_network",
    "check_pattern_budget",
    "invariant",
    "set_check",
    "use_check",
]
