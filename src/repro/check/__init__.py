"""Differential correctness harness (see ``docs/CORRECTNESS.md``).

Three layers:

* :mod:`repro.check.oracles` — a registry of fast-path vs reference
  differential checks and metamorphic properties, each a pure function
  ``(workload) -> Mismatch | None``;
* :mod:`repro.check.fuzz` / :mod:`repro.check.shrink` — a deterministic
  seeded workload fuzzer that drives any oracle, greedily minimises
  failures, and round-trips them through replayable JSON artifacts
  (CLI: ``python -m repro check``);
* :mod:`repro.check.invariants` — cheap runtime invariant guards wired
  into the covindex engine, the GED cache and MIDAS maintenance rounds,
  armed via ``ExecutionConfig(check=True)`` / ``--check`` and raising
  :class:`~repro.exceptions.InvariantViolation` on failure.

Only :mod:`~repro.check.invariants` loads eagerly — production modules
(the covindex engine, the cache stores, the maintainer) import their
guards from here, while the oracle/fuzz layers import those same
production modules; lazy loading below breaks that cycle.
"""

from .invariants import check_enabled, invariant, set_check, use_check

#: Lazily resolved exports: attribute name -> submodule.
_LAZY = {
    "Mismatch": "workload",
    "Workload": "workload",
    "WorkloadBatch": "workload",
    "permuted_copy": "workload",
    "workload_from_dict": "workload",
    "workload_from_json": "workload",
    "workload_to_dict": "workload",
    "workload_to_json": "workload",
    "ORACLES": "oracles",
    "Oracle": "oracles",
    "get_oracle": "oracles",
    "oracle_names": "oracles",
    "shrink": "shrink",
    "FuzzReport": "fuzz",
    "build_artifact": "fuzz",
    "case_rng": "fuzz",
    "evaluate": "fuzz",
    "load_artifact": "fuzz",
    "random_workload": "fuzz",
    "recorded_mismatch": "fuzz",
    "replay": "fuzz",
    "run_oracle": "fuzz",
    "write_artifact": "fuzz",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "check_enabled",
    "invariant",
    "set_check",
    "use_check",
    *sorted(_LAZY),
]
