"""Deterministic workload fuzzing, shrinking, and replay artifacts.

Every random choice flows through one :class:`random.Random` seeded per
case from ``(seed, case_index)``, so a failure reported as
``--oracle X --seed S`` is exactly reproducible — and once shrunk, the
minimal workload plus its expected mismatch are serialised to a JSON
*replay artifact* that :func:`replay` re-evaluates without any
randomness at all.

The generators here are also the single source of random graphs for the
property-based test suites (``tests/test_property_based.py`` routes its
hypothesis strategies through :func:`random_labeled_graph` /
:func:`random_connected_pattern` instead of keeping private copies).
"""

from __future__ import annotations

import json
import random
import time
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from ..datasets.molecules import MoleculeGenerator
from ..graph.io import FormatError
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from .invariants import use_check
from .oracles import Oracle, get_oracle
from .shrink import shrink
from .workload import (
    Mismatch,
    Workload,
    WorkloadBatch,
    permuted_copy,
    workload_from_dict,
    workload_to_dict,
)

ARTIFACT_FORMAT = "repro-check-artifact-v1"

#: Default vertex-label alphabet of the random generators (the heavy
#: atoms of the molecule profiles, so fuzz and dataset graphs mix).
LABELS = "CNOS"


# ----------------------------------------------------------------------
# graph generators (deduplicated from the property-based test suites)
# ----------------------------------------------------------------------
def random_labeled_graph(
    rng: random.Random,
    max_vertices: int = 7,
    labels: str = LABELS,
    edge_probability: float = 0.4,
) -> LabeledGraph:
    """A random labelled simple graph with 0..n-1 integer vertex IDs."""
    n = rng.randint(1, max_vertices)
    graph = LabeledGraph()
    for v in range(n):
        graph.add_vertex(v, rng.choice(labels))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def random_labeled_tree(
    rng: random.Random, max_vertices: int = 8, labels: str = LABELS
) -> LabeledGraph:
    """A random labelled free tree (each vertex attaches to a prior one)."""
    n = rng.randint(1, max_vertices)
    graph = LabeledGraph()
    graph.add_vertex(0, rng.choice(labels))
    for v in range(1, n):
        graph.add_vertex(v, rng.choice(labels))
        graph.add_edge(v, rng.randrange(v))
    return graph


def random_connected_pattern(
    rng: random.Random,
    min_edges: int = 1,
    max_edges: int = 5,
    max_vertices: int | None = None,
    labels: str = LABELS,
) -> LabeledGraph:
    """A connected pattern grown edge-by-edge (new vertex or cycle close)."""
    target_edges = rng.randint(min_edges, max_edges)
    graph = LabeledGraph()
    graph.add_vertex(0, rng.choice(labels))
    graph.add_vertex(1, rng.choice(labels))
    graph.add_edge(0, 1)
    while graph.num_edges < target_edges:
        vertices = list(range(graph.num_vertices))
        anchor = rng.choice(vertices)
        can_grow = (
            max_vertices is None or graph.num_vertices < max_vertices
        )
        if can_grow and (len(vertices) < 3 or rng.random() < 0.7):
            new = graph.num_vertices
            graph.add_vertex(new, rng.choice(labels))
            graph.add_edge(anchor, new)
        else:
            other = rng.choice([v for v in vertices if v != anchor])
            if not graph.has_edge(anchor, other):
                graph.add_edge(anchor, other)
            elif not can_grow:
                break  # saturated: every allowed edge exists
    return graph


def _trimmed_molecule(
    rng: random.Random, max_vertices: int
) -> LabeledGraph:
    """A generator molecule truncated (BFS) to ``max_vertices`` vertices."""
    molecule = MoleculeGenerator(seed=rng.randrange(2**31)).generate()
    order = sorted(molecule.vertices(), key=repr)
    if len(order) > max_vertices:
        start = rng.choice(order)
        keep: list = []
        queue = [start]
        seen = {start}
        while queue and len(keep) < max_vertices:
            vertex = queue.pop(0)
            keep.append(vertex)
            for neighbor in sorted(molecule.neighbors(vertex), key=repr):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        kept = set(keep)
        renumber = {v: i for i, v in enumerate(sorted(kept, key=repr))}
        trimmed = LabeledGraph(name=molecule.name)
        for v in kept:
            trimmed.add_vertex(renumber[v], molecule.label(v))
        for u, v in molecule.edges():
            if u in kept and v in kept:
                trimmed.add_edge(renumber[u], renumber[v])
        return trimmed
    renumber = {v: i for i, v in enumerate(order)}
    normalized = LabeledGraph(name=molecule.name)
    for v in order:
        normalized.add_vertex(renumber[v], molecule.label(v))
    for u, v in molecule.edges():
        normalized.add_edge(renumber[u], renumber[v])
    return normalized


def _edge_subgraph(
    rng: random.Random,
    host: LabeledGraph,
    max_edges: int,
    max_vertices: int | None,
) -> LabeledGraph | None:
    """A connected edge-subgraph of *host* — a pattern that must cover it."""
    edges = list(host.edges())
    if not edges:
        return None
    start = rng.choice(edges)
    chosen = [start]
    vertices = {start[0], start[1]}
    target = rng.randint(1, max_edges)
    while len(chosen) < target:
        frontier = [
            (u, v)
            for u, v in edges
            if (u in vertices) != (v in vertices)
            or (u in vertices and v in vertices and (u, v) not in chosen)
        ]
        if max_vertices is not None:
            frontier = [
                (u, v)
                for u, v in frontier
                if len(vertices | {u, v}) <= max_vertices
            ]
        if not frontier:
            break
        edge = rng.choice(frontier)
        chosen.append(edge)
        vertices |= {edge[0], edge[1]}
    renumber = {v: i for i, v in enumerate(sorted(vertices, key=repr))}
    pattern = LabeledGraph()
    for v in vertices:
        pattern.add_vertex(renumber[v], host.label(v))
    for u, v in chosen:
        pattern.add_edge(renumber[u], renumber[v])
    return pattern


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
def random_workload(
    rng: random.Random,
    *,
    num_graphs: int = 5,
    max_graph_vertices: int = 9,
    num_patterns: int = 3,
    min_pattern_edges: int = 1,
    max_pattern_edges: int = 4,
    max_pattern_vertices: int | None = None,
    num_batches: int = 2,
    insert_only: bool = False,
    max_deletion_fraction: float = 0.5,
    molecule_fraction: float = 0.3,
) -> Workload:
    """One adversarial workload: view + patterns + batch sequence.

    Patterns mix edge-subgraphs of hosts (guaranteed non-empty covers),
    free random connected patterns, and permuted isomorphic twins of
    earlier patterns — the PR-4 shared-canonical-key bug class.  Batches
    mix insertions, deletions (bounded by *max_deletion_fraction* of the
    current view) and occasional in-place replacements; *insert_only*
    restricts them to fresh insertions.
    """

    def host() -> LabeledGraph:
        if rng.random() < molecule_fraction:
            return _trimmed_molecule(rng, max_graph_vertices)
        if rng.random() < 0.3:
            return random_labeled_tree(rng, max_graph_vertices)
        return random_labeled_graph(rng, max_graph_vertices)

    graphs = {gid: host() for gid in range(rng.randint(1, num_graphs))}
    next_id = len(graphs)

    patterns: list[LabeledGraph] = []
    for _ in range(rng.randint(1, num_patterns)):
        roll = rng.random()
        pattern = None
        if roll < 0.45 and graphs:
            pattern = _edge_subgraph(
                rng,
                graphs[rng.choice(sorted(graphs))],
                max_pattern_edges,
                max_pattern_vertices,
            )
        elif roll < 0.6 and patterns:
            pattern = permuted_copy(
                rng.choice(patterns), rng.randrange(2**16)
            )
        if pattern is None:
            pattern = random_connected_pattern(
                rng,
                min_pattern_edges,
                max_pattern_edges,
                max_pattern_vertices,
            )
        patterns.append(pattern)

    view_ids = set(graphs)
    batches: list[WorkloadBatch] = []
    for _ in range(rng.randint(0, num_batches) if num_batches else 0):
        removed: tuple[int, ...] = ()
        if not insert_only and view_ids:
            cap = int(len(view_ids) * max_deletion_fraction)
            count = rng.randint(0, cap) if cap else 0
            removed = tuple(rng.sample(sorted(view_ids), count))
        added: dict[int, LabeledGraph] = {}
        for _ in range(rng.randint(0, 2)):
            survivors = sorted(view_ids - set(removed))
            if (
                not insert_only
                and survivors
                and rng.random() < 0.1
            ):
                gid = rng.choice(survivors)  # in-place replacement
            else:
                gid = next_id
                next_id += 1
            added[gid] = host()
        view_ids -= set(removed)
        view_ids |= set(added)
        batches.append(WorkloadBatch(added=added, removed=removed))

    return Workload(
        graphs=graphs, patterns=tuple(patterns), batches=tuple(batches)
    )


# ----------------------------------------------------------------------
# evaluation + fuzz loop
# ----------------------------------------------------------------------
def evaluate(oracle: Oracle, workload: Workload) -> Mismatch | None:
    """Run *oracle* on *workload* with invariant guards armed.

    Any escaped exception is itself a finding — converted into a
    ``Mismatch(code="exception")`` so crashes shrink and replay exactly
    like value disagreements.
    """
    registry = get_registry()
    registry.counter("check.fuzz_cases").add(1)
    with use_check(True):
        try:
            mismatch = oracle.fn(workload)
        except Exception as exc:  # noqa: BLE001 - crash == finding
            mismatch = Mismatch(
                oracle.name,
                "exception",
                {"type": type(exc).__name__, "message": str(exc)},
            )
    if mismatch is not None:
        registry.counter("check.mismatches").add(1)
    return mismatch


def case_rng(seed: int, case: int) -> random.Random:
    """The per-case RNG: stable under seed and case index only."""
    return random.Random((seed & 0xFFFFFFFF) * 1_000_003 + case)


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_oracle` campaign."""

    oracle: str
    seed: int
    budget: int
    cases: int
    mismatch: Mismatch | None = None
    workload: Workload | None = None
    original: Workload | None = None

    @property
    def ok(self) -> bool:
        return self.mismatch is None

    def summary(self) -> str:
        if self.ok:
            return (
                f"oracle {self.oracle!r}: {self.cases} cases passed "
                f"(seed {self.seed})"
            )
        lines = [
            f"oracle {self.oracle!r}: MISMATCH after {self.cases} cases "
            f"(seed {self.seed})",
            str(self.mismatch),
        ]
        if self.original is not None and self.workload is not None:
            lines.append(
                f"shrunk: {self.original.describe()} "
                f"-> {self.workload.describe()}"
            )
        return "\n".join(lines)


def run_oracle(
    name: str,
    seed: int = 0,
    budget: int = 100,
    shrink_failures: bool = True,
    time_budget_s: float | None = None,
    max_shrink_evals: int = 2000,
) -> FuzzReport:
    """Fuzz one oracle for up to *budget* cases (or *time_budget_s*).

    On the first mismatch the workload is greedily shrunk (preserving
    the mismatch signature) and the campaign stops — one minimal repro
    per run beats a pile of duplicates of the same bug.
    """
    oracle = get_oracle(name)
    deadline = (
        time.monotonic() + time_budget_s
        if time_budget_s is not None
        else None
    )
    cases = 0
    for case in range(budget):
        if deadline is not None and time.monotonic() > deadline:
            break
        workload = random_workload(
            case_rng(seed, case), **oracle.workload_kwargs
        )
        cases += 1
        mismatch = evaluate(oracle, workload)
        if mismatch is None:
            continue
        shrunk = workload
        final = mismatch
        if shrink_failures:
            signature = mismatch.signature()

            def still_fails(candidate: Workload) -> bool:
                found = evaluate(oracle, candidate)
                return (
                    found is not None
                    and found.signature() == signature
                )

            shrunk = shrink(
                workload, still_fails, max_evals=max_shrink_evals
            )
            final = evaluate(oracle, shrunk) or mismatch
        return FuzzReport(
            oracle=name,
            seed=seed,
            budget=budget,
            cases=cases,
            mismatch=final,
            workload=shrunk,
            original=workload,
        )
    return FuzzReport(oracle=name, seed=seed, budget=budget, cases=cases)


# ----------------------------------------------------------------------
# replay artifacts
# ----------------------------------------------------------------------
def build_artifact(report: FuzzReport) -> dict:
    """The JSON payload of a failed campaign (mismatch + minimal repro)."""
    if report.ok or report.workload is None:
        raise ValueError("cannot build an artifact from a passing report")
    return {
        "format": ARTIFACT_FORMAT,
        "oracle": report.oracle,
        "seed": report.seed,
        "mismatch": report.mismatch.to_dict(),
        "workload": workload_to_dict(report.workload),
        "original_size": (
            None
            if report.original is None
            else list(report.original.size())
        ),
        "shrunk_size": list(report.workload.size()),
    }


def write_artifact(path: str | Path, report: FuzzReport) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(build_artifact(report), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_artifact(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != ARTIFACT_FORMAT:
        raise FormatError(
            f"unsupported artifact format: {payload.get('format')!r}"
        )
    return payload


def replay(artifact: Mapping) -> Mismatch | None:
    """Re-evaluate an artifact's workload against its oracle.

    Returns the mismatch the oracle reports *now* — equal to the
    recorded one while the bug is alive, ``None`` once it is fixed.
    """
    get_registry().counter("check.replays").add(1)
    oracle = get_oracle(artifact["oracle"])
    workload = workload_from_dict(artifact["workload"])
    return evaluate(oracle, workload)


def recorded_mismatch(artifact: Mapping) -> Mismatch:
    """The mismatch stored in an artifact (what :func:`replay` is
    compared against)."""
    return Mismatch.from_dict(artifact["mismatch"])


__all__ = [
    "ARTIFACT_FORMAT",
    "FuzzReport",
    "LABELS",
    "build_artifact",
    "case_rng",
    "evaluate",
    "load_artifact",
    "random_connected_pattern",
    "random_labeled_graph",
    "random_labeled_tree",
    "random_workload",
    "recorded_mismatch",
    "replay",
    "run_oracle",
    "write_artifact",
]
