"""Workloads and mismatches: the common currency of the check harness.

A :class:`Workload` is the *whole input* of a differential test case —
an initial database view, a pattern set, and a sequence of batch
updates — in one serialisable value.  Oracles
(:mod:`repro.check.oracles`) consume workloads and return a
:class:`Mismatch` (or ``None``); the fuzzer generates them, the
shrinker edits them, and replay artifacts round-trip them through JSON
(:func:`workload_to_dict` / :func:`workload_from_dict`, built on
:mod:`repro.graph.io` so permuted vertex-ID→label assignments — the
PR-4 bug class — survive serialisation byte-for-byte).

Graph IDs are explicit everywhere (both the initial view and batch
insertions) so a workload names the exact id-space the live
:class:`~repro.graph.database.GraphDatabase` would produce, without
depending on allocator state.
"""

from __future__ import annotations

import json
import random
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from ..graph.io import FormatError, graph_from_dict, graph_to_dict
from ..graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class WorkloadBatch:
    """One batch step: graphs added under explicit IDs, IDs removed."""

    added: Mapping[int, LabeledGraph] = field(default_factory=dict)
    removed: tuple[int, ...] = ()

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkloadBatch +{len(self.added)} -{len(self.removed)}>"


@dataclass(frozen=True)
class Workload:
    """An initial view, a pattern set, and a batch-update sequence."""

    graphs: Mapping[int, LabeledGraph] = field(default_factory=dict)
    patterns: tuple[LabeledGraph, ...] = ()
    batches: tuple[WorkloadBatch, ...] = ()

    # ------------------------------------------------------------------
    # view evolution
    # ------------------------------------------------------------------
    def views(self) -> Iterator[dict[int, LabeledGraph]]:
        """Yield the view after each prefix of batches (initial first).

        Each yielded dict is fresh — callers may mutate or retain it.
        Removals of absent IDs are ignored (the shrinker may drop the
        insertion that introduced an ID while keeping its removal).
        """
        view = dict(self.graphs)
        yield dict(view)
        for batch in self.batches:
            for graph_id in batch.removed:
                view.pop(graph_id, None)
            view.update(batch.added)
            yield dict(view)

    def final_view(self) -> dict[int, LabeledGraph]:
        view: dict[int, LabeledGraph] = {}
        for view in self.views():
            pass
        return view

    # ------------------------------------------------------------------
    # size accounting (the shrinker minimises these)
    # ------------------------------------------------------------------
    def num_graphs(self) -> int:
        """Distinct graph objects across the initial view and batches."""
        total = len(self.graphs)
        for batch in self.batches:
            total += len(batch.added)
        return total

    def num_edges(self) -> int:
        total = sum(g.num_edges for g in self.graphs.values())
        for batch in self.batches:
            total += sum(g.num_edges for g in batch.added.values())
        total += sum(p.num_edges for p in self.patterns)
        return total

    def alphabet(self) -> set[str]:
        labels: set[str] = set()
        for graph in self.graphs.values():
            labels |= set(graph.vertex_label_multiset())
        for batch in self.batches:
            for graph in batch.added.values():
                labels |= set(graph.vertex_label_multiset())
        for pattern in self.patterns:
            labels |= set(pattern.vertex_label_multiset())
        return labels

    def num_vertices(self) -> int:
        total = sum(g.num_vertices for g in self.graphs.values())
        for batch in self.batches:
            total += sum(g.num_vertices for g in batch.added.values())
        total += sum(p.num_vertices for p in self.patterns)
        return total

    def size(self) -> tuple[int, int, int, int, int, int]:
        """Lexicographic shrink objective
        (graphs, ops, patterns, edges, vertices, labels)."""
        ops = sum(
            len(b.added) + len(b.removed) for b in self.batches
        )
        return (
            self.num_graphs(),
            ops,
            len(self.patterns),
            self.num_edges(),
            self.num_vertices(),
            len(self.alphabet()),
        )

    def describe(self) -> str:
        graphs, ops, patterns, edges, vertices, labels = self.size()
        return (
            f"{graphs} graphs, {len(self.batches)} batches "
            f"({ops} ops), {patterns} patterns, "
            f"{vertices} vertices, {edges} edges, {labels} labels"
        )


# ----------------------------------------------------------------------
# JSON (de)serialisation — the replay-artifact format
# ----------------------------------------------------------------------
def workload_to_dict(workload: Workload) -> dict:
    return {
        "graphs": {
            str(gid): graph_to_dict(graph)
            for gid, graph in sorted(workload.graphs.items())
        },
        "patterns": [graph_to_dict(p) for p in workload.patterns],
        "batches": [
            {
                "added": {
                    str(gid): graph_to_dict(graph)
                    for gid, graph in sorted(batch.added.items())
                },
                "removed": list(batch.removed),
            }
            for batch in workload.batches
        ],
    }


def workload_from_dict(payload: Mapping) -> Workload:
    try:
        graphs = {
            int(gid): graph_from_dict(g)
            for gid, g in payload["graphs"].items()
        }
        patterns = tuple(
            graph_from_dict(p) for p in payload["patterns"]
        )
        batches = tuple(
            WorkloadBatch(
                added={
                    int(gid): graph_from_dict(g)
                    for gid, g in batch["added"].items()
                },
                removed=tuple(batch["removed"]),
            )
            for batch in payload["batches"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed workload payload: {exc}") from exc
    return Workload(graphs=graphs, patterns=patterns, batches=batches)


def workload_to_json(workload: Workload) -> str:
    return json.dumps(workload_to_dict(workload), indent=2, sort_keys=True)


def workload_from_json(text: str) -> Workload:
    return workload_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# graph transforms shared by generators, oracles and the shrinker
# ----------------------------------------------------------------------
def permuted_copy(graph: LabeledGraph, seed: int) -> LabeledGraph:
    """An isomorphic copy with a permuted vertex-ID→label assignment.

    The twin has the same 0..n-1 integer ID space (so it survives the
    JSON round-trip of :func:`graph_to_dict` unchanged) but a shuffled
    assignment — the exact shape of the PR-4 shared-canonical-key bug
    class, and the input of every permutation-invariance oracle.
    """
    order = sorted(graph.vertices(), key=repr)
    positions = list(range(len(order)))
    random.Random(seed).shuffle(positions)
    renumber = {v: positions[i] for i, v in enumerate(order)}
    twin = LabeledGraph(name=graph.name)
    for vertex in order:
        twin.add_vertex(renumber[vertex], graph.label(vertex))
    for u, v in graph.edges():
        twin.add_edge(renumber[u], renumber[v])
    return twin


# ----------------------------------------------------------------------
# mismatches
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Mismatch:
    """A differential-oracle failure: fast path disagreed with reference.

    ``detail`` carries free-form diagnostics (the disagreeing values,
    the pattern index, the exception text...).  Two mismatches are
    *the same bug* for shrinking purposes when their
    :meth:`signature` — oracle name plus stable failure code — agree;
    ``detail`` is allowed to change as the workload shrinks.
    """

    oracle: str
    code: str
    detail: Mapping = field(default_factory=dict)

    def signature(self) -> tuple[str, str]:
        return (self.oracle, self.code)

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "code": self.code,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Mismatch":
        return cls(
            oracle=payload["oracle"],
            code=payload["code"],
            detail=dict(payload.get("detail", {})),
        )

    def __str__(self) -> str:
        parts = [f"[{self.oracle}] {self.code}"]
        for key, value in sorted(self.detail.items()):
            parts.append(f"  {key}: {value}")
        return "\n".join(parts)


__all__ = [
    "Mismatch",
    "Workload",
    "WorkloadBatch",
    "permuted_copy",
    "workload_from_dict",
    "workload_from_json",
    "workload_to_dict",
    "workload_to_json",
]
